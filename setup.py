"""Setup shim for environments without the `wheel` package (offline legacy
`python setup.py develop` installs); configuration lives in pyproject.toml."""
from setuptools import setup

setup()

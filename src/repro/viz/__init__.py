"""Visualization: dependency-free SVG rendering of placements."""

from repro.viz.svg import render_placement_svg, save_placement_svg

__all__ = ["render_placement_svg", "save_placement_svg"]

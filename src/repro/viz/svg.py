"""Hand-rolled SVG rendering of a network + placement (the paper's Fig. 1).

No plotting dependency: the figure the paper draws — node layout, wireless
links shaded by failure probability, important pairs, and the placed
shortcut edges — is emitted as a standalone SVG string/file. Used by the
fig1 experiment (via ``save_placement_svg``) and available for any
instance with node coordinates.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.problem import MSCInstance
from repro.exceptions import ValidationError
from repro.types import NodePair

Position = Tuple[float, float]
PathLike = Union[str, Path]

#: Palette (colorblind-safe-ish, dark-on-light).
COLOR_LINK = "#b0b7c3"
COLOR_PAIR_SATISFIED = "#2a9d4e"
COLOR_PAIR_VIOLATED = "#d1495b"
COLOR_SHORTCUT = "#1f6fd6"
COLOR_NODE = "#3c4454"
COLOR_PAIR_NODE = "#111111"


def _bounds(positions: Dict, pad: float = 0.06):
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    return (
        min_x - pad * span_x,
        min_y - pad * span_y,
        span_x * (1 + 2 * pad),
        span_y * (1 + 2 * pad),
    )


def render_placement_svg(
    instance: MSCInstance,
    positions: Dict,
    shortcuts: Sequence[NodePair] = (),
    *,
    satisfied: Optional[Sequence[bool]] = None,
    width: int = 640,
    title: str = "",
) -> str:
    """Render the instance and a placement as an SVG string.

    Args:
        instance: the MSC instance (graph + pairs).
        positions: node -> (x, y) in any consistent units; the drawing is
            scaled to fit.
        shortcuts: placed shortcut edges (drawn as thick blue lines).
        satisfied: per-pair flags (green = maintained, red = violated);
            computed from the placement when omitted.
        width: SVG pixel width (height follows the aspect ratio).
        title: optional caption.

    All graph nodes must be positioned; raises otherwise.
    """
    graph = instance.graph
    missing = [v for v in graph.nodes if v not in positions]
    if missing:
        raise ValidationError(
            f"{len(missing)} node(s) lack positions, e.g. {missing[0]!r}"
        )
    if satisfied is None:
        from repro.core.evaluator import SigmaEvaluator

        evaluator = SigmaEvaluator(instance)
        index_pairs = [
            tuple(
                sorted(
                    (graph.node_index(u), graph.node_index(v))
                )
            )
            for u, v in shortcuts
        ]
        satisfied = evaluator.satisfied(index_pairs)
    if len(satisfied) != instance.m:
        raise ValidationError(
            f"{len(satisfied)} satisfied flags for {instance.m} pairs"
        )

    min_x, min_y, span_x, span_y = _bounds(positions)
    height = int(width * span_y / span_x)
    scale = width / span_x

    def xy(node) -> Tuple[float, float]:
        x, y = positions[node]
        # SVG y grows downward; flip so the layout reads like a map.
        return (
            (x - min_x) * scale,
            height - (y - min_y) * scale,
        )

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + (24 if title else 0)}" '
        f'viewBox="0 0 {width} {height + (24 if title else 0)}">',
        f'<rect width="100%" height="100%" fill="white"/>',
    ]
    offset = 24 if title else 0
    if title:
        parts.append(
            f'<text x="8" y="16" font-family="sans-serif" '
            f'font-size="13" fill="#333">{html.escape(title)}</text>'
        )
    parts.append(f'<g transform="translate(0,{offset})">')

    # Wireless links, opacity by failure probability (weak links fade).
    for u, v, _length in graph.edges:
        p = graph.failure_probability(u, v)
        x1, y1 = xy(u)
        x2, y2 = xy(v)
        opacity = 0.25 + 0.55 * (1 - p)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{COLOR_LINK}" stroke-width="1" '
            f'stroke-opacity="{opacity:.2f}"/>'
        )

    # Important pairs as dashed demand lines.
    for (u, w), ok in zip(instance.pairs, satisfied):
        x1, y1 = xy(u)
        x2, y2 = xy(w)
        color = COLOR_PAIR_SATISFIED if ok else COLOR_PAIR_VIOLATED
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{color}" stroke-width="1.2" '
            f'stroke-dasharray="5,4" stroke-opacity="0.8"/>'
        )

    # Shortcut edges: thick blue.
    for u, v in shortcuts:
        x1, y1 = xy(u)
        x2, y2 = xy(v)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{COLOR_SHORTCUT}" '
            f'stroke-width="3"/>'
        )

    # Nodes; pair endpoints emphasized.
    pair_nodes = set(instance.pair_nodes())
    for node in graph.nodes:
        x, y = xy(node)
        if node in pair_nodes:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" '
                f'fill="{COLOR_PAIR_NODE}"/>'
            )
        else:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                f'fill="{COLOR_NODE}" fill-opacity="0.7"/>'
            )

    parts.append("</g></svg>")
    return "\n".join(parts)


def save_placement_svg(
    instance: MSCInstance,
    positions: Dict,
    shortcuts: Sequence[NodePair],
    path: PathLike,
    **kwargs,
) -> None:
    """Render and write the placement SVG to *path* (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_placement_svg(instance, positions, shortcuts, **kwargs),
        encoding="utf-8",
    )

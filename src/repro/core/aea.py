"""Adaptive Evolutionary Algorithm (AEA) — Algorithm 2 of the paper.

AEA keeps a pool ``P`` of at most ``l`` *feasible* solutions (each with
exactly ``k`` shortcut edges). Every iteration picks a pool member uniformly
at random and produces an offspring by a swap:

* with probability ``1 - δ`` a **greedy swap** — remove the edge whose
  removal hurts σ least (i.e. maximizes ``σ(F \\ {f})``), then add the edge
  maximizing ``σ(F ∪ {f'})``;
* with probability ``δ`` a **random swap** — remove a uniform edge, add a
  uniform non-member edge.

The offspring replaces the worst pool member if strictly better (or simply
joins while the pool is under capacity). The pool provides diversity; the
mostly-greedy exploration is what makes AEA overtake both EA and AA as the
iteration budget grows (paper Figs. 3–4).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, PlacementResult, normalize_index_pair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int, check_probability

Individual = Tuple[List[IndexPair], float]  # (edges sorted, σ value)


class AdaptiveEvolutionaryAlgorithm:
    """AEA over shortcut placements (paper Algorithm 2).

    Args:
        instance: the MSC instance.
        iterations: swap rounds ``r`` (paper default 500).
        pool_size: candidate-solution pool capacity ``l`` (paper default 10).
        delta: probability of a random (vs. greedy) swap (paper default
            0.05 — "close to 0").
        sigma: objective; defaults to the instance's exact σ.
        seed: RNG seed.
    """

    def __init__(
        self,
        instance: MSCInstance,
        iterations: int = 500,
        *,
        pool_size: int = 10,
        delta: float = 0.05,
        sigma: Optional[SetFunctionProtocol] = None,
        seed: SeedLike = None,
        initial_edges: Optional[Sequence[IndexPair]] = None,
    ) -> None:
        self.instance = instance
        self.iterations = check_positive_int(iterations, "iterations")
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.delta = check_probability(delta, "delta")
        self.sigma = sigma if sigma is not None else SigmaEvaluator(instance)
        self._rng = ensure_rng(seed)
        n = self.sigma.n
        if n < 2:
            raise SolverError("AEA needs at least two nodes")
        max_edges = n * (n - 1) // 2
        if instance.k > max_edges:
            raise SolverError(
                f"budget k={instance.k} exceeds the {max_edges} possible "
                "shortcut edges"
            )
        # Optional warm start (e.g. the AA placement): the pool is seeded
        # with this placement instead of a random one, so the final answer
        # can only match or beat it. The paper initializes randomly; warm
        # starting is this library's practical-configuration extension
        # (see the `ablation_warmstart` experiment).
        self._initial_edges: Optional[List[IndexPair]] = None
        if initial_edges is not None:
            canonical = sorted(
                normalize_index_pair(a, b) for a, b in initial_edges
            )
            if len(set(canonical)) != len(canonical):
                raise SolverError("initial_edges contains duplicates")
            if len(canonical) > instance.k:
                raise SolverError(
                    f"{len(canonical)} initial edges exceed the budget "
                    f"k={instance.k}"
                )
            self._initial_edges = canonical

    # ------------------------------------------------------------- sampling

    def _random_placement(self, k: int) -> List[IndexPair]:
        """Uniform placement of exactly *k* distinct shortcut edges."""
        n = self.sigma.n
        chosen: Set[IndexPair] = set()
        while len(chosen) < k:
            a = self._rng.randrange(n)
            b = self._rng.randrange(n)
            if a != b:
                chosen.add(normalize_index_pair(a, b))
        return sorted(chosen)

    def _random_nonmember(self, edges: Sequence[IndexPair]) -> IndexPair:
        n = self.sigma.n
        members = set(edges)
        while True:
            a = self._rng.randrange(n)
            b = self._rng.randrange(n)
            if a != b:
                pair = normalize_index_pair(a, b)
                if pair not in members:
                    return pair

    # ----------------------------------------------------------------- swaps

    def _greedy_swap(
        self, edges: List[IndexPair]
    ) -> Tuple[List[IndexPair], float, int]:
        """Greedy remove-then-add; returns (new edges, σ, evaluations)."""
        evaluations = 0
        kept = list(edges)
        if kept:
            # Remove the edge whose removal keeps σ highest.
            best_idx, best_value = 0, -math.inf
            for i in range(len(kept)):
                reduced = kept[:i] + kept[i + 1 :]
                value = float(self.sigma.value(reduced))
                evaluations += 1
                if value > best_value:
                    best_idx, best_value = i, value
            del kept[best_idx]
        # Add the candidate maximizing σ(F ∪ {f'}).
        scores = np.asarray(
            self.sigma.add_candidates(kept), dtype=float
        )
        evaluations += 1
        n = scores.shape[0]
        invalid = np.zeros_like(scores, dtype=bool)
        np.fill_diagonal(invalid, True)
        for a, b in kept:
            invalid[a, b] = True
            invalid[b, a] = True
        scores = np.where(invalid, -math.inf, scores)
        flat_best = int(np.argmax(scores))
        a, b = divmod(flat_best, n)
        kept.append(normalize_index_pair(a, b))
        kept.sort()
        return kept, float(scores[a, b]), evaluations

    def _random_swap(
        self, edges: List[IndexPair]
    ) -> Tuple[List[IndexPair], float, int]:
        kept = list(edges)
        if kept:
            del kept[self._rng.randrange(len(kept))]
        kept.append(self._random_nonmember(kept))
        kept.sort()
        return kept, float(self.sigma.value(kept)), 1

    # ------------------------------------------------------------------- run

    def solve(self, k: Optional[int] = None) -> PlacementResult:
        budget = self.instance.k if k is None else k
        if budget == 0:
            # The swap operators maintain exactly-k placements and always
            # add an edge, so a zero budget must short-circuit to the empty
            # placement instead of entering the loop.
            value = float(self.sigma.value([]))
            return PlacementResult(
                algorithm="aea",
                edges=[],
                sigma=int(value),
                satisfied=_satisfied_or_empty(self.sigma, []),
                evaluations=1,
                trace=[int(value)],
                extras={"pool_size": 1, "delta": self.delta},
            )
        if self._initial_edges is not None:
            initial = list(self._initial_edges[:budget])
            # AEA maintains exactly-k placements; top up short warm starts.
            members = set(initial)
            while len(initial) < budget:
                extra = self._random_nonmember(initial)
                initial.append(extra)
                members.add(extra)
            initial.sort()
        else:
            initial = self._random_placement(budget)
        pool: List[Individual] = [
            (initial, float(self.sigma.value(initial)))
        ]
        evaluations = 1
        best: Individual = pool[0]
        trace: List[int] = [int(best[1])]

        for _ in range(self.iterations):
            parent = pool[self._rng.randrange(len(pool))]
            if self._rng.random() <= 1.0 - self.delta:
                child_edges, child_value, cost = self._greedy_swap(parent[0])
            else:
                child_edges, child_value, cost = self._random_swap(parent[0])
            evaluations += cost
            child: Individual = (child_edges, child_value)

            if len(pool) < self.pool_size:
                pool.append(child)
            else:
                worst_idx = min(
                    range(len(pool)), key=lambda i: pool[i][1]
                )
                if pool[worst_idx][1] < child_value:
                    pool[worst_idx] = child
            if child_value > best[1]:
                best = child
            trace.append(int(best[1]))

        satisfied = _satisfied_or_empty(self.sigma, best[0])
        return PlacementResult(
            algorithm="aea",
            edges=self.instance.edges_to_nodes(best[0]),
            sigma=int(best[1]),
            satisfied=satisfied,
            evaluations=evaluations,
            trace=trace,
            extras={
                "pool_size": len(pool),
                "delta": self.delta,
            },
        )


def _satisfied_or_empty(sigma, edges: Sequence[IndexPair]):
    satisfied_fn = getattr(sigma, "satisfied", None)
    return satisfied_fn(edges) if satisfied_fn is not None else []


def solve_aea(
    instance: MSCInstance,
    seed: SeedLike = None,
    iterations: int = 500,
    pool_size: int = 10,
    delta: float = 0.05,
    initial_edges: Optional[Sequence[IndexPair]] = None,
    **_ignored,
) -> PlacementResult:
    """Registry-compatible wrapper for
    :class:`AdaptiveEvolutionaryAlgorithm`."""
    return AdaptiveEvolutionaryAlgorithm(
        instance,
        iterations=iterations,
        pool_size=pool_size,
        delta=delta,
        seed=seed,
        initial_edges=initial_edges,
    ).solve()


def solve_aea_warmstart(
    instance: MSCInstance,
    seed: SeedLike = None,
    iterations: int = 500,
    pool_size: int = 10,
    delta: float = 0.05,
    **_ignored,
) -> PlacementResult:
    """AEA warm-started from the sandwich AA placement.

    Because the initial pool contains the AA solution and AEA only ever
    replaces pool members with strictly better ones, the answer is
    guaranteed ≥ the AA value — the recommended practical configuration
    (see the `ablation_warmstart` study). Reported algorithm name:
    ``aea+warm``.
    """
    from repro.core.sandwich import SandwichApproximation

    aa = SandwichApproximation(instance).solve()
    graph = instance.graph
    warm = [
        normalize_index_pair(graph.node_index(u), graph.node_index(v))
        for u, v in aa.edges
    ]
    result = AdaptiveEvolutionaryAlgorithm(
        instance,
        iterations=iterations,
        pool_size=pool_size,
        delta=delta,
        seed=seed,
        initial_edges=warm,
    ).solve()
    return PlacementResult(
        algorithm="aea+warm",
        edges=result.edges,
        sigma=result.sigma,
        satisfied=result.satisfied,
        evaluations=result.evaluations + aa.evaluations,
        trace=result.trace,
        extras={**result.extras, "warm_start_sigma": aa.sigma},
    )

"""Generic greedy shortcut-edge placement over any set function.

One greedy round asks the set function to score every candidate edge at once
(``add_candidates``), masks out invalid candidates (self-loops, edges already
placed), and takes the best. For a monotone submodular function this is the
classic ``(1 - 1/e)``-approximation greedy (paper Theorem 5); for σ itself it
is the heuristic greedy the sandwich algorithm also evaluates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, normalize_index_pair
from repro.util.validation import check_nonnegative_int

#: Gains smaller than this are treated as zero (floating-point guard for the
#: real-valued ν function; σ and μ are integer-valued).
GAIN_EPSILON = 1e-9


def greedy_placement(
    fn: SetFunctionProtocol,
    k: int,
    *,
    existing: Sequence[IndexPair] = (),
    candidate_mask: Optional[np.ndarray] = None,
    stop_when_no_gain: bool = True,
) -> List[IndexPair]:
    """Greedily add up to *k* shortcut edges maximizing marginal gain of *fn*.

    Args:
        fn: set function to maximize.
        k: total edge budget (including *existing* edges).
        existing: edges already placed; they count against the budget.
        candidate_mask: optional ``(n, n)`` boolean array restricting the
            candidate universe (True = allowed). Self-loops and already
            placed edges are always excluded.
        stop_when_no_gain: stop early once no candidate improves *fn*
            (the paper's greedy stops when all pairs are satisfied, which is
            the special case of zero gains everywhere).

    Returns:
        The full placement, existing edges first, in selection order.

    Ties are broken toward the lexicographically smallest ``(a, b)`` pair,
    keeping runs deterministic.
    """
    check_nonnegative_int(k, "k")  # k = 0 is a valid (empty) placement
    n = fn.n
    placed: List[IndexPair] = [normalize_index_pair(a, b) for a, b in existing]
    if len(placed) > k:
        raise SolverError(
            f"{len(placed)} existing edges exceed the budget k={k}"
        )
    placed_set: Set[IndexPair] = set(placed)
    if candidate_mask is not None and candidate_mask.shape != (n, n):
        raise SolverError(
            f"candidate_mask shape {candidate_mask.shape} != ({n}, {n})"
        )

    # The restricted scan is sound only when zero-gain candidates can never
    # be selected (candidates outside the universe have exactly zero gain):
    # that requires the early-stop semantics and no caller-provided mask to
    # intersect with. Both paths then provably return identical placements.
    restricted_fn = (
        getattr(fn, "add_candidates_restricted", None)
        if candidate_mask is None and stop_when_no_gain
        else None
    )

    while len(placed) < k and n > 0:
        restricted = (
            restricted_fn(placed) if restricted_fn is not None else None
        )
        if restricted is None:
            # The decline is size/config-based, not state-based — it will
            # keep declining, so stop asking.
            restricted_fn = None
        if restricted is not None:
            block, universe = restricted
            r = int(universe.size)
            if r == 0:
                break  # no candidate can gain
            # Private copy in the scan's own (usually integer) dtype so
            # invalid cells can be masked in place with a dtype-matched
            # sentinel — no (r, r) float64 conversion copy.
            scores = np.array(block)
            current = float(scores[0, 0])
            sentinel = (
                -math.inf
                if np.issubdtype(scores.dtype, np.floating)
                else np.iinfo(scores.dtype).min
            )
            np.fill_diagonal(scores, sentinel)
            for a, b in placed_set:
                slots = np.searchsorted(universe, [a, b])
                if (
                    slots[0] < r
                    and slots[1] < r
                    and universe[slots[0]] == a
                    and universe[slots[1]] == b
                ):
                    scores[slots[0], slots[1]] = sentinel
                    scores[slots[1], slots[0]] = sentinel
            flat_best = int(np.argmax(scores))
            a_r, b_r = divmod(flat_best, r)
            if scores[a_r, b_r] == sentinel:
                break  # every restricted cell is masked out
            best_score = float(scores[a_r, b_r])
            # universe is sorted, so the flat argmax preserves the dense
            # path's lexicographic tie-break on the mapped (a, b).
            a, b = int(universe[a_r]), int(universe[b_r])
        else:
            scores = np.asarray(fn.add_candidates(placed), dtype=float)
            # The diagonal of add_candidates holds value(placed) by
            # contract.
            current = float(scores[0, 0])
            invalid = np.zeros((n, n), dtype=bool)
            np.fill_diagonal(invalid, True)
            for a, b in placed_set:
                invalid[a, b] = True
                invalid[b, a] = True
            if candidate_mask is not None:
                invalid |= ~candidate_mask
            scores = np.where(invalid, -math.inf, scores)
            flat_best = int(np.argmax(scores))
            a, b = divmod(flat_best, n)
            best_score = float(scores[a, b])
        if math.isinf(best_score):
            break  # nothing selectable
        if stop_when_no_gain and best_score <= current + GAIN_EPSILON:
            break
        placed.append(normalize_index_pair(a, b))
        placed_set.add(placed[-1])
        # Drop this round's score blocks before the next scan allocates its
        # own, so two rounds' (r, r)/(n, n) arrays never coexist at peak.
        scores = restricted = block = invalid = None
    return placed

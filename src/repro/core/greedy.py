"""Generic greedy shortcut-edge placement over any set function.

One greedy round asks the set function to score every candidate edge at once
(``add_candidates``), masks out invalid candidates (self-loops, edges already
placed), and takes the best. For a monotone submodular function this is the
classic ``(1 - 1/e)``-approximation greedy (paper Theorem 5); for σ itself it
is the heuristic greedy the sandwich algorithm also evaluates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, normalize_index_pair
from repro.util.validation import check_nonnegative_int

#: Gains smaller than this are treated as zero (floating-point guard for the
#: real-valued ν function; σ and μ are integer-valued).
GAIN_EPSILON = 1e-9


def greedy_placement(
    fn: SetFunctionProtocol,
    k: int,
    *,
    existing: Sequence[IndexPair] = (),
    candidate_mask: Optional[np.ndarray] = None,
    stop_when_no_gain: bool = True,
) -> List[IndexPair]:
    """Greedily add up to *k* shortcut edges maximizing marginal gain of *fn*.

    Args:
        fn: set function to maximize.
        k: total edge budget (including *existing* edges).
        existing: edges already placed; they count against the budget.
        candidate_mask: optional ``(n, n)`` boolean array restricting the
            candidate universe (True = allowed). Self-loops and already
            placed edges are always excluded.
        stop_when_no_gain: stop early once no candidate improves *fn*
            (the paper's greedy stops when all pairs are satisfied, which is
            the special case of zero gains everywhere).

    Returns:
        The full placement, existing edges first, in selection order.

    Ties are broken toward the lexicographically smallest ``(a, b)`` pair,
    keeping runs deterministic.
    """
    check_nonnegative_int(k, "k")  # k = 0 is a valid (empty) placement
    n = fn.n
    placed: List[IndexPair] = [normalize_index_pair(a, b) for a, b in existing]
    if len(placed) > k:
        raise SolverError(
            f"{len(placed)} existing edges exceed the budget k={k}"
        )
    placed_set: Set[IndexPair] = set(placed)
    if candidate_mask is not None and candidate_mask.shape != (n, n):
        raise SolverError(
            f"candidate_mask shape {candidate_mask.shape} != ({n}, {n})"
        )

    while len(placed) < k and n > 0:
        scores = np.asarray(fn.add_candidates(placed), dtype=float)
        # The diagonal of add_candidates holds value(placed) by contract.
        current = float(scores[0, 0])
        invalid = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(invalid, True)
        for a, b in placed_set:
            invalid[a, b] = True
            invalid[b, a] = True
        if candidate_mask is not None:
            invalid |= ~candidate_mask
        scores = np.where(invalid, -math.inf, scores)
        flat_best = int(np.argmax(scores))
        a, b = divmod(flat_best, n)
        best_score = float(scores[a, b])
        if math.isinf(best_score):
            break  # nothing selectable
        if stop_when_no_gain and best_score <= current + GAIN_EPSILON:
            break
        placed.append(normalize_index_pair(a, b))
        placed_set.add(placed[-1])
    return placed

"""Weighted MSC: social pairs with importance weights.

The paper's conclusion notes its algorithms "could also provide insights
into the general shortcut edge addition problems in any graphs"; the most
natural generalization is pairs that are not equally important — the platoon
commander's link to a squad leader may be worth more than a squad leader's
link to another. This module provides weighted counterparts of σ, μ and ν
implementing the same set-function protocol, so *every* solver in the
library (greedy, sandwich, EA, AEA, random, exact) works on weighted
instances unchanged.

The sandwich property and submodularity proofs carry over verbatim:

* weighted μ restricts paths to one shortcut edge — still a (now weighted)
  maximum coverage over pairs, submodular and ≤ weighted σ;
* weighted ν assigns each node half the *weight sum* of the pairs it
  appears in (for unit weights this reduces to the paper's half-appearance
  count), and the same covering argument yields weighted σ ≤ weighted ν.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.bounds import MuFunction, NuFunction
from repro.core.evaluator import PairScanAccumulator, SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.exceptions import InstanceError
from repro.types import IndexPair
from repro.util.validation import check_nonnegative


def _check_weights(
    instance: MSCInstance, weights: Sequence[float]
) -> np.ndarray:
    if len(weights) != instance.m:
        raise InstanceError(
            f"{len(weights)} weights for {instance.m} pairs"
        )
    return np.array(
        [check_nonnegative(w, "pair weight") for w in weights], dtype=float
    )


class WeightedSigmaEvaluator:
    """Weighted objective: total weight of maintained pairs."""

    def __init__(
        self, instance: MSCInstance, weights: Sequence[float]
    ) -> None:
        self.instance = instance
        self.weights = _check_weights(instance, weights)
        self._sigma = SigmaEvaluator(instance)

    @property
    def n(self) -> int:
        return self.instance.n

    def max_value(self) -> float:
        return float(self.weights.sum())

    def satisfied(self, edges: Sequence[IndexPair]) -> List[bool]:
        return self._sigma.satisfied(edges)

    def value(self, edges: Sequence[IndexPair]) -> float:
        flags = np.array(self._sigma.satisfied(edges), dtype=bool)
        return float(self.weights @ flags)

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        """Weighted one-step lookahead, mirroring
        :meth:`SigmaEvaluator.add_candidates` with per-pair weights.

        Shares σ's engine cache and pruned scatter-add scan, so the same
        incremental-reuse and memory bounds apply.
        """
        n = self.n
        sigma = self._sigma
        engine = sigma._engine(edges)
        limit = sigma.threshold + sigma.tolerance
        batched = engine.distances_from_indices(sigma._sources)
        pair_distances = batched[sigma._pair_u_rows, sigma._pair_w_cols]
        satisfied_mask = pair_distances <= limit

        current = float(self.weights[satisfied_mask].sum())
        if sigma._use_pruned_scan():
            scan = PairScanAccumulator(
                n, weighted=True, chunk_elements=sigma.chunk_elements
            )
            for p in np.flatnonzero(~satisfied_mask):
                weight = float(self.weights[p])
                if weight == 0.0:
                    continue
                scan.add_pair(
                    batched[sigma._pair_u_rows[p]],
                    batched[sigma._pair_w_rows[p]],
                    limit,
                    weight=weight,
                )
            acc = scan.result()
        else:
            acc = np.zeros((n, n), dtype=float)
            for p in np.flatnonzero(~satisfied_mask):
                weight = float(self.weights[p])
                if weight == 0.0:
                    continue
                du = batched[sigma._pair_u_rows[p]]
                dw = batched[sigma._pair_w_rows[p]]
                mask = (du[:, None] + dw[None, :]) <= limit
                acc += (mask | mask.T) * weight
        acc += current
        np.fill_diagonal(acc, current)
        return acc


class WeightedMuFunction:
    """Weighted lower bound: μ with per-pair weights."""

    is_submodular = True

    def __init__(
        self, instance: MSCInstance, weights: Sequence[float]
    ) -> None:
        self.instance = instance
        self.weights = _check_weights(instance, weights)
        self._mu = MuFunction(instance)

    @property
    def n(self) -> int:
        return self.instance.n

    def value(self, edges: Sequence[IndexPair]) -> float:
        flags = np.array(self._mu.satisfied(edges), dtype=bool)
        return float(self.weights @ flags)

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        n = self.n
        acc = np.zeros((n, n), dtype=float)
        current = 0.0
        for i, weight in enumerate(self.weights):
            if self._mu.pair_rescued(i, edges):
                current += weight
            elif weight > 0.0:
                acc += self._mu._masks[i] * weight
        acc += current
        np.fill_diagonal(acc, current)
        return acc


class WeightedNuFunction:
    """Weighted upper bound: coverage with pair-weight-scaled node weights.

    A node's weight is half the sum of the weights of the pairs it appears
    in; the base-satisfied pairs' weight is added as a constant — exactly
    the construction of :class:`~repro.core.bounds.NuFunction` with counts
    replaced by weight sums.
    """

    is_submodular = True

    def __init__(
        self, instance: MSCInstance, weights: Sequence[float]
    ) -> None:
        self.instance = instance
        self.pair_weights = _check_weights(instance, weights)
        base = NuFunction(instance)
        self.pair_nodes = base.pair_nodes
        self.cover = base.cover
        node_weight = {node: 0.0 for node in self.pair_nodes}
        for (u, w), weight in zip(instance.pairs, self.pair_weights):
            node_weight[u] += weight / 2.0
            node_weight[w] += weight / 2.0
        self.weights = np.array(
            [node_weight[node] for node in self.pair_nodes], dtype=float
        )
        sigma = SigmaEvaluator(instance)
        self.base_weight = float(
            self.pair_weights
            @ np.array(sigma.base_satisfied, dtype=bool)
        )

    @property
    def n(self) -> int:
        return self.instance.n

    def covered_nodes(self, edges: Sequence[IndexPair]) -> np.ndarray:
        covered = np.zeros(len(self.pair_nodes), dtype=bool)
        for a, b in edges:
            covered |= self.cover[a, :]
            covered |= self.cover[b, :]
        return covered

    def value(self, edges: Sequence[IndexPair]) -> float:
        return float(
            self.weights @ self.covered_nodes(edges)
        ) + self.base_weight

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        covered = self.covered_nodes(edges)
        current = float(self.weights @ covered) + self.base_weight
        uncovered = np.where(covered, 0.0, self.weights)
        nw = self.cover @ uncovered
        overlap = (self.cover * uncovered) @ self.cover.T
        acc = current + nw[:, None] + nw[None, :] - overlap
        np.fill_diagonal(acc, current)
        return acc


def weighted_sandwich(
    instance: MSCInstance,
    weights: Sequence[float],
):
    """A :class:`~repro.core.sandwich.SandwichApproximation` over the
    weighted objective and its weighted bounds."""
    from repro.core.sandwich import SandwichApproximation

    return SandwichApproximation(
        instance,
        sigma=WeightedSigmaEvaluator(instance, weights),
        mu=WeightedMuFunction(instance, weights),
        nu=WeightedNuFunction(instance, weights),
    )

"""Cost-budgeted shortcut placement: heterogeneous edge costs.

The paper counts shortcut edges — every satellite/UAV link costs 1 and the
budget is ``k``. In practice a long-range satellite link costs more than a
short UAV hop. This module generalizes the constraint to
``sum of edge costs <= budget`` with an arbitrary non-negative cost matrix
(a distance-proportional helper is provided).

For a submodular objective, the classic recipe applies: run both the
cost-effectiveness greedy (gain/cost) and the best single affordable edge,
and return the better — giving the ``(1 - 1/e)/2``-style guarantee of
Leskovec et al. / Khuller et al. For σ itself the same procedure is the
natural heuristic, mirroring how the paper's greedy is used inside the
sandwich.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set

import numpy as np

from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, normalize_index_pair
from repro.util.validation import check_positive


def distance_cost_matrix(
    positions: dict,
    graph,
    *,
    base_cost: float = 1.0,
    per_unit: float = 1.0,
) -> np.ndarray:
    """Cost of a shortcut edge as ``base_cost + per_unit * distance``
    between the endpoints' positions (e.g. satellite dish sizing).

    *positions* maps nodes to ``(x, y)``; *graph* supplies the node
    indexing. The diagonal is set to ``inf`` (no self-loops).
    """
    n = graph.number_of_nodes()
    cost = np.full((n, n), math.inf)
    for u, (x1, y1) in positions.items():
        iu = graph.node_index(u)
        for v, (x2, y2) in positions.items():
            iv = graph.node_index(v)
            if iu == iv:
                continue
            cost[iu, iv] = base_cost + per_unit * math.hypot(
                x1 - x2, y1 - y2
            )
    return cost


def _validate_costs(costs: np.ndarray, n: int) -> np.ndarray:
    costs = np.asarray(costs, dtype=float)
    if costs.shape != (n, n):
        raise SolverError(
            f"cost matrix shape {costs.shape} != ({n}, {n})"
        )
    if (costs < 0).any():
        raise SolverError("edge costs must be non-negative")
    return costs


def budgeted_greedy_placement(
    fn: SetFunctionProtocol,
    costs: np.ndarray,
    budget: float,
) -> List[IndexPair]:
    """Cost-effectiveness greedy ∨ best-single-edge under a cost budget.

    At each round, among the still-affordable candidates, pick the edge
    maximizing ``marginal gain / cost`` (zero-cost edges with positive gain
    are taken immediately — infinitely cost-effective). The final answer is
    the better (under *fn*) of the greedy run and the single affordable
    edge with the highest value.
    """
    check_positive(budget, "budget")
    n = fn.n
    costs = _validate_costs(costs, n)

    # --- cost-effectiveness greedy ------------------------------------
    placed: List[IndexPair] = []
    placed_set: Set[IndexPair] = set()
    remaining = float(budget)
    while True:
        scores = np.asarray(fn.add_candidates(placed), dtype=float)
        current = float(scores[0, 0])
        gains = scores - current
        invalid = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(invalid, True)
        for a, b in placed_set:
            invalid[a, b] = invalid[b, a] = True
        invalid |= costs > remaining
        invalid |= ~np.isfinite(costs)
        gains = np.where(invalid, -math.inf, gains)
        if not np.isfinite(gains).any():
            break
        # Cost-effectiveness, with zero-cost edges dominating.
        with np.errstate(divide="ignore", invalid="ignore"):
            effectiveness = np.where(
                costs > 0, gains / costs,
                np.where(gains > 0, math.inf, -math.inf),
            )
        effectiveness = np.where(invalid, -math.inf, effectiveness)
        flat = int(np.argmax(effectiveness))
        a, b = divmod(flat, n)
        if gains[a, b] <= 1e-9:
            break
        edge = normalize_index_pair(a, b)
        placed.append(edge)
        placed_set.add(edge)
        remaining -= float(costs[a, b])

    # --- best single affordable edge ----------------------------------
    scores = np.asarray(fn.add_candidates([]), dtype=float)
    invalid = np.zeros((n, n), dtype=bool)
    np.fill_diagonal(invalid, True)
    invalid |= costs > budget
    invalid |= ~np.isfinite(costs)
    single_scores = np.where(invalid, -math.inf, scores)
    best_single: List[IndexPair] = []
    if np.isfinite(single_scores).any():
        flat = int(np.argmax(single_scores))
        a, b = divmod(flat, n)
        if single_scores[a, b] > float(scores[0, 0]) + 1e-9:
            best_single = [normalize_index_pair(a, b)]

    if best_single and fn.value(best_single) > fn.value(placed):
        return best_single
    return placed


def placement_cost(
    edges: Sequence[IndexPair], costs: np.ndarray
) -> float:
    """Total cost of a placement under *costs*."""
    return float(sum(costs[a, b] for a, b in edges))

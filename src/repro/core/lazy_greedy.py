"""CELF lazy greedy for submodular shortcut placement.

For a *submodular* function (μ, ν, or any MSC-CN objective), marginal gains
only shrink as the placement grows, so a stale upper bound on a candidate's
gain is still an upper bound. CELF (Leskovec et al.'s "cost-effective lazy
forward") keeps candidates in a max-heap by stale gain and re-evaluates only
the top until it is provably the best — typically re-evaluating a tiny
fraction of the ``O(n²)`` candidates per round.

Context: this library's plain greedy already scores all candidates in one
vectorized pass (``add_candidates``), which on numpy-friendly sizes is hard
to beat. CELF wins when point evaluations are cheap relative to a full scan
— very large ``n``, or set functions without a vectorized scan. For
submodular inputs both return placements of equal value (ties may resolve
differently); the test suite verifies value-equality against plain greedy,
and applying CELF to the non-submodular σ is a heuristic (stale bounds can
be violated) and is rejected unless explicitly allowed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.greedy import GAIN_EPSILON
from repro.exceptions import SolverError
from repro.types import IndexPair, normalize_index_pair
from repro.util.validation import check_nonnegative_int

#: A point-evaluable set function: value(edges) -> float, plus .n.
ValueFunction = Callable[[Sequence[IndexPair]], float]


def lazy_greedy_placement(
    fn,
    k: int,
    *,
    candidates: Optional[Sequence[IndexPair]] = None,
    assume_submodular: bool = False,
    stop_when_no_gain: bool = True,
) -> Tuple[List[IndexPair], int]:
    """CELF greedy placement over *fn* (must be submodular for the result
    to coincide with plain greedy).

    Args:
        fn: set function exposing ``n`` and ``value(edges)``. Functions
            also exposing ``is_submodular = True`` (as μ and ν do) are
            accepted directly; anything else requires
            ``assume_submodular=True`` as an explicit acknowledgment.
        k: edge budget.
        candidates: candidate universe; defaults to all index pairs.
        stop_when_no_gain: stop once the best marginal gain is ≤ 0.

    Returns:
        ``(placement, evaluations)`` — the chosen edges in selection order
        and the number of point evaluations spent (the quantity CELF
        minimizes).
    """
    check_nonnegative_int(k, "k")
    if not assume_submodular and not getattr(fn, "is_submodular", False):
        raise SolverError(
            "lazy greedy requires a submodular function; pass "
            "assume_submodular=True to override (heuristic!)"
        )
    if k == 0:  # empty placement; skip the O(n^2) heap seeding
        return [], 0
    n = fn.n
    default_candidates = candidates is None
    if not default_candidates:
        candidates = [normalize_index_pair(a, b) for a, b in candidates]

    placed: List[IndexPair] = []
    placed_set: Set[IndexPair] = set()
    current = float(fn.value(placed))
    evaluations = 1
    counter = itertools.count()
    # Heap of (-stale_gain, tiebreak, edge, round_evaluated).
    heap: List[Tuple[float, int, IndexPair, int]] = []
    scan = getattr(fn, "add_candidates", None)
    restricted = None
    if default_candidates and stop_when_no_gain:
        # Seed from the restricted candidate scan when the function offers
        # one: every candidate outside the returned universe has exactly
        # zero round-0 gain and the early stop can never select it, so a
        # heap over universe pairs alone selects the same edges while
        # seeding O(r²) instead of O(n²) entries (r = d_t-ball size —
        # on the hub-label tier the only scan that never touches an
        # n-wide array).
        restricted_scan = getattr(fn, "add_candidates_restricted", None)
        if restricted_scan is not None:
            restricted = restricted_scan(placed)
    if restricted is not None:
        block, universe = restricted
        evaluations += 1
        r = int(universe.size)
        for ai in range(r):
            a = int(universe[ai])
            for bi in range(ai + 1, r):
                gain = float(block[ai, bi]) - current
                heapq.heappush(
                    heap,
                    (-gain, next(counter), (a, int(universe[bi])), 0),
                )
    else:
        if default_candidates:
            candidates = [
                (a, b) for a in range(n) for b in range(a + 1, n)
            ]
        if scan is not None:
            # Seed every candidate's round-0 bound from one vectorized
            # scan instead of O(n²) point evaluations. Round-0 entries are
            # always re-evaluated before selection, so a seeding bound
            # that differs from the point value by float noise cannot
            # change correctness.
            scores = np.asarray(scan(placed), dtype=float)
            evaluations += 1
            for edge in candidates:
                gain = float(scores[edge[0], edge[1]]) - current
                heapq.heappush(heap, (-gain, next(counter), edge, 0))
        else:
            for edge in candidates:
                gain = float(fn.value([edge])) - current
                evaluations += 1
                heapq.heappush(heap, (-gain, next(counter), edge, 0))

    for round_number in range(1, k + 1):
        best: Optional[Tuple[float, IndexPair]] = None
        while heap:
            neg_gain, tie, edge, evaluated_round = heapq.heappop(heap)
            if edge in placed_set:
                continue
            if evaluated_round == round_number:
                best = (-neg_gain, edge)
                break
            fresh = (
                float(fn.value(placed + [edge])) - current
            )
            evaluations += 1
            heapq.heappush(
                heap, (-fresh, next(counter), edge, round_number)
            )
        if best is None:
            break
        gain, edge = best
        if stop_when_no_gain and gain <= GAIN_EPSILON:
            break
        placed.append(edge)
        placed_set.add(edge)
        current += gain
    return placed, evaluations

"""Exact (brute-force) MSC solver for tiny instances.

MSC is NP-hard (paper Corollary 2), so exhaustive search is only usable as a
ground-truth oracle in tests and as the reference for checking the proven
approximation ratios on small instances. The solver enumerates all
``C(n(n-1)/2, k)`` placements and refuses instances beyond a configurable
work limit instead of silently hanging.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Optional

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import PlacementResult

DEFAULT_WORK_LIMIT = 2_000_000


def solve_exact(
    instance: MSCInstance,
    seed=None,
    sigma: Optional[SetFunctionProtocol] = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
    **_ignored,
) -> PlacementResult:
    """Optimal placement by exhaustive search (σ is monotone, so only
    exactly-k subsets need enumeration).

    Raises :class:`SolverError` when the search space exceeds *work_limit*
    placements.
    """
    sigma_fn = sigma if sigma is not None else SigmaEvaluator(instance)
    n = sigma_fn.n
    universe = [(a, b) for a in range(n) for b in range(a + 1, n)]
    k = min(instance.k, len(universe))
    space = math.comb(len(universe), k)
    if space > work_limit:
        raise SolverError(
            f"exact search space C({len(universe)}, {k}) = {space} exceeds "
            f"work_limit={work_limit}"
        )

    max_value = getattr(sigma_fn, "max_value", lambda: math.inf)()
    best_edges = []
    best_value = float(sigma_fn.value([]))
    for subset in combinations(universe, k):
        value = float(sigma_fn.value(list(subset)))
        if value > best_value:
            best_value = value
            best_edges = list(subset)
            if best_value >= max_value:
                break

    satisfied_fn = getattr(sigma_fn, "satisfied", None)
    satisfied = satisfied_fn(best_edges) if satisfied_fn is not None else []
    return PlacementResult(
        algorithm="exact",
        edges=instance.edges_to_nodes(best_edges),
        sigma=int(best_value),
        satisfied=satisfied,
        evaluations=space,
        extras={"search_space": space},
    )

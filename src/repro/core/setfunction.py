"""Set-function protocol shared by σ and its submodular bounds μ, ν.

All MSC algorithms (greedy, sandwich, EA, AEA) are written against this
protocol rather than a concrete objective, which is what lets Section VI of
the paper reuse every static algorithm on dynamic networks: a sum of
per-topology set functions implements the same interface
(:class:`SumSetFunction`).

A set function here maps a set of *shortcut edges* — canonical dense-index
pairs ``(a, b)`` with ``a < b`` — to a real value. Besides point evaluation,
implementations expose a vectorized one-step lookahead
(:meth:`SetFunctionProtocol.add_candidates`) that scores every candidate edge
at once; this is the kernel that makes greedy rounds cheap (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.types import IndexPair, normalize_index_pair


def canonical_edges(edges: Iterable[Tuple[int, int]]) -> List[IndexPair]:
    """Normalize an iterable of index pairs to sorted tuples (input order
    preserved, duplicates kept)."""
    return [normalize_index_pair(a, b) for a, b in edges]


@runtime_checkable
class SetFunctionProtocol(Protocol):
    """A monotone set function over shortcut edges on ``n`` nodes."""

    @property
    def n(self) -> int:
        """Number of graph nodes; the candidate universe is all index pairs
        ``(a, b)`` with ``0 <= a < b < n``."""
        ...

    def value(self, edges: Sequence[IndexPair]) -> float:
        """Function value for the given shortcut edge set."""
        ...

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        """``(n, n)`` array whose ``[a, b]`` entry is
        ``value(edges + [(a, b)])``; the diagonal holds ``value(edges)``
        (adding a self-loop is a no-op). The array is symmetric."""
        ...


class SumSetFunction:
    """Sum of set functions over a shared node universe (paper §VI).

    ``σ(F) = Σ_t σ_t(F)`` for dynamic networks, and likewise for the bounds
    μ and ν. A sum of submodular functions is submodular, so every guarantee
    derived for the static terms carries over.
    """

    def __init__(self, terms: Sequence[SetFunctionProtocol]) -> None:
        if not terms:
            raise ValueError("SumSetFunction needs at least one term")
        sizes = {term.n for term in terms}
        if len(sizes) != 1:
            raise ValueError(
                f"terms disagree on node-universe size: {sorted(sizes)}"
            )
        self._terms = list(terms)

    @property
    def n(self) -> int:
        return self._terms[0].n

    @property
    def terms(self) -> List[SetFunctionProtocol]:
        return list(self._terms)

    def value(self, edges: Sequence[IndexPair]) -> float:
        return sum(term.value(edges) for term in self._terms)

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        total = self._terms[0].add_candidates(edges).astype(float)
        for term in self._terms[1:]:
            total += term.add_candidates(edges)
        return total

"""Evolutionary Algorithm (EA) — Algorithm 1 of the paper.

A GSEMO-style bi-objective optimizer: maximize σ(F) (without cardinality
constraint) and minimize |F|. The archive keeps the Pareto front of
``(σ, |F|)``. Each iteration mutates a uniformly chosen archive member by
flipping every possible shortcut edge independently with probability
``2 / (n(n-1))`` (one expected flip), then inserts the offspring if it is not
weakly dominated, evicting anything it weakly dominates. The answer is the
best archive member with ``|F| <= k``.

Theorems 6 and 7 of the paper bound the expected iterations to reach a
bounded-error solution by ``O(n² k)``; in practice (paper Figs. 3–4) EA needs
far more iterations than AEA to become competitive, which our benchmarks
reproduce.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, PlacementResult
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int

Individual = Tuple[FrozenSet[IndexPair], float]  # (edge set, σ value)


class EvolutionaryAlgorithm:
    """GSEMO over shortcut placements (paper Algorithm 1).

    Args:
        instance: the MSC instance (provides n and the budget k).
        iterations: number of mutation rounds ``r`` (paper default 500).
        sigma: objective to use; defaults to the instance's exact σ. The
            dynamic adapter passes a summed σ here.
        seed: RNG seed for reproducible runs.
    """

    def __init__(
        self,
        instance: MSCInstance,
        iterations: int = 500,
        *,
        sigma: Optional[SetFunctionProtocol] = None,
        seed: SeedLike = None,
    ) -> None:
        self.instance = instance
        self.iterations = check_positive_int(iterations, "iterations")
        self.sigma = sigma if sigma is not None else SigmaEvaluator(instance)
        n = self.sigma.n
        if n < 2:
            raise SolverError("EA needs at least two nodes")
        rng = ensure_rng(seed)
        self._np_rng = np.random.default_rng(rng.getrandbits(64))
        self._rng = rng
        self._triu_a, self._triu_b = np.triu_indices(n, k=1)
        self._num_candidates = len(self._triu_a)

    # -------------------------------------------------------------- mutation

    def _mutate(self, edges: FrozenSet[IndexPair]) -> FrozenSet[IndexPair]:
        """Flip each candidate edge independently with prob ``1/N`` where
        ``N = n(n-1)/2`` (i.e. ``2/(n(n-1))``, the paper's rate)."""
        count = int(
            self._np_rng.binomial(
                self._num_candidates, 1.0 / self._num_candidates
            )
        )
        if count == 0:
            return edges
        chosen = self._np_rng.choice(
            self._num_candidates, size=count, replace=False
        )
        mutated = set(edges)
        for flat in chosen:
            pair = (int(self._triu_a[flat]), int(self._triu_b[flat]))
            if pair in mutated:
                mutated.discard(pair)
            else:
                mutated.add(pair)
        return frozenset(mutated)

    # --------------------------------------------------------------- archive

    @staticmethod
    def _weakly_dominates(a: Individual, b: Individual) -> bool:
        """a weakly dominates b: at least as good on both objectives."""
        return a[1] >= b[1] and len(a[0]) <= len(b[0])

    def _insert(self, archive: List[Individual], child: Individual) -> None:
        for member in archive:
            if self._weakly_dominates(member, child):
                return
        archive[:] = [
            member
            for member in archive
            if not self._weakly_dominates(child, member)
        ]
        archive.append(child)

    # ------------------------------------------------------------------ run

    def solve(self, k: Optional[int] = None) -> PlacementResult:
        budget = self.instance.k if k is None else k
        empty: Individual = (frozenset(), float(self.sigma.value([])))
        archive: List[Individual] = [empty]
        best_feasible: Individual = empty
        trace: List[int] = []
        evaluations = 1

        for _ in range(self.iterations):
            parent = archive[self._rng.randrange(len(archive))]
            child_edges = self._mutate(parent[0])
            if child_edges == parent[0]:
                trace.append(int(best_feasible[1]))
                continue
            child: Individual = (
                child_edges,
                float(self.sigma.value(list(child_edges))),
            )
            evaluations += 1
            self._insert(archive, child)
            if len(child_edges) <= budget and child[1] > best_feasible[1]:
                best_feasible = child
            trace.append(int(best_feasible[1]))

        edges = sorted(best_feasible[0])
        satisfied = _satisfied_or_empty(self.sigma, edges)
        return PlacementResult(
            algorithm="ea",
            edges=self.instance.edges_to_nodes(edges),
            sigma=int(best_feasible[1]),
            satisfied=satisfied,
            evaluations=evaluations,
            trace=trace,
            extras={"archive_size": len(archive)},
        )


def _satisfied_or_empty(sigma, edges: Sequence[IndexPair]):
    satisfied_fn = getattr(sigma, "satisfied", None)
    return satisfied_fn(edges) if satisfied_fn is not None else []


def solve_ea(
    instance: MSCInstance,
    seed: SeedLike = None,
    iterations: int = 500,
    **_ignored,
) -> PlacementResult:
    """Registry-compatible wrapper for :class:`EvolutionaryAlgorithm`."""
    return EvolutionaryAlgorithm(
        instance, iterations=iterations, seed=seed
    ).solve()

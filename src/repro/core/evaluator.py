"""The σ objective: number of important social pairs maintained by F.

:class:`SigmaEvaluator` is the exact objective of the MSC problem. A point
evaluation builds a :class:`~repro.graph.shortcuts.ShortcutDistanceEngine`
for the shortcut set and checks each pair's augmented distance against the
requirement. The one-step lookahead (:meth:`SigmaEvaluator.add_candidates`)
scores all ``O(n²)`` candidate edges simultaneously with numpy broadcasting:
for an unsatisfied pair ``(u, w)``, the candidate ``(a, b)`` satisfies it iff
``min(d_F(u,a) + d_F(b,w), d_F(u,b) + d_F(a,w)) <= d_t`` — note the distances
here are already *augmented* by the current set F, so the lookahead is exact,
not a bound.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.problem import MSCInstance
from repro.graph.shortcuts import ShortcutDistanceEngine
from repro.types import IndexPair


class SigmaEvaluator:
    """Exact evaluation of σ(F) for one MSC instance.

    The evaluator never mutates the instance; shortcut sets are passed per
    call as sequences of canonical index pairs.
    """

    def __init__(self, instance: MSCInstance) -> None:
        self.instance = instance
        self.threshold = instance.d_threshold
        # Tolerance so pairs exactly on the requirement count as satisfied
        # despite float rounding.
        self.tolerance = 1e-12 + 1e-9 * self.threshold
        self._pairs = instance.pair_indices
        base = instance.oracle.matrix
        self.base_satisfied: List[bool] = [
            bool(base[iu, iw] <= self.threshold + self.tolerance)
            for iu, iw in self._pairs
        ]
        self.base_sigma = sum(self.base_satisfied)

    @property
    def n(self) -> int:
        return self.instance.n

    @property
    def num_pairs(self) -> int:
        return len(self._pairs)

    def max_value(self) -> float:
        """Largest achievable σ: every pair maintained."""
        return float(self.num_pairs)

    # ------------------------------------------------------------ evaluation

    def _engine(self, edges: Sequence[IndexPair]) -> ShortcutDistanceEngine:
        return ShortcutDistanceEngine.from_index_pairs(
            self.instance.oracle, edges
        )

    def satisfied(self, edges: Sequence[IndexPair]) -> List[bool]:
        """Per-pair satisfaction flags under shortcut set *edges*."""
        if not edges:
            return list(self.base_satisfied)
        engine = self._engine(edges)
        limit = self.threshold + self.tolerance
        sources = sorted({iu for iu, _ in self._pairs})
        rows = engine.distances_from_indices(sources)
        row_of = {s: i for i, s in enumerate(sources)}
        return [
            bool(rows[row_of[iu], iw] <= limit) for iu, iw in self._pairs
        ]

    def value(self, edges: Sequence[IndexPair]) -> int:
        """σ(F): the number of maintained social pairs."""
        return sum(self.satisfied(edges))

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        """``(n, n)`` int array of ``σ(F ∪ {(a, b)})`` for every candidate.

        Symmetric; the diagonal equals ``σ(F)``.
        """
        n = self.n
        engine = self._engine(edges)
        limit = self.threshold + self.tolerance
        sources = sorted({i for pair in self._pairs for i in pair})
        batched = engine.distances_from_indices(sources)
        row_of = {s: i for i, s in enumerate(sources)}

        satisfied_now = 0
        acc = np.zeros((n, n), dtype=np.int32)
        for iu, iw in self._pairs:
            du = batched[row_of[iu]]
            if du[iw] <= limit:
                satisfied_now += 1
                continue
            dw = batched[row_of[iw]]
            mask = (du[:, None] + dw[None, :]) <= limit
            acc += mask
            acc += mask.T
            # A pair cannot be double-counted: if both orientations of a
            # candidate satisfy it, mask and mask.T overlap only where
            # du[a]+dw[b] and du[b]+dw[a] are both within the limit, and the
            # pair is still satisfied just once.  Correct for that overlap.
            acc -= mask & mask.T
        acc += satisfied_now
        np.fill_diagonal(acc, satisfied_now)
        return acc

"""The σ objective: number of important social pairs maintained by F.

:class:`SigmaEvaluator` is the exact objective of the MSC problem. A point
evaluation checks each pair's augmented distance against the requirement
using a :class:`~repro.graph.shortcuts.ShortcutDistanceEngine` for the
shortcut set; engines are memoized in a small LRU keyed by the set, and a
miss whose parent set ``F \\ {e}`` is cached derives the ``F`` engine
incrementally (:meth:`ShortcutDistanceEngine.extended_by_index`) instead of
rebuilding from the APSP matrix — the pattern every solver's hot loop
follows (greedy rounds grow F one edge at a time; EA/AEA offspring differ
from a pooled parent by one edge).

The one-step lookahead (:meth:`SigmaEvaluator.add_candidates`) scores all
``O(n²)`` candidate edges simultaneously: for an unsatisfied pair
``(u, w)``, the candidate ``(a, b)`` satisfies it iff
``min(d_F(u,a) + d_F(b,w), d_F(u,b) + d_F(a,w)) <= d_t`` — note the
distances here are already *augmented* by the current set F, so the
lookahead is exact, not a bound. Since distances are nonnegative, only
candidates whose endpoints are each within ``d_t`` of a pair endpoint can
satisfy the pair, so the scan restricts each pair's mask to those rows and
columns and scatter-adds the reduced block instead of allocating a full
``(n, n)`` mask per pair (chunked to bound peak memory).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.problem import MSCInstance
from repro.core.substrate import (  # noqa: F401  (re-exported: historical home)
    DEFAULT_ENGINE_CACHE_SIZE,
    ENGINE_CACHE_MIN_N,
    EngineCache,
    default_engine_cache_size,
)
from repro.graph.paths import ball_indices
from repro.graph.shortcuts import ShortcutDistanceEngine
from repro.types import IndexPair

#: Peak per-pair temporary size (elements) for the chunked candidate scan.
DEFAULT_CHUNK_ELEMENTS = 1 << 22

#: Below this node count the dense per-pair mask is used even when pruning
#: is enabled: an (n, n) boolean mask this small lives in cache and beats
#: the pruned path's extra per-pair index bookkeeping.
PRUNED_SCAN_MIN_N = 96

#: Below this node count the d_t-ball candidate restriction is skipped:
#: the full (n, n) scan is already cheap and the ball/searchsorted
#: bookkeeping would dominate.
CANDIDATE_RESTRICT_MIN_N = 192


class PairScanAccumulator:
    """Index-based scatter-add accumulator for the pruned candidate scan.

    Per-pair candidate masks arrive as flat cell indices
    (:meth:`add_pair`); they are buffered and folded into the dense
    ``(n, n)`` accumulator with one :func:`numpy.bincount` per flush —
    orders of magnitude cheaper than fancy-indexed ``+=`` per pair.
    Buffered indices are flushed once they exceed *chunk_elements*, so peak
    memory stays bounded regardless of how many pairs contribute.
    """

    def __init__(
        self,
        n: int,
        *,
        weighted: bool = False,
        chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> None:
        self._n = n
        self._chunk_elements = max(int(chunk_elements), 1)
        self.acc = np.zeros(
            (n, n), dtype=np.float64 if weighted else np.int32
        )
        self._flat: List[np.ndarray] = []
        self._weights: Optional[List[np.ndarray]] = [] if weighted else None
        self._pending = 0

    def add_pair(
        self,
        du: np.ndarray,
        dw: np.ndarray,
        limit: float,
        weight: Optional[float] = None,
    ) -> None:
        """Accumulate one pair's candidate-satisfaction mask.

        Candidate ``(a, b)`` satisfies the pair iff
        ``du[a] + dw[b] <= limit`` or ``du[b] + dw[a] <= limit``. Distances
        are nonnegative, so every satisfying index has ``du <= limit`` or
        ``dw <= limit`` — the mask is computed only over that reduced index
        set, in row chunks whose temporaries stay under the chunk budget.
        The accumulated counts match the dense ``mask | mask.T`` form (the
        historical ``mask + mask.T - (mask & mask.T)``) cell for cell.
        """
        near = np.flatnonzero((du <= limit) | (dw <= limit))
        if near.size == 0:
            return
        du_r = du[near]
        dw_r = dw[near]
        row_offsets = near * self._n
        rows_per_chunk = max(1, self._chunk_elements // near.size)
        for start in range(0, near.size, rows_per_chunk):
            stop = min(start + rows_per_chunk, near.size)
            block = (du_r[start:stop, None] + dw_r[None, :]) <= limit
            block |= (dw_r[start:stop, None] + du_r[None, :]) <= limit
            flat = (row_offsets[start:stop, None] + near[None, :])[block]
            if flat.size == 0:
                continue
            self._flat.append(flat)
            if self._weights is not None:
                self._weights.append(
                    np.full(flat.size, 0.0 if weight is None else weight)
                )
            self._pending += flat.size
            if self._pending >= self._chunk_elements:
                self.flush()

    def flush(self) -> None:
        """Fold the buffered indices into the dense accumulator."""
        if not self._flat:
            return
        flat = np.concatenate(self._flat)
        cells = self._n * self._n
        weights = (
            None if self._weights is None
            else np.concatenate(self._weights)
        )
        if flat.size * 4 < cells:
            # Sparse flush: scatter straight into the accumulator.
            # bincount would allocate a dense int64/float64 array over all
            # n² cells — on the restricted scan that temporary would rival
            # the accumulator itself.
            acc_flat = self.acc.reshape(-1)
            np.add.at(acc_flat, flat, 1 if weights is None else weights)
        elif weights is None:
            counts = np.bincount(flat, minlength=cells)
            # In-place add with an explicit cast: bincount always yields
            # int64, and a cast into the accumulator avoids materializing
            # an extra (n, n) converted copy per flush.
            np.add(
                self.acc,
                counts.reshape(self._n, self._n),
                out=self.acc,
                casting="unsafe",
            )
        else:
            counts = np.bincount(flat, weights=weights, minlength=cells)
            self.acc += counts.reshape(self._n, self._n)
        if self._weights is not None:
            self._weights.clear()
        self._flat.clear()
        self._pending = 0

    def result(self) -> np.ndarray:
        self.flush()
        return self.acc


class SigmaEvaluator:
    """Exact evaluation of σ(F) for one MSC instance.

    The evaluator never mutates the instance; shortcut sets are passed per
    call as sequences of canonical index pairs.

    Args:
        instance: the MSC instance.
        pruned: use the pruned, chunked candidate scan (default; takes
            effect from :data:`PRUNED_SCAN_MIN_N` nodes up — below that the
            dense mask is faster and equally exact). ``False`` always uses
            the dense per-pair ``(n, n)`` masks — identical results, kept
            for benchmarking the fast path against.
        engine_cache_size: LRU capacity of the shortcut-engine memo; ``0``
            disables engine reuse (every evaluation rebuilds from the APSP
            matrix). ``None`` (default) adopts the **shared** cache of the
            instance's :class:`~repro.core.substrate.Substrate` — every
            evaluator, planner session and served request over one
            substrate then reuses each other's incremental engine
            extensions (the substrate auto-sizes it:
            :data:`DEFAULT_ENGINE_CACHE_SIZE` from
            :data:`ENGINE_CACHE_MIN_N` nodes up, disabled below — tiny
            instances never pay the cache bookkeeping). An explicit size
            always builds a private cache.
        restrict_candidates: let the candidate *generation* (not just the
            scoring) shrink to the d_t-ball of the pair endpoints and
            placed shortcut endpoints (:meth:`candidate_universe`) —
            every candidate outside the ball provably has zero marginal
            gain, so greedy placements are unchanged. Takes effect from
            :data:`CANDIDATE_RESTRICT_MIN_N` nodes up; ``False`` keeps the
            full (n, n) enumeration (benchmark baseline).
        chunk_elements: peak per-pair temporary size for the pruned scan.
    """

    def __init__(
        self,
        instance: MSCInstance,
        *,
        pruned: bool = True,
        engine_cache_size: Optional[int] = None,
        restrict_candidates: bool = True,
        chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> None:
        self.instance = instance
        self.threshold = instance.d_threshold
        # Tolerance so pairs exactly on the requirement count as satisfied
        # despite float rounding.
        self.tolerance = 1e-12 + 1e-9 * self.threshold
        self.pruned = bool(pruned)
        self.restrict_candidates = bool(restrict_candidates)
        self.chunk_elements = int(chunk_elements)
        if engine_cache_size is None:
            # Adopt the substrate's shared engine LRU so concurrent
            # evaluators over one substrate (batch solves, planner
            # sessions, served requests) reuse each other's engines.
            self.engine_cache = instance.substrate.engine_cache
        else:
            self.engine_cache = EngineCache(
                instance.oracle, engine_cache_size
            )
        self._pairs = instance.pair_indices
        oracle = instance.oracle
        self.base_satisfied: List[bool] = [
            bool(
                oracle.distance_by_index(iu, iw)
                <= self.threshold + self.tolerance
            )
            for iu, iw in self._pairs
        ]
        self.base_sigma = sum(self.base_satisfied)
        # Fixed index plumbing for the vectorized paths: the distinct pair
        # endpoints (query sources) and, per pair, the rows of its two
        # endpoints in the batched query result.
        self._sources = sorted({i for pair in self._pairs for i in pair})
        self._row_of: Dict[int, int] = {
            s: i for i, s in enumerate(self._sources)
        }
        self._pair_u_rows = np.array(
            [self._row_of[iu] for iu, _ in self._pairs], dtype=np.intp
        )
        self._pair_w_rows = np.array(
            [self._row_of[iw] for _, iw in self._pairs], dtype=np.intp
        )
        self._pair_w_cols = np.array(
            [iw for _, iw in self._pairs], dtype=np.intp
        )
        # satisfied() only queries from first endpoints to second-endpoint
        # columns; keep the smaller source set and the deduplicated column
        # set for it (the column-restricted engine query never touches an
        # n-wide row — label-sliced on the hub tier).
        self._u_sources = sorted({iu for iu, _ in self._pairs})
        u_row_of = {s: i for i, s in enumerate(self._u_sources)}
        self._pair_u_only_rows = np.array(
            [u_row_of[iu] for iu, _ in self._pairs], dtype=np.intp
        )
        self._w_columns = np.unique(self._pair_w_cols)
        self._pair_w_slots = np.searchsorted(
            self._w_columns, self._pair_w_cols
        )

    @property
    def n(self) -> int:
        return self.instance.n

    @property
    def num_pairs(self) -> int:
        return len(self._pairs)

    def max_value(self) -> float:
        """Largest achievable σ: every pair maintained."""
        return float(self.num_pairs)

    # ------------------------------------------------------------ evaluation

    def _engine(self, edges: Sequence[IndexPair]) -> ShortcutDistanceEngine:
        return self.engine_cache.get(edges)

    def _use_pruned_scan(self) -> bool:
        """Whether the scatter-add scan should replace dense masks: both
        paths are exact, so this is purely a size cutover."""
        return self.pruned and self.n >= PRUNED_SCAN_MIN_N

    def satisfied(self, edges: Sequence[IndexPair]) -> List[bool]:
        """Per-pair satisfaction flags under shortcut set *edges*."""
        if not edges:
            return list(self.base_satisfied)
        engine = self._engine(edges)
        limit = self.threshold + self.tolerance
        rows = engine.distances_from_indices_to(
            self._u_sources, self._w_columns
        )
        distances = rows[self._pair_u_only_rows, self._pair_w_slots]
        return (distances <= limit).tolist()

    def value(self, edges: Sequence[IndexPair]) -> int:
        """σ(F): the number of maintained social pairs."""
        return sum(self.satisfied(edges))

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        """``(n, n)`` int array of ``σ(F ∪ {(a, b)})`` for every candidate.

        Symmetric; the diagonal equals ``σ(F)``.
        """
        n = self.n
        engine = self._engine(edges)
        limit = self.threshold + self.tolerance
        batched = engine.distances_from_indices(self._sources)
        pair_distances = batched[self._pair_u_rows, self._pair_w_cols]
        satisfied_mask = pair_distances <= limit
        satisfied_now = int(satisfied_mask.sum())

        if self._use_pruned_scan():
            scan = PairScanAccumulator(
                n, chunk_elements=self.chunk_elements
            )
            for p in np.flatnonzero(~satisfied_mask):
                scan.add_pair(
                    batched[self._pair_u_rows[p]],
                    batched[self._pair_w_rows[p]],
                    limit,
                )
            acc = scan.result()
        else:
            acc = np.zeros((n, n), dtype=np.int32)
            for p in np.flatnonzero(~satisfied_mask):
                du = batched[self._pair_u_rows[p]]
                dw = batched[self._pair_w_rows[p]]
                mask = (du[:, None] + dw[None, :]) <= limit
                acc += mask
                acc += mask.T
                # A pair cannot be double-counted: where both orientations
                # of a candidate satisfy it, the pair is still satisfied
                # just once. Correct for the overlap.
                acc -= mask & mask.T
        acc += satisfied_now
        np.fill_diagonal(acc, satisfied_now)
        return acc

    # ------------------------------------------- restricted candidate scan

    def candidate_universe(
        self, edges: Sequence[IndexPair]
    ) -> Optional[np.ndarray]:
        """Sorted endpoint indices that can carry positive marginal gain.

        A candidate ``(a, b)`` satisfies an unsatisfied pair ``(u, w)``
        only if ``d_F(u, a) <= d_t`` and ``d_F(b, w) <= d_t`` (distances
        are nonnegative, so each term of the satisfying sum is itself
        within the requirement). Any augmented distance within ``d_t``
        decomposes into base-graph hops of at most ``d_t`` whose inner
        stops are placed shortcut endpoints, so every useful endpoint lies
        within **base** distance ``d_t`` of a pair endpoint or of an
        endpoint of *edges* — the ball this method reads off the oracle's
        row block. Candidates outside the ball have exactly zero gain,
        which is why restricting generation to it leaves greedy placements
        unchanged.

        Returns ``None`` when the restriction is disabled or not worth it
        (small graphs below :data:`CANDIDATE_RESTRICT_MIN_N`).
        """
        if not self.restrict_candidates:
            return None
        n = self.n
        if n < CANDIDATE_RESTRICT_MIN_N:
            return None
        limit = self.threshold + self.tolerance
        oracle = self.instance.oracle
        sources = set(self._sources)
        for a, b in edges:
            sources.add(int(a))
            sources.add(int(b))
        if getattr(oracle, "prefers_ball_universe", False):
            # Hub-label tier: a full row query costs the whole label
            # index, while a cutoff Dijkstra costs only the ball — and
            # both enumerate exactly the base-distance d_t-ball.
            return ball_indices(
                self.instance.graph, sorted(sources), limit
            )
        member = np.zeros(n, dtype=bool)
        for src in sorted(sources):
            member |= oracle.row_by_index(src) <= limit
        return np.flatnonzero(member).astype(np.intp)

    def add_candidates_restricted(
        self, edges: Sequence[IndexPair]
    ) -> Optional["tuple[np.ndarray, np.ndarray]"]:
        """Candidate scores over the restricted universe.

        Returns ``(scores, universe)`` where *universe* is
        :meth:`candidate_universe` and *scores* is the ``(r, r)`` block of
        :meth:`add_candidates` at ``np.ix_(universe, universe)`` —
        computed directly at that size, never materializing ``(n, n)``.
        Returns ``None`` when the restriction does not apply; callers fall
        back to the dense scan.
        """
        universe = self.candidate_universe(edges)
        if universe is None:
            return None
        r = int(universe.size)
        engine = self._engine(edges)
        limit = self.threshold + self.tolerance
        # The scan only reads universe columns, and every pair endpoint is
        # itself in the universe (distance 0 to itself), so the narrow
        # (s, r) query serves both the scan rows and the pair distances —
        # the full (s, n) block is never materialized.
        restricted = engine.distances_from_indices_to(
            self._sources, universe
        )
        w_slots = np.searchsorted(universe, self._pair_w_cols)
        pair_distances = restricted[self._pair_u_rows, w_slots]
        satisfied_mask = pair_distances <= limit
        satisfied_now = int(satisfied_mask.sum())
        # Flushing at ~r²/4 buffered cells keeps the transient index
        # buffers well under the (r, r) result size — on the sparse tier
        # the whole point is a small peak, and the extra flushes are cheap.
        scan = PairScanAccumulator(
            r, chunk_elements=min(self.chunk_elements, max(r * r // 4, 1))
        )
        for p in np.flatnonzero(~satisfied_mask):
            scan.add_pair(
                restricted[self._pair_u_rows[p]],
                restricted[self._pair_w_rows[p]],
                limit,
            )
        scores = scan.result()
        scores += satisfied_now
        np.fill_diagonal(scores, satisfied_now)
        return scores, universe

"""Name-based solver registry.

Experiments, benchmarks and the CLI refer to algorithms by short name; this
registry is the single mapping. All solvers share the signature
``solve(instance, seed=None, **params) -> PlacementResult``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.aea import solve_aea, solve_aea_warmstart
from repro.core.ea import solve_ea
from repro.core.exact import solve_exact
from repro.core.msc_cn import solve_msc_cn, solve_msc_cn_exact
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import solve_sandwich
from repro.core.substrate import PlacementRequest, Substrate
from repro.exceptions import SolverError
from repro.types import PlacementResult

Solver = Callable[..., PlacementResult]

_SOLVERS: Dict[str, Solver] = {
    "sandwich": solve_sandwich,
    "aa": solve_sandwich,  # the paper calls the sandwich algorithm "AA"
    "ea": solve_ea,
    "aea": solve_aea,
    "aea+warm": solve_aea_warmstart,
    "random": solve_random_baseline,
    "exact": solve_exact,
    "msc_cn": solve_msc_cn,
    "msc_cn_exact": solve_msc_cn_exact,
}


def solver_names() -> List[str]:
    """Registered solver names, sorted."""
    return sorted(_SOLVERS)


def get_solver(name: str) -> Solver:
    """Look up a solver by name (case-insensitive)."""
    try:
        return _SOLVERS[name.lower()]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {', '.join(solver_names())}"
        ) from None


def register_solver(name: str, solver: Solver, overwrite: bool = False) -> None:
    """Register a custom solver under *name* (for downstream extensions)."""
    key = name.lower()
    if key in _SOLVERS and not overwrite:
        raise SolverError(f"solver {name!r} already registered")
    _SOLVERS[key] = solver


def solve(
    name: str, instance, seed=None, **params
) -> PlacementResult:
    """Convenience: look up *name* and run it on *instance*.

    *instance* is an :class:`MSCInstance`; a
    :class:`~repro.core.substrate.Substrate` is also accepted together
    with a ``request=`` keyword (forwarded to :func:`solve_request`).
    """
    if isinstance(instance, Substrate):
        request = params.pop("request", None)
        if request is None:
            raise SolverError(
                "solving on a Substrate requires a request= keyword "
                "(see solve_request)"
            )
        return solve_request(name, instance, request, seed=seed, **params)
    return get_solver(name)(instance, seed=seed, **params)


def solve_request(
    name: str,
    substrate: Substrate,
    request: PlacementRequest,
    seed=None,
    **params,
) -> PlacementResult:
    """Run solver *name* on ``substrate + request``.

    The split form of :func:`solve`: the substrate (graph, oracle, shared
    engine cache) is reused across calls, and only the cheap per-request
    state is built here. Placements are identical to solving the
    equivalent one-shot :class:`MSCInstance`.
    """
    return get_solver(name)(
        MSCInstance.from_parts(substrate, request), seed=seed, **params
    )

"""Submodular lower/upper bounds μ and ν for the MSC objective (paper §V-B).

``μ`` (lower bound): σ restricted so that each pair's path may use **at most
one shortcut edge**. Restricting paths can only lose satisfied pairs, so
``μ(F) <= σ(F)``. Because a pair is then satisfied exactly when *some* edge
in F individually satisfies it, μ is a maximum-coverage function over pairs —
monotone and submodular.

``ν`` (upper bound): a **weighted maximum coverage** over the pair endpoints.
A node of a pair is *covered* by F when some shortcut endpoint is within
``d_t`` of it (base-graph distance); each node's weight is half its number of
appearances in S. Any pair newly satisfied by F must have both endpoints
covered (the first/last shortcut endpoint on its short path is within ``d_t``
of each end), which gives ``σ(F) <= ν(F)``; weighted coverage is monotone and
submodular.

Both classes add the count of pairs already satisfied in the base graph as a
constant, so the sandwich ``μ <= σ <= ν`` also holds for instances that allow
initially-satisfied pairs (the paper's instances have none).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.problem import MSCInstance
from repro.types import IndexPair


class MuFunction:
    """Lower bound μ: each pair may be rescued by at most one shortcut edge.

    Precomputes, for every pair ``i``, the symmetric boolean matrix
    ``mask_i[a, b] = [min(D[u,a]+D[b,w], D[u,b]+D[a,w]) <= d_t]`` over base
    distances ``D``. Memory is ``O(m n²)`` bytes, fine for the laptop-scale
    instances this library targets (documented in DESIGN.md).
    """

    #: μ is provably submodular (paper §V-B1); consumed by CELF.
    is_submodular = True

    def __init__(self, instance: MSCInstance) -> None:
        self.instance = instance
        self.threshold = instance.d_threshold
        tol = 1e-12 + 1e-9 * self.threshold
        limit = self.threshold + tol
        # Row accessors, never the square matrix: identical masks on every
        # oracle tier (a sparse/hub oracle serves pair-endpoint rows
        # without materializing O(n²)).
        oracle = instance.oracle
        self._masks: List[Optional[np.ndarray]] = []
        self.base_satisfied: List[bool] = []
        for iu, iw in instance.pair_indices:
            du = oracle.row_by_index(iu)
            dw = oracle.row_by_index(iw)
            if du[iw] <= limit:
                # Base-satisfied pairs need no mask; they count always.
                self.base_satisfied.append(True)
                self._masks.append(None)
                continue
            self.base_satisfied.append(False)
            mask = (du[:, None] + dw[None, :]) <= limit
            self._masks.append(mask | mask.T)
        self.base_sigma = sum(self.base_satisfied)

    @property
    def n(self) -> int:
        return self.instance.n

    def pair_rescued(self, pair_index: int, edges: Sequence[IndexPair]) -> bool:
        """Whether pair *pair_index* meets the requirement under μ's
        one-shortcut restriction."""
        if self.base_satisfied[pair_index]:
            return True
        mask = self._masks[pair_index]
        return any(mask[a, b] for a, b in edges)

    def satisfied(self, edges: Sequence[IndexPair]) -> List[bool]:
        """Per-pair satisfaction flags under the μ restriction."""
        return [
            self.pair_rescued(i, edges)
            for i in range(len(self._masks))
        ]

    def value(self, edges: Sequence[IndexPair]) -> int:
        return sum(self.satisfied(edges))

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        n = self.n
        acc = np.zeros((n, n), dtype=np.int32)
        covered = 0
        for i, mask in enumerate(self._masks):
            if self.pair_rescued(i, edges):
                covered += 1
            else:
                acc += mask
        acc += covered
        np.fill_diagonal(acc, covered)
        return acc


class NuFunction:
    """Upper bound ν: weighted maximum coverage over pair endpoints.

    The cover relation is precomputed as an ``(n, P)`` boolean matrix over
    the ``P`` distinct pair nodes; evaluating ν(F) reduces the rows of F's
    endpoints, and the one-step lookahead uses the identity
    ``gain(a, b) = nw[a] + nw[b] - overlap(a, b)`` with
    ``overlap = (Cov · diag(w_uncovered)) Covᵀ``.
    """

    #: ν is provably submodular (paper §V-B2); consumed by CELF.
    is_submodular = True

    def __init__(self, instance: MSCInstance) -> None:
        self.instance = instance
        self.threshold = instance.d_threshold
        tol = 1e-12 + 1e-9 * self.threshold
        limit = self.threshold + tol
        oracle = instance.oracle

        graph = instance.graph
        self.pair_nodes = instance.pair_nodes()
        self._pair_node_indices = np.array(
            [graph.node_index(x) for x in self.pair_nodes], dtype=np.intp
        )
        # Weight of a node: half its appearance count across S (paper §V-B2).
        counts = {}
        for u, w in instance.pairs:
            counts[u] = counts.get(u, 0) + 1
            counts[w] = counts.get(w, 0) + 1
        self.weights = np.array(
            [counts[x] / 2.0 for x in self.pair_nodes], dtype=float
        )
        # cover[v, j]: endpoint v covers pair node j. Base distances are
        # symmetric, so the pair-node *rows* transpose into the column
        # slice the dense matrix used to provide.
        self.cover = oracle.rows(self._pair_node_indices).T <= limit

        base_limits = [
            bool(oracle.distance_by_index(iu, iw) <= limit)
            for iu, iw in instance.pair_indices
        ]
        self.base_sigma = sum(base_limits)

    @property
    def n(self) -> int:
        return self.instance.n

    def covered_nodes(self, edges: Sequence[IndexPair]) -> np.ndarray:
        """Boolean vector over pair nodes: covered by any endpoint of F."""
        covered = np.zeros(len(self.pair_nodes), dtype=bool)
        for a, b in edges:
            covered |= self.cover[a, :]
            covered |= self.cover[b, :]
        return covered

    def value(self, edges: Sequence[IndexPair]) -> float:
        return float(
            self.weights @ self.covered_nodes(edges)
        ) + self.base_sigma

    def add_candidates(self, edges: Sequence[IndexPair]) -> np.ndarray:
        covered = self.covered_nodes(edges)
        current = float(self.weights @ covered) + self.base_sigma
        uncovered_weights = np.where(covered, 0.0, self.weights)
        # nw[v]: weight newly covered by endpoint v alone.
        nw = self.cover @ uncovered_weights
        overlap = (self.cover * uncovered_weights) @ self.cover.T
        acc = current + nw[:, None] + nw[None, :] - overlap
        np.fill_diagonal(acc, current)
        return acc

"""The MSC problem instance: graph + important social pairs + requirements.

An instance bundles everything Section III of the paper fixes before the
optimization starts: the undirected graph with edge lengths, the set ``S`` of
``m`` important social pairs, the failure-probability threshold ``p_t``
(equivalently the distance requirement ``d_t = -ln(1 - p_t)``), and the
shortcut-edge budget ``k``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.exceptions import InstanceError
from repro.failure.models import failure_to_length, length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node, WirelessGraph
from repro.graph.hub_labels import HubLabelOracle, threshold_cutoff
from repro.graph.sparse_oracle import (
    SparseRowOracle,
    relevant_source_indices,
)
from repro.types import IndexPair, NodePair, normalize_index_pair
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_nonnegative_int,
    check_positive_int,
)

#: Any distance-oracle tier (all serve the row protocol).
OracleLike = Union[DistanceOracle, SparseRowOracle, HubLabelOracle]

#: Oracle policy names accepted by ``MSCInstance(oracle=...)``.
ORACLE_POLICIES = ("dense", "sparse", "hub", "auto")

#: Below this node count ``auto`` always picks the dense tier: the full
#: APSP is cheap and every consumer gets O(1) row views with no ball
#: bookkeeping.
SPARSE_ORACLE_MIN_N = 512

#: ``auto`` picks the dense tier when the relevant-source set (pair
#: endpoints + their d_t-ball) exceeds this fraction of the nodes — a row
#: block nearly as tall as the matrix saves nothing.
SPARSE_MAX_RELEVANT_FRACTION = 0.5

#: From this node count up ``auto`` picks the hub-label tier: the sparse
#: row block is still ``r × n`` (its width grows with the graph), while
#: the threshold-cutoff label index is a few entries per node and builds
#: in ``O(n · ball)`` — the n=10⁴–10⁶ operating range.
HUB_ORACLE_MIN_N = 10_000

#: Module default used when ``MSCInstance`` gets no ``oracle=`` argument;
#: settable via :func:`set_default_oracle_policy` (the CLI's ``--oracle``).
_DEFAULT_ORACLE_POLICY = "auto"


def set_default_oracle_policy(policy: str) -> None:
    """Set the process-wide default oracle tier policy.

    *policy* is one of :data:`ORACLE_POLICIES`. Instances built with an
    explicit ``oracle=`` argument (including the prebuilt oracles the
    paper-scale workloads share across thresholds) are unaffected.
    """
    global _DEFAULT_ORACLE_POLICY
    if policy not in ORACLE_POLICIES:
        raise InstanceError(
            f"unknown oracle policy {policy!r}; "
            f"available: {', '.join(ORACLE_POLICIES)}"
        )
    _DEFAULT_ORACLE_POLICY = policy


def default_oracle_policy() -> str:
    """The current process-wide default oracle tier policy."""
    return _DEFAULT_ORACLE_POLICY


def resolve_oracle(
    graph: WirelessGraph,
    pair_indices: Sequence[IndexPair],
    d_threshold: float,
    policy: str,
) -> OracleLike:
    """Build the distance oracle *policy* asks for.

    ``dense`` builds the classic APSP :class:`DistanceOracle`; ``sparse``
    builds a :class:`SparseRowOracle` restricted to the pair endpoints and
    their ``d_t``-ball; ``hub`` builds a threshold-cutoff
    :class:`HubLabelOracle` (exact for every comparison against ``d_t``,
    label footprint independent of pair count). ``auto`` picks dense below
    :data:`SPARSE_ORACLE_MIN_N`, hub from :data:`HUB_ORACLE_MIN_N` up,
    and in between measures the ball first (cutoff Dijkstra from the
    endpoints — cost bounded by the ball, not the graph) and picks sparse
    only when the relevant fraction ``r/n`` is at most
    :data:`SPARSE_MAX_RELEVANT_FRACTION`.
    """
    if policy not in ORACLE_POLICIES:
        raise InstanceError(
            f"unknown oracle policy {policy!r}; "
            f"available: {', '.join(ORACLE_POLICIES)}"
        )
    seeds = sorted({i for pair in pair_indices for i in pair})
    if policy == "sparse":
        return SparseRowOracle(graph, seeds, radius=d_threshold)
    if policy == "dense":
        return DistanceOracle(graph)
    if policy == "hub":
        return HubLabelOracle(graph, cutoff=threshold_cutoff(d_threshold))
    n = graph.number_of_nodes()
    if n < SPARSE_ORACLE_MIN_N or not seeds:
        return DistanceOracle(graph)
    if n >= HUB_ORACLE_MIN_N:
        return HubLabelOracle(graph, cutoff=threshold_cutoff(d_threshold))
    sources = relevant_source_indices(graph, seeds, d_threshold)
    if sources.size > SPARSE_MAX_RELEVANT_FRACTION * n:
        return DistanceOracle(graph)
    return SparseRowOracle(graph, sources=sources)


class MSCInstance:
    """A Maintaining-Social-Connections problem instance.

    Args:
        graph: the base communication graph (edge lengths already encode
            link failure probabilities).
        pairs: the important social pairs ``S`` as node pairs; each pair must
            consist of two distinct graph nodes. Duplicate pairs are allowed
            and each copy counts separately toward σ (they are distinct
            "connections" to maintain).
        k: shortcut-edge budget (``|F| <= k``).
        p_threshold: failure-probability threshold ``p_t``; exactly one of
            *p_threshold* / *d_threshold* must be given.
        d_threshold: distance requirement ``d_t`` (length space).
        require_initially_unsatisfied: when True (default), reject pairs whose
            base-graph distance already meets the requirement. The paper
            selects pairs this way (§VII-A3), and the upper bound ν's proof
            relies on it; set to False to accept arbitrary pair sets (the
            evaluator and bounds still handle base-satisfied pairs
            correctly).
        allow_degenerate: when True, accept a ``k = 0`` budget and an empty
            pair set. Such instances arise naturally in robustness studies
            (fault injection can wipe out every pair) and every registered
            solver returns a well-formed empty-ish
            :class:`~repro.types.PlacementResult` for them; the default
            keeps the paper's preconditions strict.
        oracle: the distance-oracle tier. Accepts a prebuilt oracle
            (a :class:`~repro.graph.distances.DistanceOracle`,
            :class:`~repro.graph.sparse_oracle.SparseRowOracle`, or
            :class:`~repro.graph.hub_labels.HubLabelOracle` for this
            graph), one of the policy names ``"dense"`` / ``"sparse"`` /
            ``"hub"`` / ``"auto"``, or ``None`` to use the process default
            policy (see :func:`set_default_oracle_policy`; initially
            ``"auto"``, which keeps paper-scale instances dense, switches
            large instances to the pair-centric sparse row block, and
            n ≥ 10⁴ instances to the hub-label index).
    """

    def __init__(
        self,
        graph: WirelessGraph,
        pairs: Sequence[NodePair],
        k: int,
        *,
        p_threshold: Optional[float] = None,
        d_threshold: Optional[float] = None,
        require_initially_unsatisfied: bool = True,
        allow_degenerate: bool = False,
        oracle: Union[OracleLike, str, None] = None,
    ) -> None:
        if (p_threshold is None) == (d_threshold is None):
            raise InstanceError(
                "exactly one of p_threshold / d_threshold must be given"
            )
        if d_threshold is None:
            p = check_fraction(p_threshold, "p_threshold")
            d_threshold = failure_to_length(p)
        else:
            d_threshold = check_nonnegative(d_threshold, "d_threshold")
        self.graph = graph
        self.d_threshold = float(d_threshold)
        if allow_degenerate:
            self.k = check_nonnegative_int(k, "k")
        else:
            self.k = check_positive_int(k, "k")

        self.pairs: List[NodePair] = []
        self.pair_indices: List[IndexPair] = []
        for u, w in pairs:
            if u == w:
                raise InstanceError(f"social pair ({u!r}, {w!r}) is a self-pair")
            if not graph.has_node(u) or not graph.has_node(w):
                raise InstanceError(
                    f"social pair ({u!r}, {w!r}) references unknown node(s)"
                )
            self.pairs.append((u, w))
            self.pair_indices.append(
                normalize_index_pair(graph.node_index(u), graph.node_index(w))
            )
        if not self.pairs and not allow_degenerate:
            raise InstanceError(
                "at least one important social pair required "
                "(pass allow_degenerate=True to accept an empty set)"
            )

        if oracle is None:
            oracle = _DEFAULT_ORACLE_POLICY
        if isinstance(oracle, str):
            self.oracle: OracleLike = resolve_oracle(
                graph, self.pair_indices, self.d_threshold, oracle
            )
        else:
            self.oracle = oracle
            if oracle.graph is not graph:
                raise InstanceError(
                    "oracle was built for a different graph"
                )

        if require_initially_unsatisfied:
            for (u, w), (iu, iw) in zip(self.pairs, self.pair_indices):
                if self.oracle.distance_by_index(iu, iw) <= self.d_threshold:
                    raise InstanceError(
                        f"pair ({u!r}, {w!r}) already meets the distance "
                        "requirement in the base graph; pass "
                        "require_initially_unsatisfied=False to allow this"
                    )

    # ------------------------------------------------------------ properties

    @property
    def m(self) -> int:
        """Number of important social pairs."""
        return len(self.pairs)

    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self.graph.number_of_nodes()

    @property
    def p_threshold(self) -> float:
        """Failure-probability threshold ``p_t`` (derived from ``d_t``)."""
        return length_to_failure(self.d_threshold)

    @property
    def oracle_kind(self) -> str:
        """Which oracle tier the instance ended up with
        (``"dense"``, ``"sparse"``, or ``"hub"``)."""
        if isinstance(self.oracle, SparseRowOracle):
            return "sparse"
        if isinstance(self.oracle, HubLabelOracle):
            return "hub"
        return "dense"

    def pair_nodes(self) -> List[Node]:
        """Distinct nodes appearing in the social pairs, in first-seen
        order."""
        seen = []
        seen_set = set()
        for u, w in self.pairs:
            for node in (u, w):
                if node not in seen_set:
                    seen_set.add(node)
                    seen.append(node)
        return seen

    def common_node(self) -> Optional[Node]:
        """The node shared by *all* pairs, if one exists (MSC-CN case).

        Returns ``None`` when no single node appears in every pair (or when
        the instance has no pairs at all). If both endpoints of the first
        pair are common to all pairs (only possible with duplicated pairs),
        the first is returned.
        """
        if not self.pairs:
            return None
        candidates = set(self.pairs[0])
        for u, w in self.pairs[1:]:
            candidates &= {u, w}
            if not candidates:
                return None
        first = self.pairs[0]
        for node in first:  # preserve pair order for determinism
            if node in candidates:
                return node
        return None

    # ------------------------------------------------------------ conversion

    def index_pair_to_nodes(self, pair: IndexPair) -> NodePair:
        """Convert a dense index pair back to a node pair."""
        return (
            self.graph.index_node(pair[0]),
            self.graph.index_node(pair[1]),
        )

    def edges_to_nodes(
        self, edges: Sequence[IndexPair]
    ) -> List[NodePair]:
        """Convert a shortcut set in index space to node pairs."""
        return [self.index_pair_to_nodes(e) for e in edges]

    def describe(self) -> str:
        """Short human-readable description for experiment logs."""
        return (
            f"MSCInstance(n={self.n}, e={self.graph.number_of_edges()}, "
            f"m={self.m}, k={self.k}, p_t={self.p_threshold:.4f}, "
            f"d_t={self.d_threshold:.4f})"
        )

    def __repr__(self) -> str:
        return self.describe()

"""The MSC problem instance: graph + important social pairs + requirements.

An instance bundles everything Section III of the paper fixes before the
optimization starts: the undirected graph with edge lengths, the set ``S`` of
``m`` important social pairs, the failure-probability threshold ``p_t``
(equivalently the distance requirement ``d_t = -ln(1 - p_t)``), and the
shortcut-edge budget ``k``.

Since the substrate/request split, :class:`MSCInstance` is a thin façade
over a :class:`~repro.core.substrate.Substrate` (graph + oracle + shared
engine cache; expensive, immutable, shareable) and a
:class:`~repro.core.substrate.PlacementRequest` (pairs + budget +
threshold; cheap, per-query) — exposed as :attr:`MSCInstance.substrate` and
:attr:`MSCInstance.request`. The historical constructor keeps working
unchanged (no deprecation warning: it *is* the convenient one-shot form);
long-lived callers build the parts once and combine them with
:meth:`MSCInstance.from_parts` per request.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.substrate import OracleLike, PlacementRequest, Substrate
from repro.exceptions import InstanceError
from repro.failure.models import length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node, WirelessGraph
from repro.graph.hub_labels import HubLabelOracle, threshold_cutoff
from repro.graph.sparse_oracle import (
    SparseRowOracle,
    relevant_source_indices,
)
from repro.types import IndexPair, NodePair, normalize_index_pair

#: Oracle policy names accepted by ``MSCInstance(oracle=...)``.
ORACLE_POLICIES = ("dense", "sparse", "hub", "auto")

#: Below this node count ``auto`` always picks the dense tier: the full
#: APSP is cheap and every consumer gets O(1) row views with no ball
#: bookkeeping.
SPARSE_ORACLE_MIN_N = 512

#: ``auto`` picks the dense tier when the relevant-source set (pair
#: endpoints + their d_t-ball) exceeds this fraction of the nodes — a row
#: block nearly as tall as the matrix saves nothing.
SPARSE_MAX_RELEVANT_FRACTION = 0.5

#: From this node count up ``auto`` picks the hub-label tier: the sparse
#: row block is still ``r × n`` (its width grows with the graph), while
#: the threshold-cutoff label index is a few entries per node and builds
#: in ``O(n · ball)`` — the n=10⁴–10⁶ operating range.
HUB_ORACLE_MIN_N = 10_000

#: Module default used when ``MSCInstance`` gets no ``oracle=`` argument;
#: settable via :func:`set_default_oracle_policy` (the CLI's ``--oracle``).
_DEFAULT_ORACLE_POLICY = "auto"


def set_default_oracle_policy(policy: str) -> None:
    """Set the process-wide default oracle tier policy.

    *policy* is one of :data:`ORACLE_POLICIES`. Instances built with an
    explicit ``oracle=`` argument (including the prebuilt oracles the
    paper-scale workloads share across thresholds) are unaffected.
    """
    global _DEFAULT_ORACLE_POLICY
    if policy not in ORACLE_POLICIES:
        raise InstanceError(
            f"unknown oracle policy {policy!r}; "
            f"available: {', '.join(ORACLE_POLICIES)}"
        )
    _DEFAULT_ORACLE_POLICY = policy


def default_oracle_policy() -> str:
    """The current process-wide default oracle tier policy."""
    return _DEFAULT_ORACLE_POLICY


def resolve_oracle(
    graph: WirelessGraph,
    pair_indices: Sequence[IndexPair],
    d_threshold: float,
    policy: str,
) -> OracleLike:
    """Build the distance oracle *policy* asks for.

    ``dense`` builds the classic APSP :class:`DistanceOracle`; ``sparse``
    builds a :class:`SparseRowOracle` restricted to the pair endpoints and
    their ``d_t``-ball; ``hub`` builds a threshold-cutoff
    :class:`HubLabelOracle` (exact for every comparison against ``d_t``,
    label footprint independent of pair count). ``auto`` picks dense below
    :data:`SPARSE_ORACLE_MIN_N`, hub from :data:`HUB_ORACLE_MIN_N` up,
    and in between measures the ball first (cutoff Dijkstra from the
    endpoints — cost bounded by the ball, not the graph) and picks sparse
    only when the relevant fraction ``r/n`` is at most
    :data:`SPARSE_MAX_RELEVANT_FRACTION`.
    """
    if policy not in ORACLE_POLICIES:
        raise InstanceError(
            f"unknown oracle policy {policy!r}; "
            f"available: {', '.join(ORACLE_POLICIES)}"
        )
    seeds = sorted({i for pair in pair_indices for i in pair})
    if policy == "sparse":
        return SparseRowOracle(graph, seeds, radius=d_threshold)
    if policy == "dense":
        return DistanceOracle(graph)
    if policy == "hub":
        return HubLabelOracle(graph, cutoff=threshold_cutoff(d_threshold))
    n = graph.number_of_nodes()
    if n < SPARSE_ORACLE_MIN_N or not seeds:
        return DistanceOracle(graph)
    if n >= HUB_ORACLE_MIN_N:
        return HubLabelOracle(graph, cutoff=threshold_cutoff(d_threshold))
    sources = relevant_source_indices(graph, seeds, d_threshold)
    if sources.size > SPARSE_MAX_RELEVANT_FRACTION * n:
        return DistanceOracle(graph)
    return SparseRowOracle(graph, sources=sources)


class MSCInstance:
    """A Maintaining-Social-Connections problem instance.

    A façade over ``(substrate, request)``; see
    :meth:`from_parts` for the two-object form and the class attributes
    :attr:`substrate` / :attr:`request` for the parts. ``graph``,
    ``oracle``, ``pairs``, ``k`` and the thresholds read through to the
    parts, so existing code is unaffected by the split.

    Args:
        graph: the base communication graph (edge lengths already encode
            link failure probabilities).
        pairs: the important social pairs ``S`` as node pairs; each pair must
            consist of two distinct graph nodes. Duplicate pairs are allowed
            and each copy counts separately toward σ (they are distinct
            "connections" to maintain).
        k: shortcut-edge budget (``|F| <= k``).
        p_threshold: failure-probability threshold ``p_t``; exactly one of
            *p_threshold* / *d_threshold* must be given.
        d_threshold: distance requirement ``d_t`` (length space).
        require_initially_unsatisfied: when True (default), reject pairs whose
            base-graph distance already meets the requirement. The paper
            selects pairs this way (§VII-A3), and the upper bound ν's proof
            relies on it; set to False to accept arbitrary pair sets (the
            evaluator and bounds still handle base-satisfied pairs
            correctly).
        allow_degenerate: when True, accept a ``k = 0`` budget and an empty
            pair set. Such instances arise naturally in robustness studies
            (fault injection can wipe out every pair) and every registered
            solver returns a well-formed empty-ish
            :class:`~repro.types.PlacementResult` for them; the default
            keeps the paper's preconditions strict.
        oracle: the distance-oracle tier. Accepts a prebuilt oracle
            (a :class:`~repro.graph.distances.DistanceOracle`,
            :class:`~repro.graph.sparse_oracle.SparseRowOracle`, or
            :class:`~repro.graph.hub_labels.HubLabelOracle` for this
            graph), a prebuilt :class:`~repro.core.substrate.Substrate`
            (its graph must be this graph — the instance then shares the
            substrate's engine cache), one of the policy names
            ``"dense"`` / ``"sparse"`` / ``"hub"`` / ``"auto"``, or
            ``None`` to use the process default policy (see
            :func:`set_default_oracle_policy`; initially ``"auto"``, which
            keeps paper-scale instances dense, switches large instances to
            the pair-centric sparse row block, and n ≥ 10⁴ instances to
            the hub-label index).
    """

    def __init__(
        self,
        graph: WirelessGraph,
        pairs: Sequence[NodePair],
        k: int,
        *,
        p_threshold: Optional[float] = None,
        d_threshold: Optional[float] = None,
        require_initially_unsatisfied: bool = True,
        allow_degenerate: bool = False,
        oracle: Union[OracleLike, Substrate, str, None] = None,
    ) -> None:
        request = PlacementRequest(
            pairs,
            k,
            p_threshold=p_threshold,
            d_threshold=d_threshold,
            require_initially_unsatisfied=require_initially_unsatisfied,
            allow_degenerate=allow_degenerate,
        )
        pair_indices = _checked_pair_indices(graph, request.pairs)
        if isinstance(oracle, Substrate):
            if oracle.graph is not graph:
                raise InstanceError(
                    "substrate was built for a different graph"
                )
            substrate = oracle
        else:
            if oracle is None:
                oracle = _DEFAULT_ORACLE_POLICY
            if isinstance(oracle, str):
                oracle = resolve_oracle(
                    graph, pair_indices, request.d_threshold, oracle
                )
            substrate = Substrate(graph, oracle)
        self._bind(substrate, request, pair_indices)

    @classmethod
    def from_parts(
        cls, substrate: Substrate, request: PlacementRequest
    ) -> "MSCInstance":
        """Combine a shared :class:`Substrate` with one
        :class:`PlacementRequest`.

        This is the long-lived-service entry point: the substrate (and its
        engine cache) is reused across requests, and only the cheap
        request-side validation runs per call. Equivalent in every
        observable way to the one-shot constructor with a prebuilt oracle.
        """
        self = object.__new__(cls)
        self._bind(
            substrate,
            request,
            _checked_pair_indices(substrate.graph, request.pairs),
        )
        return self

    def _bind(
        self,
        substrate: Substrate,
        request: PlacementRequest,
        pair_indices: List[IndexPair],
    ) -> None:
        self.substrate = substrate
        self.request = request
        self.pairs: List[NodePair] = list(request.pairs)
        self.pair_indices: List[IndexPair] = pair_indices
        if request.require_initially_unsatisfied:
            oracle = substrate.oracle
            for (u, w), (iu, iw) in zip(self.pairs, pair_indices):
                if oracle.distance_by_index(iu, iw) <= request.d_threshold:
                    raise InstanceError(
                        f"pair ({u!r}, {w!r}) already meets the distance "
                        "requirement in the base graph; pass "
                        "require_initially_unsatisfied=False to allow this"
                    )

    # ------------------------------------------------------------ properties

    @property
    def graph(self) -> WirelessGraph:
        """The base communication graph (lives on the substrate)."""
        return self.substrate.graph

    @property
    def oracle(self) -> OracleLike:
        """The resolved distance oracle (lives on the substrate)."""
        return self.substrate.oracle

    @property
    def k(self) -> int:
        """Shortcut-edge budget (lives on the request)."""
        return self.request.k

    @property
    def d_threshold(self) -> float:
        """Distance requirement ``d_t`` (lives on the request)."""
        return self.request.d_threshold

    @property
    def m(self) -> int:
        """Number of important social pairs."""
        return len(self.pairs)

    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self.substrate.n

    @property
    def p_threshold(self) -> float:
        """Failure-probability threshold ``p_t`` (derived from ``d_t``)."""
        return length_to_failure(self.d_threshold)

    @property
    def oracle_kind(self) -> str:
        """Which oracle tier the instance ended up with
        (``"dense"``, ``"sparse"``, or ``"hub"``)."""
        return self.substrate.oracle_kind

    def pair_nodes(self) -> List[Node]:
        """Distinct nodes appearing in the social pairs, in first-seen
        order."""
        seen = []
        seen_set = set()
        for u, w in self.pairs:
            for node in (u, w):
                if node not in seen_set:
                    seen_set.add(node)
                    seen.append(node)
        return seen

    def common_node(self) -> Optional[Node]:
        """The node shared by *all* pairs, if one exists (MSC-CN case).

        Returns ``None`` when no single node appears in every pair (or when
        the instance has no pairs at all). If both endpoints of the first
        pair are common to all pairs (only possible with duplicated pairs),
        the first is returned.
        """
        if not self.pairs:
            return None
        candidates = set(self.pairs[0])
        for u, w in self.pairs[1:]:
            candidates &= {u, w}
            if not candidates:
                return None
        first = self.pairs[0]
        for node in first:  # preserve pair order for determinism
            if node in candidates:
                return node
        return None

    # ------------------------------------------------------------ conversion

    def index_pair_to_nodes(self, pair: IndexPair) -> NodePair:
        """Convert a dense index pair back to a node pair."""
        return (
            self.graph.index_node(pair[0]),
            self.graph.index_node(pair[1]),
        )

    def edges_to_nodes(
        self, edges: Sequence[IndexPair]
    ) -> List[NodePair]:
        """Convert a shortcut set in index space to node pairs."""
        return [self.index_pair_to_nodes(e) for e in edges]

    def describe(self) -> str:
        """Short human-readable description for experiment logs."""
        return (
            f"MSCInstance(n={self.n}, e={self.graph.number_of_edges()}, "
            f"m={self.m}, k={self.k}, p_t={self.p_threshold:.4f}, "
            f"d_t={self.d_threshold:.4f})"
        )

    def __repr__(self) -> str:
        return self.describe()


def _checked_pair_indices(
    graph: WirelessGraph, pairs: Sequence[NodePair]
) -> List[IndexPair]:
    """Validate *pairs* against *graph* and return their index form."""
    indices: List[IndexPair] = []
    for u, w in pairs:
        if u == w:
            raise InstanceError(f"social pair ({u!r}, {w!r}) is a self-pair")
        if not graph.has_node(u) or not graph.has_node(w):
            raise InstanceError(
                f"social pair ({u!r}, {w!r}) references unknown node(s)"
            )
        indices.append(
            normalize_index_pair(graph.node_index(u), graph.node_index(w))
        )
    return indices

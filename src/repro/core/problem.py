"""The MSC problem instance: graph + important social pairs + requirements.

An instance bundles everything Section III of the paper fixes before the
optimization starts: the undirected graph with edge lengths, the set ``S`` of
``m`` important social pairs, the failure-probability threshold ``p_t``
(equivalently the distance requirement ``d_t = -ln(1 - p_t)``), and the
shortcut-edge budget ``k``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import InstanceError
from repro.failure.models import failure_to_length, length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node, WirelessGraph
from repro.types import IndexPair, NodePair, normalize_index_pair
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_nonnegative_int,
    check_positive_int,
)


class MSCInstance:
    """A Maintaining-Social-Connections problem instance.

    Args:
        graph: the base communication graph (edge lengths already encode
            link failure probabilities).
        pairs: the important social pairs ``S`` as node pairs; each pair must
            consist of two distinct graph nodes. Duplicate pairs are allowed
            and each copy counts separately toward σ (they are distinct
            "connections" to maintain).
        k: shortcut-edge budget (``|F| <= k``).
        p_threshold: failure-probability threshold ``p_t``; exactly one of
            *p_threshold* / *d_threshold* must be given.
        d_threshold: distance requirement ``d_t`` (length space).
        require_initially_unsatisfied: when True (default), reject pairs whose
            base-graph distance already meets the requirement. The paper
            selects pairs this way (§VII-A3), and the upper bound ν's proof
            relies on it; set to False to accept arbitrary pair sets (the
            evaluator and bounds still handle base-satisfied pairs
            correctly).
        allow_degenerate: when True, accept a ``k = 0`` budget and an empty
            pair set. Such instances arise naturally in robustness studies
            (fault injection can wipe out every pair) and every registered
            solver returns a well-formed empty-ish
            :class:`~repro.types.PlacementResult` for them; the default
            keeps the paper's preconditions strict.
    """

    def __init__(
        self,
        graph: WirelessGraph,
        pairs: Sequence[NodePair],
        k: int,
        *,
        p_threshold: Optional[float] = None,
        d_threshold: Optional[float] = None,
        require_initially_unsatisfied: bool = True,
        allow_degenerate: bool = False,
        oracle: Optional[DistanceOracle] = None,
    ) -> None:
        if (p_threshold is None) == (d_threshold is None):
            raise InstanceError(
                "exactly one of p_threshold / d_threshold must be given"
            )
        if d_threshold is None:
            p = check_fraction(p_threshold, "p_threshold")
            d_threshold = failure_to_length(p)
        else:
            d_threshold = check_nonnegative(d_threshold, "d_threshold")
        self.graph = graph
        self.d_threshold = float(d_threshold)
        if allow_degenerate:
            self.k = check_nonnegative_int(k, "k")
        else:
            self.k = check_positive_int(k, "k")
        self.oracle = oracle if oracle is not None else DistanceOracle(graph)
        if oracle is not None and oracle.graph is not graph:
            raise InstanceError("oracle was built for a different graph")

        self.pairs: List[NodePair] = []
        self.pair_indices: List[IndexPair] = []
        for u, w in pairs:
            if u == w:
                raise InstanceError(f"social pair ({u!r}, {w!r}) is a self-pair")
            if not graph.has_node(u) or not graph.has_node(w):
                raise InstanceError(
                    f"social pair ({u!r}, {w!r}) references unknown node(s)"
                )
            self.pairs.append((u, w))
            self.pair_indices.append(
                normalize_index_pair(graph.node_index(u), graph.node_index(w))
            )
        if not self.pairs and not allow_degenerate:
            raise InstanceError(
                "at least one important social pair required "
                "(pass allow_degenerate=True to accept an empty set)"
            )

        if require_initially_unsatisfied:
            for (u, w), (iu, iw) in zip(self.pairs, self.pair_indices):
                if self.oracle.distance_by_index(iu, iw) <= self.d_threshold:
                    raise InstanceError(
                        f"pair ({u!r}, {w!r}) already meets the distance "
                        "requirement in the base graph; pass "
                        "require_initially_unsatisfied=False to allow this"
                    )

    # ------------------------------------------------------------ properties

    @property
    def m(self) -> int:
        """Number of important social pairs."""
        return len(self.pairs)

    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self.graph.number_of_nodes()

    @property
    def p_threshold(self) -> float:
        """Failure-probability threshold ``p_t`` (derived from ``d_t``)."""
        return length_to_failure(self.d_threshold)

    def pair_nodes(self) -> List[Node]:
        """Distinct nodes appearing in the social pairs, in first-seen
        order."""
        seen = []
        seen_set = set()
        for u, w in self.pairs:
            for node in (u, w):
                if node not in seen_set:
                    seen_set.add(node)
                    seen.append(node)
        return seen

    def common_node(self) -> Optional[Node]:
        """The node shared by *all* pairs, if one exists (MSC-CN case).

        Returns ``None`` when no single node appears in every pair (or when
        the instance has no pairs at all). If both endpoints of the first
        pair are common to all pairs (only possible with duplicated pairs),
        the first is returned.
        """
        if not self.pairs:
            return None
        candidates = set(self.pairs[0])
        for u, w in self.pairs[1:]:
            candidates &= {u, w}
            if not candidates:
                return None
        first = self.pairs[0]
        for node in first:  # preserve pair order for determinism
            if node in candidates:
                return node
        return None

    # ------------------------------------------------------------ conversion

    def index_pair_to_nodes(self, pair: IndexPair) -> NodePair:
        """Convert a dense index pair back to a node pair."""
        return (
            self.graph.index_node(pair[0]),
            self.graph.index_node(pair[1]),
        )

    def edges_to_nodes(
        self, edges: Sequence[IndexPair]
    ) -> List[NodePair]:
        """Convert a shortcut set in index space to node pairs."""
        return [self.index_pair_to_nodes(e) for e in edges]

    def describe(self) -> str:
        """Short human-readable description for experiment logs."""
        return (
            f"MSCInstance(n={self.n}, e={self.graph.number_of_edges()}, "
            f"m={self.m}, k={self.k}, p_t={self.p_threshold:.4f}, "
            f"d_t={self.d_threshold:.4f})"
        )

    def __repr__(self) -> str:
        return self.describe()

"""Weighted maximum coverage with the classic greedy algorithm.

This is the combinatorial core behind both the MSC-CN reduction (paper
Theorem 1: MSC-CN *is* maximum coverage) and the upper-bound function ν
(weighted maximum coverage over pair endpoints). The greedy algorithm
achieves ``(1 - 1/e)`` of the optimum for monotone submodular coverage
(Nemhauser et al.; paper Theorem 5 re-proves it for MSC-CN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.util.validation import check_nonnegative_int

#: Gains below this are treated as zero when weights are real-valued.
GAIN_EPSILON = 1e-12


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of greedy weighted max coverage.

    Attributes:
        selected: indices of the chosen sets, in selection order.
        covered: boolean vector over elements covered by the selection.
        weight: total covered weight.
    """

    selected: List[int]
    covered: np.ndarray
    weight: float


def greedy_max_coverage(
    sets: np.ndarray,
    k: int,
    weights: Optional[Sequence[float]] = None,
) -> CoverageResult:
    """Select up to *k* rows of the boolean matrix *sets* maximizing the
    total weight of covered columns.

    Args:
        sets: ``(num_sets, num_elements)`` boolean membership matrix.
        k: maximum number of sets to pick.
        weights: per-element weights (default: all ones). Must be
            non-negative.

    Stops early when no remaining set adds positive weight. Ties break
    toward the lowest set index (deterministic).
    """
    check_nonnegative_int(k, "k")  # k = 0 selects nothing
    sets = np.asarray(sets, dtype=bool)
    if sets.ndim != 2:
        raise SolverError(f"sets must be 2-D, got shape {sets.shape}")
    num_sets, num_elements = sets.shape
    if weights is None:
        weight_vec = np.ones(num_elements, dtype=float)
    else:
        weight_vec = np.asarray(weights, dtype=float)
        if weight_vec.shape != (num_elements,):
            raise SolverError(
                f"weights shape {weight_vec.shape} != ({num_elements},)"
            )
        if (weight_vec < 0).any():
            raise SolverError("weights must be non-negative")

    covered = np.zeros(num_elements, dtype=bool)
    selected: List[int] = []
    for _ in range(min(k, num_sets)):
        remaining = np.where(covered, 0.0, weight_vec)
        gains = sets @ remaining
        gains[selected] = -1.0
        best = int(np.argmax(gains))
        if gains[best] <= GAIN_EPSILON:
            break
        selected.append(best)
        covered |= sets[best]
    return CoverageResult(
        selected=selected,
        covered=covered,
        weight=float(weight_vec @ covered),
    )

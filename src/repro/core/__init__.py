"""Core MSC algorithms: problem model, objective, bounds, and solvers."""

from repro.core.aea import (
    AdaptiveEvolutionaryAlgorithm,
    solve_aea,
    solve_aea_warmstart,
)
from repro.core.bounds import MuFunction, NuFunction
from repro.core.ea import EvolutionaryAlgorithm, solve_ea
from repro.core.evaluator import SigmaEvaluator
from repro.core.exact import solve_exact
from repro.core.greedy import greedy_placement
from repro.core.msc_cn import (
    is_common_node_instance,
    solve_msc_cn,
    solve_msc_cn_exact,
)
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.ratio import sandwich_ratio
from repro.core.registry import get_solver, solve_request, solver_names
from repro.core.sandwich import SandwichApproximation, solve_sandwich
from repro.core.substrate import EngineCache, PlacementRequest, Substrate

__all__ = [
    "MSCInstance",
    "Substrate",
    "PlacementRequest",
    "EngineCache",
    "solve_request",
    "SigmaEvaluator",
    "MuFunction",
    "NuFunction",
    "greedy_placement",
    "SandwichApproximation",
    "solve_sandwich",
    "EvolutionaryAlgorithm",
    "solve_ea",
    "AdaptiveEvolutionaryAlgorithm",
    "solve_aea",
    "solve_aea_warmstart",
    "solve_random_baseline",
    "solve_exact",
    "solve_msc_cn",
    "solve_msc_cn_exact",
    "is_common_node_instance",
    "sandwich_ratio",
    "get_solver",
    "solver_names",
]

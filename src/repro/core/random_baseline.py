"""Random-selection baseline (paper §VII-C).

The paper's comparison baseline places ``k`` shortcut edges uniformly at
random, repeats the process 500 times, and keeps the placement maintaining
the most social connections. It is the natural "no algorithm" reference for
Figs. 1–2.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, PlacementResult, normalize_index_pair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


def solve_random_baseline(
    instance: MSCInstance,
    seed: SeedLike = None,
    trials: int = 500,
    sigma: Optional[SetFunctionProtocol] = None,
    **_ignored,
) -> PlacementResult:
    """Best of *trials* uniform random placements of ``k`` shortcut edges."""
    check_positive_int(trials, "trials")
    rng = ensure_rng(seed)
    sigma_fn = sigma if sigma is not None else SigmaEvaluator(instance)
    n = sigma_fn.n
    max_edges = n * (n - 1) // 2
    k = min(instance.k, max_edges)
    if n < 2:
        raise SolverError("random baseline needs at least two nodes")

    best_edges: List[IndexPair] = []
    best_value = float(sigma_fn.value([]))
    trace: List[int] = []
    for _ in range(trials):
        chosen: Set[IndexPair] = set()
        while len(chosen) < k:
            a = rng.randrange(n)
            b = rng.randrange(n)
            if a != b:
                chosen.add(normalize_index_pair(a, b))
        edges = sorted(chosen)
        value = float(sigma_fn.value(edges))
        if value > best_value:
            best_value = value
            best_edges = edges
        trace.append(int(best_value))

    satisfied_fn = getattr(sigma_fn, "satisfied", None)
    satisfied = satisfied_fn(best_edges) if satisfied_fn is not None else []
    return PlacementResult(
        algorithm="random",
        edges=instance.edges_to_nodes(best_edges),
        sigma=int(best_value),
        satisfied=satisfied,
        evaluations=trials,
        trace=trace,
        extras={"trials": trials},
    )

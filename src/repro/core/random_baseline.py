"""Random-selection baseline (paper §VII-C).

The paper's comparison baseline places ``k`` shortcut edges uniformly at
random, repeats the process 500 times, and keeps the placement maintaining
the most social connections. It is the natural "no algorithm" reference for
Figs. 1–2.

Trials are independent given their seeds, so the trial loop is the natural
unit of fan-out: the driver RNG only *spawns* one 64-bit seed per trial up
front (never feeds the trials from a shared stream), each trial replays
from its own seed, and the best-so-far fold walks the results in trial
order. Consequences: results are byte-identical at any ``jobs`` count, and
the first ``t`` trials of a longer run coincide with a ``trials=t`` run
(so more trials can never hurt).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.exceptions import SolverError
from repro.types import IndexPair, PlacementResult, normalize_index_pair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


def _trial_edges(trial_seed: int, n: int, k: int) -> List[IndexPair]:
    """The placement of one trial, replayed from its private seed."""
    rng = random.Random(trial_seed)
    chosen = set()
    while len(chosen) < k:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b:
            chosen.add(normalize_index_pair(a, b))
    return sorted(chosen)


def _trial_batch(
    task: Tuple[MSCInstance, Sequence[int], int]
) -> List[Tuple[float, List[IndexPair]]]:
    """Evaluate a batch of trials (module-level so it can cross processes;
    the worker builds its own evaluator)."""
    instance, trial_seeds, k = task
    sigma_fn = SigmaEvaluator(instance)
    n = sigma_fn.n
    return [
        (float(sigma_fn.value(edges)), edges)
        for edges in (_trial_edges(ts, n, k) for ts in trial_seeds)
    ]


def solve_random_baseline(
    instance: MSCInstance,
    seed: SeedLike = None,
    trials: int = 500,
    sigma: Optional[SetFunctionProtocol] = None,
    jobs: int = 1,
    **_ignored,
) -> PlacementResult:
    """Best of *trials* uniform random placements of ``k`` shortcut edges.

    Args:
        jobs: evaluate trial batches across this many worker processes.
            Only effective when *sigma* is ``None`` (a custom evaluator
            cannot be shipped to workers); the result is byte-identical to
            the serial run either way.
    """
    check_positive_int(trials, "trials")
    rng = ensure_rng(seed)
    sigma_fn = sigma if sigma is not None else SigmaEvaluator(instance)
    n = sigma_fn.n
    max_edges = n * (n - 1) // 2
    k = min(instance.k, max_edges)
    if n < 2:
        raise SolverError("random baseline needs at least two nodes")

    trial_seeds = [rng.getrandbits(64) for _ in range(trials)]
    if jobs > 1 and sigma is None:
        from repro.experiments.parallel import fanout

        workers = min(jobs, trials)
        bounds = [
            (trials * w // workers, trials * (w + 1) // workers)
            for w in range(workers)
        ]
        batches = fanout(
            _trial_batch,
            [(instance, trial_seeds[lo:hi], k) for lo, hi in bounds],
            jobs=jobs,
        )
        evaluated = [item for batch in batches for item in batch]
    else:
        evaluated = [
            (float(sigma_fn.value(edges)), edges)
            for edges in (_trial_edges(ts, n, k) for ts in trial_seeds)
        ]

    best_edges: List[IndexPair] = []
    best_value = float(sigma_fn.value([]))
    trace: List[int] = []
    for value, edges in evaluated:
        if value > best_value:
            best_value = value
            best_edges = edges
        trace.append(int(best_value))

    satisfied_fn = getattr(sigma_fn, "satisfied", None)
    satisfied = satisfied_fn(best_edges) if satisfied_fn is not None else []
    return PlacementResult(
        algorithm="random",
        edges=instance.edges_to_nodes(best_edges),
        sigma=int(best_value),
        satisfied=satisfied,
        evaluations=trials,
        trace=trace,
        extras={"trials": trials},
    )

"""MSC-CN: the common-node special case (paper §IV).

When every important pair shares a node ``u``, there is an optimal solution
whose shortcut edges are all incident to ``u`` and where each pair's shortest
path uses at most one shortcut (paper Theorem 1, via Lemma 1 of Meyerson &
Tagiku). Placing shortcut ``(u, v)`` then rescues exactly the partners within
``d_t`` of ``v``, so MSC-CN *is* the maximum coverage problem: pick ``k``
cover sets ``C_v = {w_i : D(v, w_i) <= d_t}`` maximizing coverage of the
partner multiset. Greedy achieves ``(1 - 1/e)`` of optimal (Theorem 5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.coverage import greedy_max_coverage
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from repro.types import Node, PlacementResult


def solve_msc_cn_exact(
    instance: MSCInstance,
    seed=None,
    common: Optional[Node] = None,
    work_limit: int = 2_000_000,
    **_ignored,
) -> PlacementResult:
    """Exact MSC-CN optimum by enumerating endpoint subsets.

    Theorem 1 guarantees an optimal solution whose shortcut edges are all
    incident to the common node, so the search space is ``C(n-1, k)`` —
    exponentially smaller than general exhaustive search. Used as ground
    truth when validating Theorem 5's greedy bound.
    """
    import itertools
    import math as _math

    if instance.m == 0:
        # No pairs: any placement has sigma 0, so the empty one is optimal.
        return PlacementResult(
            algorithm="msc_cn_exact",
            edges=[],
            sigma=0,
            satisfied=[],
            extras={"common_node": common, "search_space": 1},
        )
    if common is None:
        common = instance.common_node()
        if common is None:
            raise SolverError(
                "instance has no common node; use solve_exact instead"
            )
    graph = instance.graph
    matrix = instance.oracle.matrix
    tol = 1e-12 + 1e-9 * instance.d_threshold
    limit = instance.d_threshold + tol
    common_idx = graph.node_index(common)
    partners = [w if u == common else u for u, w in instance.pairs]
    partner_indices = np.array(
        [graph.node_index(p) for p in partners], dtype=np.intp
    )
    base = matrix[common_idx, partner_indices] <= limit
    covers = matrix[:, partner_indices] <= limit  # (n, m) bool
    candidates = [
        v for v in range(instance.n) if v != common_idx
    ]
    k = min(instance.k, len(candidates))
    space = _math.comb(len(candidates), k)
    if space > work_limit:
        raise SolverError(
            f"MSC-CN exact space C({len(candidates)}, {k}) = {space} "
            f"exceeds work_limit={work_limit}"
        )

    best_sigma = int(base.sum())
    best_subset: tuple = ()
    for subset in itertools.combinations(candidates, k):
        covered = base.copy()
        for v in subset:
            covered |= covers[v]
        sigma = int(covered.sum())
        if sigma > best_sigma:
            best_sigma = sigma
            best_subset = subset
            if best_sigma == instance.m:
                break
    covered = base.copy()
    for v in best_subset:
        covered |= covers[v]
    return PlacementResult(
        algorithm="msc_cn_exact",
        edges=[(common, graph.index_node(v)) for v in best_subset],
        sigma=best_sigma,
        satisfied=[bool(c) for c in covered],
        evaluations=space,
        extras={"common_node": common, "search_space": space},
    )


def is_common_node_instance(instance: MSCInstance) -> bool:
    """True when all important pairs share at least one common node."""
    return instance.common_node() is not None


def solve_msc_cn(
    instance: MSCInstance,
    seed=None,
    common: Optional[Node] = None,
    **_ignored,
) -> PlacementResult:
    """Greedy max-coverage solution for a common-node instance.

    Args:
        instance: an MSC instance whose pairs all share one node.
        common: the shared node; auto-detected when omitted.

    Raises:
        SolverError: if the instance has no common node (use the general
            algorithms instead).
    """
    if instance.m == 0:
        # No pairs: the coverage universe is empty and greedy picks nothing.
        return PlacementResult(
            algorithm="msc_cn",
            edges=[],
            sigma=0,
            satisfied=[],
            extras={
                "common_node": common,
                "covered_weight": 0.0,
                "base_satisfied": 0,
            },
        )
    if common is None:
        common = instance.common_node()
        if common is None:
            raise SolverError(
                "instance has no common node; use the general MSC solvers"
            )
    elif not all(common in pair for pair in instance.pairs):
        raise SolverError(f"{common!r} is not shared by every pair")

    graph = instance.graph
    matrix = instance.oracle.matrix
    tol = 1e-12 + 1e-9 * instance.d_threshold
    limit = instance.d_threshold + tol
    common_idx = graph.node_index(common)

    # Partner of each pair (the endpoint that is not the common node).
    partners = []
    for u, w in instance.pairs:
        partners.append(w if u == common else u)
    partner_indices = np.array(
        [graph.node_index(p) for p in partners], dtype=np.intp
    )

    # Base-satisfied pairs are covered by every choice; exclude them from the
    # coverage universe and add them back at the end.
    base = matrix[common_idx, partner_indices] <= limit
    open_pairs = np.flatnonzero(~base)

    # sets[v, j]: shortcut (common, v) rescues open pair j.
    sets = matrix[:, partner_indices[open_pairs]] <= limit
    sets[common_idx, :] = False  # (u, u) self-loop is not a valid shortcut
    result = greedy_max_coverage(sets, instance.k)

    edges = [(common, graph.index_node(v)) for v in result.selected]
    satisfied = list(base)
    for pos, j in enumerate(open_pairs):
        satisfied[j] = bool(result.covered[pos])
    sigma = int(sum(satisfied))
    return PlacementResult(
        algorithm="msc_cn",
        edges=edges,
        sigma=sigma,
        satisfied=[bool(s) for s in satisfied],
        evaluations=len(result.selected),
        extras={
            "common_node": common,
            "covered_weight": result.weight,
            "base_satisfied": int(base.sum()),
        },
    )

"""Data-dependent approximation-ratio computation (paper §VII-B).

Tables I and II of the paper report the practical sandwich ratio
``σ(F_ν) / ν(F_ν)`` — the factor by which the AA guarantee
``σ(F_app) >= ratio · (1 - 1/e) · σ(F*)`` is scaled — across grids of the
failure threshold ``p_t`` and budget ``k``. This module computes single
ratios and full grids; the table experiments build on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.problem import MSCInstance

APPROX_FACTOR = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class RatioReport:
    """One sandwich-ratio measurement.

    Attributes:
        ratio: ``σ(F_ν) / ν(F_ν)`` (1.0 when ν(F_ν)=0, the vacuous case).
        sigma_value: σ(F_ν).
        nu_value: ν(F_ν).
        k: budget used.
        guarantee: the overall factor ``ratio · (1 - 1/e)``.
    """

    ratio: float
    sigma_value: float
    nu_value: float
    k: int
    @property
    def guarantee(self) -> float:
        return self.ratio * APPROX_FACTOR


def sandwich_ratio(
    instance: MSCInstance,
    k: Optional[int] = None,
    *,
    sigma: Optional[SigmaEvaluator] = None,
    nu: Optional[NuFunction] = None,
) -> RatioReport:
    """Compute ``σ(F_ν)/ν(F_ν)`` for *instance* at budget *k*.

    The ν-greedy solution is recomputed per call; pass pre-built *sigma* /
    *nu* functions to amortize setup across a grid of budgets.
    """
    budget = instance.k if k is None else k
    sigma_fn = sigma if sigma is not None else SigmaEvaluator(instance)
    nu_fn = nu if nu is not None else NuFunction(instance)
    f_nu = greedy_placement(nu_fn, budget)
    nu_value = float(nu_fn.value(f_nu))
    sigma_value = float(sigma_fn.value(f_nu))
    ratio = 1.0 if nu_value <= 0 else sigma_value / nu_value
    return RatioReport(
        ratio=ratio,
        sigma_value=sigma_value,
        nu_value=nu_value,
        k=budget,
    )


def ratio_grid(
    instance_factory,
    p_thresholds: Sequence[float],
    budgets: Sequence[int],
    draws: int = 1,
) -> Dict[float, List[RatioReport]]:
    """Ratio grid over ``p_t x k``, in the layout of paper Tables I/II.

    With a small pair count (the paper's Table I uses m=17) a single
    random pair selection quantizes σ(F_ν) to a couple of integers, so each
    cell is averaged over *draws* independent pair selections.

    Args:
        instance_factory: callable ``(p_t, draw_index) -> MSCInstance``
            building the instance for one threshold column and draw (the
            pair set depends on both).
        p_thresholds: the ``p_t`` column values.
        budgets: the ``k`` row values.
        draws: pair selections averaged per cell.

    Returns:
        Mapping ``p_t -> [RatioReport per k]``; with ``draws > 1`` each
        report carries the *mean* ratio and the mean σ/ν values.
    """
    grid: Dict[float, List[RatioReport]] = {}
    for p_t in p_thresholds:
        accumulators = [[0.0, 0.0, 0.0] for _ in budgets]  # ratio, σ, ν
        for draw in range(draws):
            instance = instance_factory(p_t, draw)
            sigma_fn = SigmaEvaluator(instance)
            nu_fn = NuFunction(instance)
            for i, k in enumerate(budgets):
                report = sandwich_ratio(
                    instance, k, sigma=sigma_fn, nu=nu_fn
                )
                accumulators[i][0] += report.ratio
                accumulators[i][1] += report.sigma_value
                accumulators[i][2] += report.nu_value
        grid[p_t] = [
            RatioReport(
                ratio=acc[0] / draws,
                sigma_value=acc[1] / draws,
                nu_value=acc[2] / draws,
                k=k,
            )
            for acc, k in zip(accumulators, budgets)
        ]
    return grid

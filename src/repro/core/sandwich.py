"""The sandwich Approximation Algorithm (AA) for general MSC (paper §V-B).

General MSC is non-submodular, so plain greedy has no guarantee. The sandwich
strategy greedily optimizes three functions — the submodular lower bound μ,
the objective σ itself, and the submodular upper bound ν — and returns
whichever of the three placements scores best under σ:

``F_app = argmax_{F ∈ {F_μ, F_σ, F_ν}} σ(F)``

with the data-dependent guarantee (Eq. 5 of the paper, practical form)

``σ(F_app) >= (σ(F_ν) / ν(F_ν)) · (1 - 1/e) · σ(F*)``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.bounds import MuFunction, NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.problem import MSCInstance
from repro.core.setfunction import SetFunctionProtocol
from repro.types import IndexPair, PlacementResult

APPROX_FACTOR = 1.0 - 1.0 / math.e


def _coerce_integral(value: float):
    """Return an int when *value* is (numerically) integral — σ counts
    pairs — and the float itself otherwise (weighted objectives)."""
    rounded = int(round(value))
    return rounded if abs(value - rounded) < 1e-9 else value


class SandwichApproximation:
    """Sandwich AA bound together with its three greedy sub-solutions.

    The constructor accepts pre-built σ/μ/ν functions so the dynamic-network
    adapter (``repro.dynamics``) can substitute summed variants; by default
    the static functions for *instance* are built.
    """

    def __init__(
        self,
        instance: MSCInstance,
        *,
        sigma: Optional[SetFunctionProtocol] = None,
        mu: Optional[SetFunctionProtocol] = None,
        nu: Optional[SetFunctionProtocol] = None,
    ) -> None:
        self.instance = instance
        self.sigma = sigma if sigma is not None else SigmaEvaluator(instance)
        self.mu = mu if mu is not None else MuFunction(instance)
        self.nu = nu if nu is not None else NuFunction(instance)

    def solve(self, k: Optional[int] = None) -> PlacementResult:
        """Run the three greedy placements and return the best under σ."""
        budget = self.instance.k if k is None else k
        f_mu = greedy_placement(self.mu, budget)
        f_sigma = greedy_placement(self.sigma, budget)
        f_nu = greedy_placement(self.nu, budget)

        candidates = {
            "mu": f_mu,
            "sigma": f_sigma,
            "nu": f_nu,
        }
        sigma_values = {
            name: _coerce_integral(float(self.sigma.value(edges)))
            for name, edges in candidates.items()
        }
        # Deterministic preference on ties: σ-greedy, then μ, then ν — the
        # σ-greedy solution is the natural default since it optimized the
        # true objective.
        order = ["sigma", "mu", "nu"]
        winner = max(order, key=lambda name: sigma_values[name])
        edges = candidates[winner]

        ratio = self.data_dependent_ratio(f_nu)
        satisfied = self._satisfied(edges)
        return PlacementResult(
            algorithm="sandwich",
            edges=self.instance.edges_to_nodes(edges),
            sigma=sigma_values[winner],
            satisfied=satisfied,
            evaluations=3 * budget,
            extras={
                "winner": winner,
                "sigma_mu": sigma_values["mu"],
                "sigma_sigma": sigma_values["sigma"],
                "sigma_nu": sigma_values["nu"],
                "edges_mu": self.instance.edges_to_nodes(f_mu),
                "edges_nu": self.instance.edges_to_nodes(f_nu),
                "ratio": ratio,
                "guarantee_factor": ratio * APPROX_FACTOR,
            },
        )

    def data_dependent_ratio(
        self, f_nu: Optional[Sequence[IndexPair]] = None
    ) -> float:
        """The practical ratio ``σ(F_ν) / ν(F_ν)`` of Eq. (5).

        *f_nu* may be passed when the ν-greedy solution is already available;
        otherwise it is recomputed. When ``ν(F_ν) = 0`` nothing is coverable
        at all, σ is identically its base value, and the bound is vacuous; we
        return 1.0 in that degenerate case.
        """
        if f_nu is None:
            f_nu = greedy_placement(self.nu, self.instance.k)
        nu_value = float(self.nu.value(f_nu))
        if nu_value <= 0.0:
            return 1.0
        return float(self.sigma.value(f_nu)) / nu_value

    def _satisfied(self, edges: Sequence[IndexPair]):
        satisfied_fn = getattr(self.sigma, "satisfied", None)
        if satisfied_fn is None:
            return []
        return satisfied_fn(edges)


def solve_sandwich(
    instance: MSCInstance, seed=None, **_ignored
) -> PlacementResult:
    """Registry-compatible wrapper (AA is deterministic; *seed* unused)."""
    return SandwichApproximation(instance).solve()

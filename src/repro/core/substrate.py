"""The substrate/request split: shared immutable state vs per-request state.

Historically :class:`~repro.core.problem.MSCInstance` entangled two very
different lifetimes: the *substrate* — the wireless graph and its resolved
distance-oracle tier, expensive to build and identical across every request
over the same topology — and the *request* — the social pairs, budget and
threshold of one placement query, cheap and different every time. Batch
experiments paid the substrate cost once per instance; a long-lived planner
service cannot afford to pay it once per request.

This module makes the two halves first-class:

* :class:`Substrate` — graph + distance oracle + the shared
  :class:`EngineCache`. Build it once, share it across thousands of
  requests (and across threads serialized by the service's admission
  batching). Substrates are hashable *by content* (:attr:`fingerprint`),
  so caches and shared-memory registries can key on them.
* :class:`PlacementRequest` — an immutable value object carrying the pairs,
  budget ``k``, distance requirement and validation flags of one query.
* :class:`EngineCache` — the LRU of
  :class:`~repro.graph.shortcuts.ShortcutDistanceEngine` previously private
  to each :class:`~repro.core.evaluator.SigmaEvaluator`; owning it here is
  what lets every evaluator, planner session and served request over one
  substrate reuse each other's incremental engine extensions.

``Substrate + PlacementRequest`` combine into an ``MSCInstance`` via
:meth:`Substrate.instance` /
:meth:`~repro.core.problem.MSCInstance.from_parts`; the façade keeps every
existing consumer working unchanged.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.exceptions import InstanceError
from repro.failure.models import failure_to_length, length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph, graph_signature
from repro.graph.hub_labels import HubLabelOracle
from repro.graph.shortcuts import ShortcutDistanceEngine
from repro.graph.sparse_oracle import SparseRowOracle
from repro.types import IndexPair, NodePair, normalize_index_pair
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_nonnegative_int,
    check_positive_int,
)

#: Any distance-oracle tier (all serve the row protocol).
OracleLike = Union[DistanceOracle, SparseRowOracle, HubLabelOracle]

#: Below this node count the engine LRU is disabled by default: building a
#: supernode table from scratch on a graph this small is cheaper than the
#: cache's frozenset keys and parent-lookup bookkeeping (the n=40
#: regression in BENCH_perf.json). Explicit ``engine_cache_size`` values
#: always win; the calibrated cutover is recorded in the benchmark output.
ENGINE_CACHE_MIN_N = 96

#: Default engine-LRU capacity once the cutover is passed.
DEFAULT_ENGINE_CACHE_SIZE = 128


class EngineCache:
    """Small LRU of :class:`ShortcutDistanceEngine` keyed by shortcut set.

    A lookup that misses but finds an engine for a one-edge-smaller subset
    derives the requested engine incrementally via
    :meth:`ShortcutDistanceEngine.extended_by_index` instead of rebuilding
    the supernode tables from the APSP matrix. ``maxsize=0`` disables
    caching entirely (every lookup rebuilds from scratch — the legacy
    behavior, kept for benchmarking).

    Engines depend only on the oracle and the shortcut set — never on the
    pairs or threshold of any particular request — so one cache is safely
    shared by every evaluator over the same :class:`Substrate`.
    """

    def __init__(self, oracle: OracleLike, maxsize: int = 128) -> None:
        self._oracle = oracle
        self._maxsize = int(maxsize)
        self._store: "OrderedDict[frozenset, ShortcutDistanceEngine]" = (
            OrderedDict()
        )
        self.hits = 0
        self.extensions = 0
        self.builds = 0

    def get(self, edges: Iterable[IndexPair]) -> ShortcutDistanceEngine:
        key = frozenset(normalize_index_pair(a, b) for a, b in edges)
        if self._maxsize <= 0:
            self.builds += 1
            return ShortcutDistanceEngine.from_index_pairs(
                self._oracle, sorted(key)
            )
        engine = self._store.get(key)
        if engine is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return engine
        for edge in key:
            parent = self._store.get(key - {edge})
            if parent is not None:
                engine = parent.extended_by_index(*edge)
                self.extensions += 1
                break
        if engine is None:
            engine = ShortcutDistanceEngine.from_index_pairs(
                self._oracle, sorted(key)
            )
            self.builds += 1
        self._store[key] = engine
        return self._trim(engine)

    def _trim(self, engine: ShortcutDistanceEngine) -> ShortcutDistanceEngine:
        while len(self._store) > self._maxsize:
            self._store.popitem(last=False)
        return engine

    def stats(self) -> dict:
        """Counter snapshot (hits / incremental extensions / full builds)."""
        return {
            "hits": self.hits,
            "extensions": self.extensions,
            "builds": self.builds,
            "entries": len(self._store),
            "maxsize": self._maxsize,
        }


def default_engine_cache_size(n: int) -> int:
    """The auto-selected engine-LRU capacity for an *n*-node substrate."""
    return DEFAULT_ENGINE_CACHE_SIZE if n >= ENGINE_CACHE_MIN_N else 0


@dataclass(frozen=True)
class PlacementRequest:
    """One placement query: the per-request half of an ``MSCInstance``.

    Immutable and hashable; everything here is cheap to construct and
    validate, by design — the expensive state lives on the
    :class:`Substrate`. Exactly one of *p_threshold* / *d_threshold* must
    be given (mirroring ``MSCInstance``); the resolved distance requirement
    is :attr:`d_threshold` either way.

    Attributes:
        pairs: the important social pairs ``S`` as node pairs.
        k: shortcut-edge budget.
        d_threshold: distance requirement ``d_t`` (length space).
        require_initially_unsatisfied: reject pairs already satisfied in
            the base graph (the paper's selection rule, §VII-A3).
        allow_degenerate: accept ``k = 0`` and empty pair sets.
    """

    pairs: Tuple[NodePair, ...]
    k: int
    d_threshold: float
    require_initially_unsatisfied: bool = True
    allow_degenerate: bool = False

    def __init__(
        self,
        pairs: Sequence[NodePair],
        k: int,
        *,
        p_threshold: Optional[float] = None,
        d_threshold: Optional[float] = None,
        require_initially_unsatisfied: bool = True,
        allow_degenerate: bool = False,
    ) -> None:
        if (p_threshold is None) == (d_threshold is None):
            raise InstanceError(
                "exactly one of p_threshold / d_threshold must be given"
            )
        if d_threshold is None:
            p = check_fraction(p_threshold, "p_threshold")
            d_threshold = failure_to_length(p)
        else:
            d_threshold = check_nonnegative(d_threshold, "d_threshold")
        if allow_degenerate:
            k = check_nonnegative_int(k, "k")
        else:
            k = check_positive_int(k, "k")
        normalized = tuple((u, w) for u, w in pairs)
        if not normalized and not allow_degenerate:
            raise InstanceError(
                "at least one important social pair required "
                "(pass allow_degenerate=True to accept an empty set)"
            )
        object.__setattr__(self, "pairs", normalized)
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "d_threshold", float(d_threshold))
        object.__setattr__(
            self,
            "require_initially_unsatisfied",
            bool(require_initially_unsatisfied),
        )
        object.__setattr__(
            self, "allow_degenerate", bool(allow_degenerate)
        )

    @property
    def m(self) -> int:
        """Number of important social pairs."""
        return len(self.pairs)

    @property
    def p_threshold(self) -> float:
        """Failure-probability threshold ``p_t`` (derived from ``d_t``)."""
        return length_to_failure(self.d_threshold)

    def describe(self) -> str:
        return (
            f"PlacementRequest(m={self.m}, k={self.k}, "
            f"p_t={self.p_threshold:.4f}, d_t={self.d_threshold:.4f})"
        )


def _oracle_descriptor(oracle: OracleLike) -> str:
    """Content descriptor of an oracle tier for substrate fingerprints.

    Two oracles over content-equal graphs answer identically when their
    tier and tier parameters match: the dense APSP has no parameters, the
    sparse tier is determined by its source-row set, and the hub tier by
    its threshold cutoff.
    """
    if isinstance(oracle, SparseRowOracle):
        sources = ",".join(str(int(s)) for s in oracle.source_indices)
        return f"sparse:{sources}"
    if isinstance(oracle, HubLabelOracle):
        return f"hub:{getattr(oracle, '_cutoff', None)!r}"
    return "dense"


class Substrate:
    """Immutable shared solve state: graph + oracle tier + engine cache.

    Build once, share across many :class:`PlacementRequest` solves — the
    planner service keeps Substrates resident so a warm request skips
    graph generation, APSP/label construction *and* base-engine builds.

    Substrates compare and hash **by content** (:attr:`fingerprint`): two
    independently built substrates over identical graphs with the same
    oracle tier/parameters are equal, which is what lets caches keyed by
    workload spec rebuild after eviction without invalidating anything.

    Args:
        graph: the base communication graph.
        oracle: a prebuilt distance oracle for *graph* (any tier). Use
            :meth:`Substrate.build` to resolve a policy name instead.
        engine_cache_size: LRU capacity of the shared engine cache;
            ``None`` auto-selects via :func:`default_engine_cache_size`.
    """

    def __init__(
        self,
        graph: WirelessGraph,
        oracle: OracleLike,
        *,
        engine_cache_size: Optional[int] = None,
    ) -> None:
        if oracle.graph is not graph:
            raise InstanceError("oracle was built for a different graph")
        self._graph = graph
        self._oracle = oracle
        self._engine_cache_size = engine_cache_size
        self._engine_cache: Optional[EngineCache] = None
        self._fingerprint: Optional[str] = None

    @classmethod
    def build(
        cls,
        graph: WirelessGraph,
        *,
        oracle: Union[OracleLike, str, None] = None,
        d_threshold: Optional[float] = None,
        p_threshold: Optional[float] = None,
        pair_indices: Sequence[IndexPair] = (),
        engine_cache_size: Optional[int] = None,
    ) -> "Substrate":
        """Build a substrate, resolving an oracle *policy* if needed.

        *oracle* accepts a prebuilt oracle, a policy name (``"dense"`` /
        ``"sparse"`` / ``"hub"`` / ``"auto"``), or ``None`` for the
        process-default policy. Policy resolution may consult
        *d_threshold* (or *p_threshold*) and *pair_indices* — the sparse
        tier is pair-centric and the hub tier cuts labels at the
        threshold; a service substrate meant to outlive any single request
        should pass ``oracle="dense"`` (or a prebuilt oracle) so the tier
        is request-independent.
        """
        from repro.core.problem import default_oracle_policy, resolve_oracle

        if d_threshold is None and p_threshold is not None:
            d_threshold = failure_to_length(
                check_fraction(p_threshold, "p_threshold")
            )
        if oracle is None:
            oracle = default_oracle_policy()
        if isinstance(oracle, str):
            oracle = resolve_oracle(
                graph,
                list(pair_indices),
                0.0 if d_threshold is None else float(d_threshold),
                oracle,
            )
        return cls(graph, oracle, engine_cache_size=engine_cache_size)

    # ------------------------------------------------------------ properties

    @property
    def graph(self) -> WirelessGraph:
        return self._graph

    @property
    def oracle(self) -> OracleLike:
        return self._oracle

    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self._graph.number_of_nodes()

    @property
    def oracle_kind(self) -> str:
        """Which oracle tier the substrate carries
        (``"dense"``, ``"sparse"``, or ``"hub"``)."""
        if isinstance(self._oracle, SparseRowOracle):
            return "sparse"
        if isinstance(self._oracle, HubLabelOracle):
            return "hub"
        return "dense"

    @property
    def engine_cache(self) -> EngineCache:
        """The shared shortcut-engine LRU (created lazily)."""
        if self._engine_cache is None:
            size = self._engine_cache_size
            if size is None:
                size = default_engine_cache_size(self.n)
            self._engine_cache = EngineCache(self._oracle, size)
        return self._engine_cache

    @property
    def fingerprint(self) -> str:
        """Content digest: graph structure + oracle tier/parameters."""
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            hasher.update(graph_signature(self._graph).encode())
            hasher.update(_oracle_descriptor(self._oracle).encode())
            self._fingerprint = hasher.hexdigest()[:32]
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substrate):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        return (
            f"Substrate(n={self.n}, e={self._graph.number_of_edges()}, "
            f"oracle={self.oracle_kind}, fp={self.fingerprint[:8]})"
        )

    # ------------------------------------------------------------- requests

    def instance(self, request: PlacementRequest):
        """Combine with *request* into an ``MSCInstance`` (the façade all
        solvers consume)."""
        from repro.core.problem import MSCInstance

        return MSCInstance.from_parts(self, request)

    def stats(self) -> dict:
        """Cache-observability snapshot for the service ``stats`` op."""
        return {
            "n": self.n,
            "edges": self._graph.number_of_edges(),
            "oracle": self.oracle_kind,
            "fingerprint": self.fingerprint,
            "engine_cache": (
                self._engine_cache.stats()
                if self._engine_cache is not None
                else None
            ),
        }

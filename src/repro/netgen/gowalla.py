"""Gowalla location-based social network: SNAP loaders + synthetic substitute.

The paper filters the SNAP Gowalla dataset to users with a check-in between
6 pm and midnight on Oct 1 2010 near Austin, TX, yielding a 134-node,
1886-edge proximity graph (200 m rule). That dataset cannot be shipped here,
so this module provides both:

* loaders for the real SNAP file formats (``loc-gowalla_totalCheckins.txt``
  and ``loc-gowalla_edges.txt``) for users who have the data, and
* :func:`synthesize_gowalla_austin`, a seeded generator of venue-clustered
  check-ins that reproduces the *structure* the paper's Gowalla findings
  depend on — co-located groups ("having dinner in the same restaurant",
  §VII-D) joined by sparse bridges — at the same node/edge scale.

See DESIGN.md §5 for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TraceFormatError
from repro.failure.models import DistanceProportionalFailure, LinkFailureModel
from repro.graph.graph import WirelessGraph
from repro.netgen.checkins import CheckIn, proximity_graph
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive, check_positive_int

#: Downtown Austin, TX — projection origin for the synthetic data.
AUSTIN_CENTER = (30.2672, -97.7431)

#: The paper's proximity rule: users within 200 m are connected.
GOWALLA_RADIUS_METERS = 200.0

#: Default failure probability of a 200 m link in the Gowalla network.
DEFAULT_MAX_LINK_FAILURE = 0.35


# --------------------------------------------------------------------- SNAP


def load_gowalla_checkins(path) -> List[CheckIn]:
    """Parse SNAP's ``loc-gowalla_totalCheckins.txt`` format.

    Each line: ``user<TAB>ISO-8601 time<TAB>latitude<TAB>longitude<TAB>
    location id``. Timestamps are converted to POSIX seconds.
    """
    from datetime import datetime, timezone
    from pathlib import Path

    records: List[CheckIn] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 5:
            raise TraceFormatError(
                f"{path}:{lineno}: expected 5 tab-separated fields, "
                f"got {len(parts)}"
            )
        try:
            user = int(parts[0])
            stamp = datetime.strptime(
                parts[1], "%Y-%m-%dT%H:%M:%SZ"
            ).replace(tzinfo=timezone.utc)
            lat = float(parts[2])
            lon = float(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
        records.append(
            CheckIn(
                user=user,
                timestamp=stamp.timestamp(),
                latitude=lat,
                longitude=lon,
            )
        )
    return records


def load_gowalla_friendships(path) -> List[Tuple[int, int]]:
    """Parse SNAP's ``loc-gowalla_edges.txt``: one ``user<TAB>friend`` pair
    per line. Each undirected friendship is returned once (u < v)."""
    from pathlib import Path

    pairs = set()
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TraceFormatError(
                f"{path}:{lineno}: expected 2 fields, got {len(parts)}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
        if u != v:
            pairs.add((u, v) if u < v else (v, u))
    return sorted(pairs)


# ---------------------------------------------------------------- synthetic


@dataclass
class SyntheticGowalla:
    """Output of :func:`synthesize_gowalla_austin`.

    Attributes:
        checkins: the generated check-in stream (all inside the evening
            window, timestamps in POSIX-like seconds).
        friendships: synthetic friendship pairs (venue-mates plus a few
            random long-range friendships), for loader/API parity.
        venue_centers: venue id -> (x, y) meters from the Austin origin.
        user_home_venue: user -> home venue id.
    """

    checkins: List[CheckIn]
    friendships: List[Tuple[int, int]]
    venue_centers: Dict[int, Tuple[float, float]]
    user_home_venue: Dict[int, int]
    metadata: Dict[str, object] = field(default_factory=dict)


def _meters_to_latlon(
    x: float, y: float, origin: Tuple[float, float]
) -> Tuple[float, float]:
    from repro.netgen.checkins import METERS_PER_DEGREE_LAT

    lat0, lon0 = origin
    lat = lat0 + y / METERS_PER_DEGREE_LAT
    lon = lon0 + x / (
        METERS_PER_DEGREE_LAT * math.cos(math.radians(lat0))
    )
    return lat, lon


def synthesize_gowalla_austin(
    seed: SeedLike = None,
    *,
    n_users: int = 134,
    venue_sizes: Optional[Sequence[int]] = None,
    box_meters: float = 4000.0,
    venue_spread: float = 65.0,
    min_venue_separation: float = 260.0,
    bridge_fraction: float = 0.25,
    window_seconds: float = 21600.0,
) -> SyntheticGowalla:
    """Generate venue-clustered check-ins mimicking the paper's Gowalla cut.

    Users are partitioned into venues (dense clusters like restaurants or
    bars, standard deviation *venue_spread* meters). A *bridge_fraction* of
    users additionally check in at a second venue, which is what stitches the
    venue cliques into one connected proximity graph — exactly the structure
    the paper credits for "even a small number of shortcut edges can maintain
    many important social connections".

    Args:
        seed: RNG seed (the generated "dataset" is fully reproducible).
        n_users: total users (paper: 134).
        venue_sizes: explicit venue partition; defaults to a skewed split of
            *n_users* whose clique edges approximate the paper's edge count.
        box_meters: side of the square area the venues occupy.
        venue_spread: per-check-in Gaussian jitter around the venue center.
        min_venue_separation: minimum distance between venue centers; must
            exceed the 200 m proximity radius so distinct venues do not merge
            into one clique.
        bridge_fraction: fraction of users who also visit a second venue.
        window_seconds: length of the check-in time window (the paper's
            6 pm - midnight window is 21600 s).
    """
    check_positive_int(n_users, "n_users")
    check_positive(box_meters, "box_meters")
    rng = ensure_rng(seed)
    if venue_sizes is None:
        venue_sizes = _default_venue_sizes(n_users)
    if sum(venue_sizes) != n_users:
        raise TraceFormatError(
            f"venue_sizes sum to {sum(venue_sizes)}, expected {n_users}"
        )

    centers = _place_venues(
        len(venue_sizes), box_meters, min_venue_separation, rng
    )
    venue_centers = {vid: centers[vid] for vid in range(len(venue_sizes))}

    checkins: List[CheckIn] = []
    user_home: Dict[int, int] = {}
    user = 0
    users_by_venue: Dict[int, List[int]] = {v: [] for v in venue_centers}
    for venue_id, size in enumerate(venue_sizes):
        for _ in range(size):
            user_home[user] = venue_id
            users_by_venue[venue_id].append(user)
            checkins.append(
                _checkin_at(
                    user, venue_centers[venue_id], venue_spread,
                    window_seconds, rng,
                )
            )
            user += 1

    # Bridge users: a second check-in at a (preferably nearby) other venue.
    n_bridges = int(round(bridge_fraction * n_users))
    bridge_users = rng.sample(range(n_users), min(n_bridges, n_users))
    venue_ids = list(venue_centers)
    for bridger in bridge_users:
        home = user_home[bridger]
        others = [v for v in venue_ids if v != home]
        if not others:
            break
        # Prefer venues close to home so bridges look like short walks.
        hx, hy = venue_centers[home]
        others.sort(
            key=lambda v: math.hypot(
                venue_centers[v][0] - hx, venue_centers[v][1] - hy
            )
        )
        target = others[0] if rng.random() < 0.7 else rng.choice(others)
        checkins.append(
            _checkin_at(
                bridger, venue_centers[target], venue_spread,
                window_seconds, rng,
            )
        )

    friendships = _synthetic_friendships(users_by_venue, n_users, rng)
    return SyntheticGowalla(
        checkins=checkins,
        friendships=friendships,
        venue_centers=venue_centers,
        user_home_venue=user_home,
        metadata={
            "n_users": n_users,
            "venue_sizes": list(venue_sizes),
            "bridge_users": len(bridge_users),
        },
    )


def _default_venue_sizes(n_users: int) -> List[int]:
    """Skewed venue-size split (a few big venues, a tail of small ones)
    calibrated so clique edges land near the paper's density."""
    proportions = [0.21, 0.18, 0.16, 0.13, 0.12, 0.09, 0.06, 0.05]
    sizes = [max(2, int(p * n_users)) for p in proportions]
    # Adjust the largest venue to hit the exact user count.
    sizes[0] += n_users - sum(sizes)
    if sizes[0] < 2:
        raise TraceFormatError(
            f"n_users={n_users} too small for the default venue split"
        )
    return sizes


def _place_venues(
    count: int, box: float, min_separation: float, rng
) -> List[Tuple[float, float]]:
    """Random venue centers with rejection sampling for minimum separation;
    falls back to a jittered grid when the box is too tight."""
    centers: List[Tuple[float, float]] = []
    for _ in range(count):
        placed = False
        for _attempt in range(400):
            x, y = rng.uniform(0, box), rng.uniform(0, box)
            if all(
                math.hypot(x - cx, y - cy) >= min_separation
                for cx, cy in centers
            ):
                centers.append((x, y))
                placed = True
                break
        if not placed:
            side = max(1, math.ceil(math.sqrt(count)))
            step = box / side
            idx = len(centers)
            gx, gy = idx % side, idx // side
            centers.append(
                (
                    (gx + 0.5) * step + rng.uniform(-step / 8, step / 8),
                    (gy + 0.5) * step + rng.uniform(-step / 8, step / 8),
                )
            )
    return centers


def _checkin_at(
    user: int,
    center: Tuple[float, float],
    spread: float,
    window_seconds: float,
    rng,
) -> CheckIn:
    x = center[0] + rng.gauss(0.0, spread)
    y = center[1] + rng.gauss(0.0, spread)
    lat, lon = _meters_to_latlon(x, y, AUSTIN_CENTER)
    return CheckIn(
        user=user,
        timestamp=rng.uniform(0.0, window_seconds),
        latitude=lat,
        longitude=lon,
    )


def _synthetic_friendships(
    users_by_venue: Dict[int, List[int]], n_users: int, rng
) -> List[Tuple[int, int]]:
    pairs = set()
    for members in users_by_venue.values():
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < 0.3:
                    pairs.add((u, v))
    for _ in range(n_users // 2):  # long-range friendships
        u, v = rng.randrange(n_users), rng.randrange(n_users)
        if u != v:
            pairs.add((u, v) if u < v else (v, u))
    return sorted(pairs)


# ------------------------------------------------------------------ network


def gowalla_network(
    seed: SeedLike = None,
    *,
    failure_model: Optional[LinkFailureModel] = None,
    max_link_failure: float = DEFAULT_MAX_LINK_FAILURE,
    radius_meters: float = GOWALLA_RADIUS_METERS,
    checkins: Optional[Sequence[CheckIn]] = None,
    **synth_kwargs,
):
    """Build the Gowalla-Austin communication graph.

    By default the synthetic check-ins are generated with *seed*; pass
    *checkins* (e.g. from :func:`load_gowalla_checkins`, pre-filtered to the
    desired window/region) to use real data instead.

    Returns:
        ``(graph, positions)`` — a :class:`WirelessGraph` plus representative
        user positions in meters, as from
        :func:`repro.netgen.checkins.proximity_graph`.
    """
    if failure_model is None:
        failure_model = DistanceProportionalFailure.for_radius(
            radius_meters, max_link_failure
        )
    if checkins is None:
        checkins = synthesize_gowalla_austin(seed, **synth_kwargs).checkins
    return proximity_graph(
        checkins, radius_meters, failure_model, origin=AUSTIN_CENTER
    )

"""Check-in records and proximity-graph construction for LBSN data.

The paper's Gowalla experiment keeps users with a check-in in a time window,
and connects two users "if their distance is less than 200 meters based on
the locations of their check-ins" (§VII-A1). We implement that as: the
distance between two users is the minimum distance over their check-in
location pairs inside the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.failure.models import LinkFailureModel
from repro.graph.graph import Node, WirelessGraph
from repro.util.validation import check_positive

#: Meters per degree of latitude (WGS-84 mean); used by the equirectangular
#: local projection, which is accurate to well under a meter at city scale.
METERS_PER_DEGREE_LAT = 111_320.0


@dataclass(frozen=True)
class CheckIn:
    """One location check-in.

    Attributes:
        user: user identifier.
        timestamp: seconds (or any monotone unit) since an arbitrary epoch.
        latitude / longitude: WGS-84 coordinates in degrees.
    """

    user: Node
    timestamp: float
    latitude: float
    longitude: float


def project_to_meters(
    latitude: float, longitude: float, origin: Tuple[float, float]
) -> Tuple[float, float]:
    """Equirectangular projection of a lat/lon to meters relative to
    *origin* ``(lat, lon)`` — adequate for the ~10 km extent of a city."""
    lat0, lon0 = origin
    x = (longitude - lon0) * METERS_PER_DEGREE_LAT * math.cos(
        math.radians(lat0)
    )
    y = (latitude - lat0) * METERS_PER_DEGREE_LAT
    return x, y


def filter_window(
    checkins: Iterable[CheckIn],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[CheckIn]:
    """Check-ins whose timestamp lies in ``[start, end]`` (either bound may
    be omitted)."""
    out = []
    for record in checkins:
        if start is not None and record.timestamp < start:
            continue
        if end is not None and record.timestamp > end:
            continue
        out.append(record)
    return out


def user_locations(
    checkins: Iterable[CheckIn],
    origin: Optional[Tuple[float, float]] = None,
) -> Dict[Node, List[Tuple[float, float]]]:
    """Group check-ins by user as projected ``(x, y)`` meter coordinates.

    *origin* defaults to the centroid of all check-ins.
    """
    records = list(checkins)
    if not records:
        return {}
    if origin is None:
        origin = (
            sum(r.latitude for r in records) / len(records),
            sum(r.longitude for r in records) / len(records),
        )
    locations: Dict[Node, List[Tuple[float, float]]] = {}
    for record in records:
        xy = project_to_meters(record.latitude, record.longitude, origin)
        locations.setdefault(record.user, []).append(xy)
    return locations


def min_user_distance(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Minimum Euclidean distance between two users' location sets."""
    best = math.inf
    for x1, y1 in a:
        for x2, y2 in b:
            d = math.hypot(x1 - x2, y1 - y2)
            if d < best:
                best = d
    return best


def proximity_graph(
    checkins: Iterable[CheckIn],
    radius_meters: float,
    failure_model: LinkFailureModel,
    *,
    window: Optional[Tuple[float, float]] = None,
    origin: Optional[Tuple[float, float]] = None,
) -> Tuple[WirelessGraph, Dict[Node, Tuple[float, float]]]:
    """Build the paper's LBSN communication graph.

    Args:
        checkins: the check-in stream.
        radius_meters: connect users closer than this (paper: 200 m).
        failure_model: link distance (meters) -> failure probability.
        window: optional ``(start, end)`` timestamp filter (paper: 6 pm to
            midnight of one day).
        origin: projection origin ``(lat, lon)``; defaults to the centroid.

    Returns:
        ``(graph, representative_positions)`` where the representative
        position of a user is their first projected check-in (useful for
        plotting; distances use the min-over-check-ins rule).
    """
    check_positive(radius_meters, "radius_meters")
    records = list(checkins)
    if window is not None:
        records = filter_window(records, window[0], window[1])
    if not records:
        raise ValidationError("no check-ins in the selected window")
    locations = user_locations(records, origin=origin)
    users = list(locations)
    graph = WirelessGraph()
    graph.add_nodes(users)
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            dist = min_user_distance(locations[u], locations[v])
            if dist < radius_meters:
                graph.add_edge(
                    u,
                    v,
                    failure_probability=failure_model.failure_probability(
                        dist
                    ),
                )
    representatives = {user: locs[0] for user, locs in locations.items()}
    return graph, representatives

"""Trace file I/O for mobility traces.

A simple CSV format (``time,node,x,y,group`` with one header line) so traces
can be generated once, stored, and replayed — mirroring how the paper's ARL
traces "record the locations of 90 nodes ... where each node updates their
locations periodically".
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.exceptions import TraceFormatError
from repro.netgen.tactical import MobilityTrace

HEADER = "time,node,x,y,group"
PathLike = Union[str, Path]


def save_trace(trace: MobilityTrace, path: PathLike) -> None:
    """Write *trace* to *path* in the CSV trace format."""
    lines = [HEADER]
    for time, frame in zip(trace.times, trace.positions):
        for node in sorted(frame):
            x, y = frame[node]
            lines.append(
                f"{time!r},{node},{x!r},{y!r},{trace.groups[node]}"
            )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_trace(path: PathLike) -> MobilityTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` for malformed files, including frames
    that disagree on the node set.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != HEADER:
        raise TraceFormatError(
            f"{path}: missing or invalid header (expected {HEADER!r})"
        )
    frames: Dict[float, Dict[int, Tuple[float, float]]] = {}
    groups: Dict[int, int] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 5:
            raise TraceFormatError(
                f"{path}:{lineno}: expected 5 fields, got {len(parts)}"
            )
        try:
            time = float(parts[0])
            node = int(parts[1])
            x, y = float(parts[2]), float(parts[3])
            group = int(parts[4])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
        if node in groups and groups[node] != group:
            raise TraceFormatError(
                f"{path}:{lineno}: node {node} changes group "
                f"{groups[node]} -> {group}"
            )
        groups[node] = group
        frames.setdefault(time, {})[node] = (x, y)

    if not frames:
        raise TraceFormatError(f"{path}: no records")
    times = sorted(frames)
    node_set = set(groups)
    positions: List[Dict[int, Tuple[float, float]]] = []
    for time in times:
        frame = frames[time]
        if set(frame) != node_set:
            raise TraceFormatError(
                f"{path}: snapshot t={time} covers {len(frame)} nodes, "
                f"expected {len(node_set)}"
            )
        positions.append(frame)
    return MobilityTrace(
        times=list(times),
        positions=positions,
        groups=groups,
        metadata={"source": str(path)},
    )

"""General (non-geometric) graph models: Erdős–Rényi and Barabási–Albert.

The paper closes with: "these algorithms could also provide insights into
the general shortcut edge addition problems in any graphs". These generators
make that claim testable — MSC instances on classic random-graph models with
i.i.d. link failure probabilities instead of distance-derived ones (there is
no geometry here). See ``repro.experiments.generality_exp``.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ValidationError
from repro.graph.graph import WirelessGraph
from repro.graph.metrics import induced_subgraph, largest_component
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)


def _random_failure(rng, low: float, high: float) -> float:
    return rng.uniform(low, high)


def erdos_renyi_network(
    n: int,
    edge_probability: float,
    *,
    failure_range: Tuple[float, float] = (0.01, 0.1),
    seed: SeedLike = None,
    restrict_to_largest_component: bool = True,
) -> WirelessGraph:
    """G(n, p) with uniform-random link failure probabilities.

    Args:
        n: node count.
        edge_probability: independent probability of each possible edge.
        failure_range: per-link failure probability drawn uniformly from
            this interval.
        restrict_to_largest_component: keep only the giant component so
            social pairs have finite base distances.
    """
    check_positive_int(n, "n")
    check_probability(edge_probability, "edge_probability")
    low, high = failure_range
    check_fraction(low, "failure_range low")
    check_fraction(high, "failure_range high")
    if low > high:
        raise ValidationError(
            f"failure_range low {low} exceeds high {high}"
        )
    rng = ensure_rng(seed)
    graph = WirelessGraph()
    graph.add_nodes(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(
                    i, j,
                    failure_probability=_random_failure(rng, low, high),
                )
    if restrict_to_largest_component and graph.number_of_nodes():
        keep = largest_component(graph)
        if 0 < len(keep) < graph.number_of_nodes():
            graph = induced_subgraph(graph, keep)
    return graph


def barabasi_albert_network(
    n: int,
    attachments: int,
    *,
    failure_range: Tuple[float, float] = (0.01, 0.1),
    seed: SeedLike = None,
) -> WirelessGraph:
    """Barabási–Albert preferential attachment with random link failures.

    Starts from a clique of ``attachments + 1`` nodes; each new node
    attaches to *attachments* distinct existing nodes chosen with
    probability proportional to degree. Always connected by construction.
    """
    check_positive_int(n, "n")
    check_positive_int(attachments, "attachments")
    if attachments >= n:
        raise ValidationError(
            f"attachments={attachments} must be < n={n}"
        )
    low, high = failure_range
    check_fraction(low, "failure_range low")
    check_fraction(high, "failure_range high")
    if low > high:
        raise ValidationError(
            f"failure_range low {low} exceeds high {high}"
        )
    rng = ensure_rng(seed)
    graph = WirelessGraph()
    graph.add_nodes(range(n))
    # Seed clique.
    core = attachments + 1
    for i in range(core):
        for j in range(i + 1, core):
            graph.add_edge(
                i, j, failure_probability=_random_failure(rng, low, high)
            )
    # Preferential attachment via the repeated-endpoints trick: sampling a
    # uniform element of this list is degree-proportional sampling.
    endpoints = [
        v for i in range(core) for v in (i,) * (core - 1)
    ]
    for new in range(core, n):
        targets = set()
        while len(targets) < attachments:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for target in targets:
            graph.add_edge(
                new,
                target,
                failure_probability=_random_failure(rng, low, high),
            )
            endpoints.append(target)
            endpoints.append(new)
    return graph

"""Workload generators: geometric graphs, Gowalla-like LBSN data, tactical
mobility traces, and important-pair selection."""

from repro.netgen.checkins import CheckIn, proximity_graph
from repro.netgen.general import barabasi_albert_network, erdos_renyi_network
from repro.netgen.geometric import GeometricNetwork, random_geometric_network
from repro.netgen.gowalla import (
    gowalla_network,
    load_gowalla_checkins,
    load_gowalla_friendships,
    synthesize_gowalla_austin,
)
from repro.netgen.pairs import (
    select_common_node_pairs,
    select_friend_pairs,
    select_important_pairs,
)
from repro.netgen.tactical import (
    TacticalConfig,
    generate_tactical_trace,
    tactical_topology_series,
)

__all__ = [
    "GeometricNetwork",
    "random_geometric_network",
    "erdos_renyi_network",
    "barabasi_albert_network",
    "CheckIn",
    "proximity_graph",
    "load_gowalla_checkins",
    "load_gowalla_friendships",
    "synthesize_gowalla_austin",
    "gowalla_network",
    "select_important_pairs",
    "select_common_node_pairs",
    "select_friend_pairs",
    "TacticalConfig",
    "generate_tactical_trace",
    "tactical_topology_series",
]

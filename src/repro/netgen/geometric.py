"""Random geometric (RG) network generator (paper §VII-A1).

Nodes are placed uniformly at random in the unit square and connected when
their Euclidean distance is below a radius; each link's failure probability
is proportional to its geographical length (paper §VII-A3). The paper picks
the RG model because it "resembles a social network by spontaneously
demonstrating the community structure and displaying the degree
assortativity".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import ValidationError
from repro.failure.models import (
    DistanceProportionalFailure,
    LinkFailureModel,
)
from repro.graph.graph import Node, WirelessGraph
from repro.graph.metrics import induced_subgraph, largest_component
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive, check_positive_int

Position = Tuple[float, float]

#: Default failure probability of a link at exactly the connection radius.
DEFAULT_MAX_LINK_FAILURE = 0.05


@dataclass
class GeometricNetwork:
    """A generated network with node coordinates.

    Attributes:
        graph: the communication graph (edge lengths encode failure probs).
        positions: node -> (x, y) coordinates in the generator's units.
        radius: the connection radius used.
    """

    graph: WirelessGraph
    positions: Dict[Node, Position]
    radius: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def distance(self, u: Node, v: Node) -> float:
        """Euclidean distance between two node positions."""
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x1 - x2, y1 - y2)


def build_proximity_graph(
    positions: Dict[Node, Position],
    radius: float,
    failure_model: LinkFailureModel,
) -> WirelessGraph:
    """Connect every pair of positioned nodes closer than *radius*, with the
    link failure probability given by *failure_model*.

    Candidate pairs come from a uniform grid with cell size *radius* (two
    nodes closer than *radius* always share a 3×3 cell neighborhood), so
    the cost is ``O(n·density)`` rather than all ``O(n²)`` pairs — the
    difference between seconds and hours at the n=10⁵ oracle-tier scales.
    Edges are inserted in the same order as the historical all-pairs loop
    (for each node, partners in increasing position order), so generated
    graphs are bit-identical to the quadratic implementation.
    """
    graph = WirelessGraph()
    nodes = list(positions)
    graph.add_nodes(nodes)
    if radius <= 0 or len(nodes) < 2:
        return graph
    inv = 1.0 / radius
    coords = [positions[u] for u in nodes]
    cells: Dict[Tuple[int, int], list] = {}
    for order, (x, y) in enumerate(coords):
        cells.setdefault(
            (math.floor(x * inv), math.floor(y * inv)), []
        ).append(order)
    for i, u in enumerate(nodes):
        x1, y1 = coords[i]
        cx, cy = math.floor(x1 * inv), math.floor(y1 * inv)
        partners = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if bucket:
                    partners.extend(j for j in bucket if j > i)
        partners.sort()
        for j in partners:
            x2, y2 = coords[j]
            dist = math.hypot(x1 - x2, y1 - y2)
            if dist < radius:
                graph.add_edge(
                    u,
                    nodes[j],
                    failure_probability=failure_model.failure_probability(
                        dist
                    ),
                )
    return graph


def random_geometric_network(
    n: int,
    radius: float,
    *,
    failure_model: Optional[LinkFailureModel] = None,
    max_link_failure: float = DEFAULT_MAX_LINK_FAILURE,
    seed: SeedLike = None,
    restrict_to_largest_component: bool = True,
) -> GeometricNetwork:
    """Generate a random geometric network in the unit square.

    Args:
        n: number of nodes (before any component restriction).
        radius: connect two nodes when closer than this (unit-square units).
        failure_model: distance -> failure probability; defaults to the
            paper's proportional model, scaled so a link at exactly *radius*
            fails with *max_link_failure*.
        max_link_failure: see above; ignored when *failure_model* is given.
        seed: RNG seed.
        restrict_to_largest_component: drop nodes outside the largest
            connected component so social pairs always have finite base
            distance (shortcut placement is still meaningful — the pairs
            violate the requirement, not connectivity). Node names are kept.

    Node names are consecutive integers starting at 0.
    """
    check_positive_int(n, "n")
    check_positive(radius, "radius")
    if radius > math.sqrt(2.0):
        raise ValidationError(
            f"radius {radius} exceeds the unit-square diameter; every pair "
            "would be connected"
        )
    rng = ensure_rng(seed)
    if failure_model is None:
        failure_model = DistanceProportionalFailure.for_radius(
            radius, max_link_failure
        )
    positions: Dict[Node, Position] = {
        i: (rng.random(), rng.random()) for i in range(n)
    }
    graph = build_proximity_graph(positions, radius, failure_model)
    if restrict_to_largest_component and graph.number_of_nodes() > 0:
        keep = largest_component(graph)
        if len(keep) < graph.number_of_nodes():
            graph = induced_subgraph(graph, keep)
            positions = {node: positions[node] for node in keep}
    return GeometricNetwork(
        graph=graph,
        positions=positions,
        radius=radius,
        metadata={
            "model": "random_geometric",
            "requested_n": n,
            "failure_model": repr(failure_model),
        },
    )

"""Tactical mobility traces via reference-point group mobility (RPGM).

The paper's dynamic-network evaluation (§VII-A2, Fig. 5) uses mobility traces
from the US Army Research Laboratory's Network Science Research Laboratory:
90 nodes in 7 groups during a tactical operation, periodically reporting
positions. Those traces are not redistributable, so this module generates the
standard synthetic equivalent — RPGM: each group has a reference point moving
between random waypoints, and members jitter inside a bounded radius around
it. Snapshots taken at fixed intervals become the topology series
``G_1..G_T`` consumed by ``repro.dynamics``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.failure.models import DistanceProportionalFailure, LinkFailureModel
from repro.graph.graph import WirelessGraph
from repro.netgen.geometric import build_proximity_graph
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive, check_positive_int

Position = Tuple[float, float]


@dataclass(frozen=True)
class TacticalConfig:
    """RPGM generator parameters (defaults sized like the paper's Fig. 5).

    Attributes:
        n_nodes: total nodes; the ARL trace has 90, Fig. 5 uses 50.
        n_groups: groups/squads (paper: 7).
        area_meters: side of the square operation area.
        group_speed: reference-point speed in meters per time unit.
        member_radius: maximum member offset from the group reference point.
        member_step: per-snapshot member jitter step (random walk, clipped
            to *member_radius*).
        snapshot_interval: time units between topology snapshots.
        snapshots: number of snapshots T.
    """

    n_nodes: int = 50
    n_groups: int = 7
    area_meters: float = 2000.0
    group_speed: float = 15.0
    member_radius: float = 180.0
    member_step: float = 25.0
    snapshot_interval: float = 10.0
    snapshots: int = 30

    def validate(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.n_groups, "n_groups")
        check_positive_int(self.snapshots, "snapshots")
        check_positive(self.area_meters, "area_meters")
        check_positive(self.snapshot_interval, "snapshot_interval")
        if self.n_groups > self.n_nodes:
            raise ValidationError(
                f"n_groups={self.n_groups} exceeds n_nodes={self.n_nodes}"
            )


@dataclass
class MobilityTrace:
    """A generated trace: node positions at each snapshot time.

    Attributes:
        times: snapshot timestamps.
        positions: one dict per snapshot, node -> (x, y) meters.
        groups: node -> group id.
    """

    times: List[float]
    positions: List[Dict[int, Position]]
    groups: Dict[int, int]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.groups)

    @property
    def snapshots(self) -> int:
        return len(self.times)


class _ReferencePoint:
    """Random-waypoint mover for one group's reference point."""

    def __init__(self, area: float, speed: float, rng) -> None:
        self._area = area
        self._speed = speed
        self._rng = rng
        self.x = rng.uniform(0, area)
        self.y = rng.uniform(0, area)
        self._pick_waypoint()

    def _pick_waypoint(self) -> None:
        self._wx = self._rng.uniform(0, self._area)
        self._wy = self._rng.uniform(0, self._area)

    def advance(self, dt: float) -> None:
        remaining = self._speed * dt
        while remaining > 0:
            dx, dy = self._wx - self.x, self._wy - self.y
            dist = math.hypot(dx, dy)
            if dist <= remaining:
                self.x, self.y = self._wx, self._wy
                remaining -= dist
                self._pick_waypoint()
            else:
                self.x += dx / dist * remaining
                self.y += dy / dist * remaining
                remaining = 0.0


def generate_tactical_trace(
    config: TacticalConfig = TacticalConfig(),
    seed: SeedLike = None,
) -> MobilityTrace:
    """Generate an RPGM mobility trace according to *config*.

    Nodes are split round-robin across groups (group sizes differ by at most
    one). Member offsets follow a clipped random walk around the reference
    point so topologies between consecutive snapshots are correlated, like a
    real operation's.
    """
    config.validate()
    rng = ensure_rng(seed)
    groups = {
        node: node % config.n_groups for node in range(config.n_nodes)
    }
    refs = [
        _ReferencePoint(config.area_meters, config.group_speed, rng)
        for _ in range(config.n_groups)
    ]
    # Initial member offsets, uniform in the member disc.
    offsets: Dict[int, Tuple[float, float]] = {}
    for node in range(config.n_nodes):
        radius = config.member_radius * math.sqrt(rng.random())
        angle = rng.uniform(0, 2 * math.pi)
        offsets[node] = (radius * math.cos(angle), radius * math.sin(angle))

    times: List[float] = []
    snapshots: List[Dict[int, Position]] = []
    for step in range(config.snapshots):
        if step > 0:
            for ref in refs:
                ref.advance(config.snapshot_interval)
            for node in range(config.n_nodes):
                ox, oy = offsets[node]
                ox += rng.gauss(0.0, config.member_step)
                oy += rng.gauss(0.0, config.member_step)
                norm = math.hypot(ox, oy)
                if norm > config.member_radius:
                    scale = config.member_radius / norm
                    ox, oy = ox * scale, oy * scale
                offsets[node] = (ox, oy)
        frame: Dict[int, Position] = {}
        for node in range(config.n_nodes):
            ref = refs[groups[node]]
            ox, oy = offsets[node]
            frame[node] = (
                min(max(ref.x + ox, 0.0), config.area_meters),
                min(max(ref.y + oy, 0.0), config.area_meters),
            )
        times.append(step * config.snapshot_interval)
        snapshots.append(frame)
    return MobilityTrace(
        times=times,
        positions=snapshots,
        groups=groups,
        metadata={"config": config},
    )


def tactical_topology_series(
    trace: MobilityTrace,
    radius_meters: float,
    *,
    failure_model: Optional[LinkFailureModel] = None,
    max_link_failure: float = 0.05,
    snapshots: Optional[Sequence[int]] = None,
) -> List[WirelessGraph]:
    """Turn a mobility trace into the topology series ``G_1..G_T``.

    Every graph shares the same node set (nodes never leave the operation),
    which is what lets a single shortcut placement F be evaluated across all
    time instances (paper §VI).

    Args:
        trace: the mobility trace.
        radius_meters: communication radius.
        failure_model: distance -> failure probability (default: the paper's
            proportional model with *max_link_failure* at the radius).
        snapshots: optional subset of snapshot indices to materialize.
    """
    check_positive(radius_meters, "radius_meters")
    if failure_model is None:
        failure_model = DistanceProportionalFailure.for_radius(
            radius_meters, max_link_failure
        )
    indices = range(trace.snapshots) if snapshots is None else snapshots
    series = []
    for t in indices:
        if not 0 <= t < trace.snapshots:
            raise ValidationError(
                f"snapshot index {t} out of range [0, {trace.snapshots})"
            )
        graph = build_proximity_graph(
            trace.positions[t], radius_meters, failure_model
        )
        series.append(graph)
    return series

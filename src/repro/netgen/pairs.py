"""Important social pair selection (paper §VII-A3).

"The important social pairs are randomly selected from the node pairs with
path failure probability larger than the threshold p_t" — i.e. pairs that
currently violate the requirement and therefore actually need shortcut help.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import InstanceError
from repro.failure.models import failure_to_length
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node, WirelessGraph
from repro.types import NodePair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int


def eligible_pairs(
    graph: WirelessGraph,
    p_threshold: float,
    *,
    oracle: Optional[DistanceOracle] = None,
    max_failure: Optional[float] = None,
) -> List[NodePair]:
    """All node pairs whose best path fails with probability > *p_threshold*.

    Args:
        graph: the communication graph.
        p_threshold: the requirement threshold ``p_t``.
        oracle: optional pre-built distance oracle to reuse.
        max_failure: optionally also require the pair's path failure to be
            at most this value, excluding pairs so remote (or disconnected)
            that no reasonable placement could help; ``None`` places no cap.

    Pairs are returned in deterministic (index) order.
    """
    check_fraction(p_threshold, "p_threshold")
    d_threshold = failure_to_length(p_threshold)
    d_cap = (
        None if max_failure is None else failure_to_length(
            check_fraction(max_failure, "max_failure")
        )
    )
    if oracle is None:
        oracle = DistanceOracle(graph)
    matrix = oracle.matrix
    n = graph.number_of_nodes()
    out: List[NodePair] = []
    for iu in range(n):
        for iw in range(iu + 1, n):
            d = matrix[iu, iw]
            if d <= d_threshold:
                continue
            if d_cap is not None and d > d_cap:
                continue
            out.append((graph.index_node(iu), graph.index_node(iw)))
    return out


def select_important_pairs(
    graph: WirelessGraph,
    m: int,
    p_threshold: float,
    *,
    seed: SeedLike = None,
    oracle: Optional[DistanceOracle] = None,
    max_failure: Optional[float] = None,
) -> List[NodePair]:
    """Randomly select *m* important pairs violating the requirement.

    Raises :class:`InstanceError` when fewer than *m* pairs qualify (the
    caller should lower ``p_t``, raise *max_failure*, or shrink *m*).
    """
    check_positive_int(m, "m")
    candidates = eligible_pairs(
        graph, p_threshold, oracle=oracle, max_failure=max_failure
    )
    if len(candidates) < m:
        raise InstanceError(
            f"only {len(candidates)} node pairs violate p_t={p_threshold}"
            f" (need m={m}); lower p_t or m"
        )
    rng = ensure_rng(seed)
    return rng.sample(candidates, m)


def sample_important_pairs(
    graph: WirelessGraph,
    m: int,
    p_threshold: float,
    *,
    seed: SeedLike = None,
    max_failure: Optional[float] = None,
    oversample: int = 8,
) -> List[NodePair]:
    """Oracle-free violating-pair sampler for large graphs.

    :func:`select_important_pairs` enumerates all ``O(n²)`` pairs against
    a full APSP matrix — exactly the footprint the sparse oracle tier
    exists to avoid. This sampler instead draws random source nodes, runs
    one Dijkstra each (:func:`~repro.graph.paths.source_rows_matrix`), and
    keeps violating partners until *m* pairs are collected. The distribution is
    not identical to the uniform-over-all-violating-pairs selector (it is
    uniform per sampled source), which matches the paper's intent —
    "randomly selected from the node pairs with path failure probability
    larger than the threshold" — without ever materializing the pair
    universe.

    Args:
        oversample: give up after ``oversample * m`` source draws without
            filling the quota (graphs where almost nothing violates
            ``p_t``).

    Raises :class:`InstanceError` when the quota cannot be filled.
    """
    from repro.graph.paths import source_rows_matrix

    check_positive_int(m, "m")
    check_fraction(p_threshold, "p_threshold")
    d_threshold = failure_to_length(p_threshold)
    d_cap = (
        None if max_failure is None else failure_to_length(
            check_fraction(max_failure, "max_failure")
        )
    )
    rng = ensure_rng(seed)
    nodes = graph.nodes
    n = len(nodes)
    if n < 2:
        raise InstanceError("need at least two nodes to sample pairs")
    out: List[NodePair] = []
    seen = set()
    draws = 0
    while len(out) < m and draws < oversample * m:
        draws += 1
        u = nodes[rng.randrange(n)]
        iu = graph.node_index(u)
        distances = source_rows_matrix(graph, [iu])[0]
        partners = []
        for iw in range(n):
            if iw == iu:
                continue
            d = distances[iw]
            if d <= d_threshold:
                continue
            if d_cap is not None and d > d_cap:
                continue
            key = (min(iu, iw), max(iu, iw))
            if key not in seen:
                partners.append((iw, key))
        if not partners:
            continue
        iw, key = partners[rng.randrange(len(partners))]
        seen.add(key)
        out.append((u, graph.index_node(iw)))
    if len(out) < m:
        raise InstanceError(
            f"sampled only {len(out)} violating pairs after {draws} "
            f"source draws (need m={m}); lower p_t or m"
        )
    return out


def select_friend_pairs(
    graph: WirelessGraph,
    friendships: Sequence[NodePair],
    m: int,
    p_threshold: float,
    *,
    seed: SeedLike = None,
    oracle: Optional[DistanceOracle] = None,
) -> List[NodePair]:
    """Select *m* violating pairs among declared friendships.

    The paper samples important pairs uniformly among all violating node
    pairs; in a location-based social network the natural demand set is the
    *friendship* graph (who actually wants to talk). This selector
    restricts the violating-pair universe to *friendships* — pairs where
    both endpoints are in the communication graph and the requirement is
    currently violated.

    Raises :class:`InstanceError` when fewer than *m* friendships qualify.
    """
    check_positive_int(m, "m")
    check_fraction(p_threshold, "p_threshold")
    d_threshold = failure_to_length(p_threshold)
    if oracle is None:
        oracle = DistanceOracle(graph)
    matrix = oracle.matrix
    candidates: List[NodePair] = []
    seen = set()
    for u, w in friendships:
        if u == w or not (graph.has_node(u) and graph.has_node(w)):
            continue
        iu, iw = graph.node_index(u), graph.node_index(w)
        key = (min(iu, iw), max(iu, iw))
        if key in seen:
            continue
        seen.add(key)
        if matrix[iu, iw] > d_threshold:
            candidates.append((u, w))
    if len(candidates) < m:
        raise InstanceError(
            f"only {len(candidates)} friendships violate "
            f"p_t={p_threshold} (need m={m})"
        )
    rng = ensure_rng(seed)
    return rng.sample(candidates, m)


def select_common_node_pairs(
    graph: WirelessGraph,
    common: Node,
    m: int,
    p_threshold: float,
    *,
    seed: SeedLike = None,
    oracle: Optional[DistanceOracle] = None,
) -> List[NodePair]:
    """Select *m* violating pairs that all share the node *common*
    (the MSC-CN workload of paper §IV)."""
    check_positive_int(m, "m")
    check_fraction(p_threshold, "p_threshold")
    d_threshold = failure_to_length(p_threshold)
    if oracle is None:
        oracle = DistanceOracle(graph)
    row = oracle.row(common)
    candidates = [
        graph.index_node(i)
        for i in range(graph.number_of_nodes())
        if row[i] > d_threshold
    ]
    if len(candidates) < m:
        raise InstanceError(
            f"only {len(candidates)} partners of {common!r} violate "
            f"p_t={p_threshold} (need m={m})"
        )
    rng = ensure_rng(seed)
    partners = rng.sample(candidates, m)
    return [(common, partner) for partner in partners]

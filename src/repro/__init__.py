"""repro — reproduction of "Maintaining Social Connections through Direct
Link Placement in Wireless Networks" (Qiu, Ma, Cao; ICDCS 2019).

The library implements the MSC problem end to end: the wireless-graph
substrate with failure-probability link model, the workload generators the
paper evaluates on (random geometric graphs, a Gowalla-like location-based
social network, tactical group-mobility traces), the sandwich Approximation
Algorithm with its submodular bounds, both evolutionary algorithms, the
dynamic-network extension, and an experiment harness regenerating every
table and figure of the paper's evaluation section.

Quickstart::

    from repro import (
        MSCInstance, SandwichApproximation,
        random_geometric_network, select_important_pairs,
    )

    net = random_geometric_network(100, radius=0.2, seed=1)
    pairs = select_important_pairs(net.graph, m=20, p_threshold=0.1, seed=2)
    instance = MSCInstance(net.graph, pairs, k=5, p_threshold=0.1)
    result = SandwichApproximation(instance).solve()
    print(result.summary())
"""

from repro.core.aea import (
    AdaptiveEvolutionaryAlgorithm,
    solve_aea,
    solve_aea_warmstart,
)
from repro.core.bounds import MuFunction, NuFunction
from repro.core.ea import EvolutionaryAlgorithm, solve_ea
from repro.core.evaluator import SigmaEvaluator
from repro.core.exact import solve_exact
from repro.core.budgeted import (
    budgeted_greedy_placement,
    distance_cost_matrix,
    placement_cost,
)
from repro.core.greedy import greedy_placement
from repro.core.lazy_greedy import lazy_greedy_placement
from repro.core.msc_cn import (
    is_common_node_instance,
    solve_msc_cn,
    solve_msc_cn_exact,
)
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.ratio import sandwich_ratio
from repro.core.registry import (
    get_solver,
    register_solver,
    solve,
    solve_request,
    solver_names,
)
from repro.core.substrate import EngineCache, PlacementRequest, Substrate
from repro.core.sandwich import SandwichApproximation, solve_sandwich
from repro.core.weighted import (
    WeightedMuFunction,
    WeightedNuFunction,
    WeightedSigmaEvaluator,
    weighted_sandwich,
)
from repro.analysis.placement import edge_contributions, pair_attribution
from repro.analysis.planner import PlacementPlanner
from repro.analysis.robustness import perturbation_analysis
from repro.dynamics.prediction import LinearMotionPredictor, prediction_error, split_trace
from repro.dynamics.series import DynamicMSCInstance, build_dynamic_instance
from repro.exceptions import (
    GraphError,
    InstanceError,
    ReproError,
    SolverError,
    TraceFormatError,
    ValidationError,
)
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.shortcuts import ShortcutDistanceEngine
from repro.netgen.geometric import GeometricNetwork, random_geometric_network
from repro.netgen.gowalla import gowalla_network, synthesize_gowalla_austin
from repro.netgen.pairs import (
    select_common_node_pairs,
    select_friend_pairs,
    select_important_pairs,
)
from repro.netgen.tactical import (
    TacticalConfig,
    generate_tactical_trace,
    tactical_topology_series,
)
from repro.io import load_instance, load_placement, save_instance, save_placement
from repro.sim.delivery import DeliveryReport, DeliverySimulator
from repro.types import PlacementResult
from repro.viz.svg import render_placement_svg, save_placement_svg

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "WirelessGraph",
    "DistanceOracle",
    "ShortcutDistanceEngine",
    # problem + objective
    "MSCInstance",
    "Substrate",
    "PlacementRequest",
    "EngineCache",
    "SigmaEvaluator",
    "MuFunction",
    "NuFunction",
    "PlacementResult",
    # algorithms
    "greedy_placement",
    "lazy_greedy_placement",
    "budgeted_greedy_placement",
    "distance_cost_matrix",
    "placement_cost",
    "SandwichApproximation",
    "solve_sandwich",
    "EvolutionaryAlgorithm",
    "solve_ea",
    "AdaptiveEvolutionaryAlgorithm",
    "solve_aea",
    "solve_aea_warmstart",
    "solve_random_baseline",
    "solve_exact",
    "solve_msc_cn",
    "solve_msc_cn_exact",
    "is_common_node_instance",
    "sandwich_ratio",
    "WeightedSigmaEvaluator",
    "WeightedMuFunction",
    "WeightedNuFunction",
    "weighted_sandwich",
    "get_solver",
    "register_solver",
    "solve",
    "solve_request",
    "solver_names",
    # analysis
    "edge_contributions",
    "pair_attribution",
    "PlacementPlanner",
    "perturbation_analysis",
    # dynamics
    "DynamicMSCInstance",
    "build_dynamic_instance",
    "LinearMotionPredictor",
    "prediction_error",
    "split_trace",
    # simulation
    "DeliverySimulator",
    "DeliveryReport",
    # visualization
    "render_placement_svg",
    "save_placement_svg",
    # persistence
    "save_instance",
    "load_instance",
    "save_placement",
    "load_placement",
    # workloads
    "GeometricNetwork",
    "random_geometric_network",
    "gowalla_network",
    "synthesize_gowalla_austin",
    "select_important_pairs",
    "select_common_node_pairs",
    "select_friend_pairs",
    "TacticalConfig",
    "generate_tactical_trace",
    "tactical_topology_series",
    # errors
    "ReproError",
    "GraphError",
    "InstanceError",
    "SolverError",
    "TraceFormatError",
    "ValidationError",
]

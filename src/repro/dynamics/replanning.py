"""Sliding-window re-planning for dynamic MSC.

The paper places one shortcut set for the whole horizon (§VI). When the
shortcut links are UAV relays or steerable satellite beams, an operator can
*re-plan*: every ``window`` time instances, compute a fresh placement for
the upcoming window (same budget k — the hardware is reused, not
duplicated). The gain is a placement tuned to current topology; the cost is
relocation churn (edges torn down and re-established).

:func:`replan` realizes the strategy and accounts both sides;
``window == T`` degenerates to the paper's static placement, ``window == 1``
is per-snapshot re-optimization (the offline upper reference for this
budget). The ``replanning`` supplementary experiment sweeps the tradeoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set

from repro.dynamics.series import DynamicMSCInstance
from repro.types import IndexPair, NodePair, PlacementResult
from repro.util.validation import check_positive_int

#: A solver over a DynamicMSCInstance, e.g. ``lambda d: d.solve_sandwich()``.
WindowSolver = Callable[[DynamicMSCInstance], PlacementResult]


@dataclass
class ReplanningResult:
    """Outcome of a re-planned horizon.

    Attributes:
        window: re-planning period (time instances per placement).
        placements: one edge list (node pairs) per window, in order.
        sigma_per_topology: maintained pairs at each time instance, under
            the placement active there.
        relocations: total edge changes across consecutive windows (edges
            newly established; teardowns mirror them).
    """

    window: int
    placements: List[List[NodePair]] = field(default_factory=list)
    sigma_per_topology: List[int] = field(default_factory=list)
    relocations: int = 0

    @property
    def total_sigma(self) -> int:
        return sum(self.sigma_per_topology)

    def summary(self) -> str:
        return (
            f"replan(window={self.window}): total σ={self.total_sigma}, "
            f"{len(self.placements)} placements, "
            f"{self.relocations} relocations"
        )


def replan(
    dyn: DynamicMSCInstance,
    window: int,
    solver: Optional[WindowSolver] = None,
) -> ReplanningResult:
    """Re-plan the placement every *window* time instances.

    Each window's placement is computed from that window's topologies only
    (assuming, like §VI, that near-term predictions are available) and
    scored on the same topologies.
    """
    check_positive_int(window, "window")
    if solver is None:
        solver = lambda d: d.solve_sandwich()  # noqa: E731

    result = ReplanningResult(window=window)
    previous: Set[IndexPair] = set()
    for start in range(0, dyn.T, window):
        chunk = DynamicMSCInstance(
            dyn.instances[start : start + window]
        )
        placement = solver(chunk)
        edges = chunk.edges_to_index_pairs(placement.edges)
        result.placements.append(list(placement.edges))
        result.sigma_per_topology.extend(
            chunk.sigma_per_topology(edges)
        )
        current = set(edges)
        if start > 0:  # establishing the first placement is free
            result.relocations += len(current - previous)
        previous = current
    return result


def compare_windows(
    dyn: DynamicMSCInstance,
    windows: Sequence[int],
    solver: Optional[WindowSolver] = None,
) -> List[ReplanningResult]:
    """Run :func:`replan` for each window size (the tradeoff curve)."""
    return [replan(dyn, window, solver=solver) for window in windows]

"""Dynamic MSC: one shortcut placement serving a series of topologies.

Section VI of the paper models a dynamic network as topologies
``G_1, ..., G_T`` (predicted from mobility/social evolution), each with its
own set of important pairs. The objective becomes
``σ(F) = Σ_t σ_t(F)``, and since sums of submodular functions are
submodular, the summed bounds ``μ = Σ μ_t`` and ``ν = Σ ν_t`` sandwich the
dynamic objective exactly as in the static case — so *every* static
algorithm (AA, EA, AEA, greedy, random) reapplies unchanged. This module
provides that wiring.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.aea import AdaptiveEvolutionaryAlgorithm
from repro.core.bounds import MuFunction, NuFunction
from repro.core.ea import EvolutionaryAlgorithm
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import SandwichApproximation
from repro.core.setfunction import SumSetFunction
from repro.exceptions import InstanceError
from repro.graph.graph import WirelessGraph
from repro.types import IndexPair, NodePair, PlacementResult
from repro.util.rng import SeedLike


class DynamicMSCInstance:
    """A sequence of per-time-instance MSC instances over one node universe.

    All topologies must list exactly the same nodes in the same order (so a
    shortcut edge, an index pair, means the same physical link at every time
    instance) and share the budget ``k``.
    """

    def __init__(self, instances: Sequence[MSCInstance]) -> None:
        if not instances:
            raise InstanceError("need at least one time instance")
        reference = instances[0]
        nodes = reference.graph.nodes
        for t, instance in enumerate(instances):
            if instance.graph.nodes != nodes:
                raise InstanceError(
                    f"topology {t} has a different node universe than "
                    "topology 0 (same nodes in the same order are required)"
                )
            if instance.k != reference.k:
                raise InstanceError(
                    f"topology {t} has budget k={instance.k}, expected "
                    f"{reference.k}"
                )
        self.instances: List[MSCInstance] = list(instances)
        self._sigma: Optional[SumSetFunction] = None
        self._mu: Optional[SumSetFunction] = None
        self._nu: Optional[SumSetFunction] = None

    # ------------------------------------------------------------ properties

    @property
    def T(self) -> int:
        """Number of time instances."""
        return len(self.instances)

    @property
    def k(self) -> int:
        return self.instances[0].k

    @property
    def n(self) -> int:
        return self.instances[0].n

    @property
    def total_pairs(self) -> int:
        """Total important pairs across all time instances (the maximum of
        the dynamic objective)."""
        return sum(instance.m for instance in self.instances)

    @property
    def carrier(self) -> MSCInstance:
        """The instance used for node/index conversions (topology 0)."""
        return self.instances[0]

    # ------------------------------------------------------------ objectives

    def sigma_function(self) -> SumSetFunction:
        """The dynamic objective ``Σ_t σ_t`` (cached)."""
        if self._sigma is None:
            self._sigma = SumSetFunction(
                [SigmaEvaluator(instance) for instance in self.instances]
            )
        return self._sigma

    def mu_function(self) -> SumSetFunction:
        """The summed lower bound ``Σ_t μ_t`` (cached)."""
        if self._mu is None:
            self._mu = SumSetFunction(
                [MuFunction(instance) for instance in self.instances]
            )
        return self._mu

    def nu_function(self) -> SumSetFunction:
        """The summed upper bound ``Σ_t ν_t`` (cached)."""
        if self._nu is None:
            self._nu = SumSetFunction(
                [NuFunction(instance) for instance in self.instances]
            )
        return self._nu

    def sigma_per_topology(self, edges: Sequence[IndexPair]) -> List[int]:
        """σ_t(F) for each time instance, for per-instance reporting
        (Fig. 5b averages)."""
        return [
            int(term.value(edges)) for term in self.sigma_function().terms
        ]

    def edges_to_index_pairs(
        self, edges: Sequence[NodePair]
    ) -> List[IndexPair]:
        """Convert node-pair shortcut edges into the shared index space."""
        graph = self.carrier.graph
        out = []
        for u, v in edges:
            a, b = graph.node_index(u), graph.node_index(v)
            out.append((a, b) if a <= b else (b, a))
        return out

    # --------------------------------------------------------------- solvers

    def solve_sandwich(self) -> PlacementResult:
        """Sandwich AA on the dynamic objective (paper §VI-2)."""
        return SandwichApproximation(
            self.carrier,
            sigma=self.sigma_function(),
            mu=self.mu_function(),
            nu=self.nu_function(),
        ).solve(k=self.k)

    def solve_ea(
        self, iterations: int = 500, seed: SeedLike = None
    ) -> PlacementResult:
        """EA on the dynamic objective (paper §VI-3)."""
        return EvolutionaryAlgorithm(
            self.carrier,
            iterations=iterations,
            sigma=self.sigma_function(),
            seed=seed,
        ).solve(k=self.k)

    def solve_aea(
        self,
        iterations: int = 500,
        *,
        pool_size: int = 10,
        delta: float = 0.05,
        seed: SeedLike = None,
    ) -> PlacementResult:
        """AEA on the dynamic objective (paper §VI-3)."""
        return AdaptiveEvolutionaryAlgorithm(
            self.carrier,
            iterations=iterations,
            pool_size=pool_size,
            delta=delta,
            sigma=self.sigma_function(),
            seed=seed,
        ).solve(k=self.k)

    def solve_random(
        self, trials: int = 500, seed: SeedLike = None
    ) -> PlacementResult:
        """Best-of-*trials* random placement on the dynamic objective."""
        return solve_random_baseline(
            self.carrier,
            seed=seed,
            trials=trials,
            sigma=self.sigma_function(),
        )


def build_dynamic_instance(
    graphs: Sequence[WirelessGraph],
    pairs_per_topology: Sequence[Sequence[NodePair]],
    k: int,
    *,
    p_threshold: Optional[float] = None,
    d_threshold: Optional[float] = None,
    require_initially_unsatisfied: bool = True,
) -> DynamicMSCInstance:
    """Assemble a :class:`DynamicMSCInstance` from per-topology graphs and
    pair sets sharing one threshold and budget."""
    if len(graphs) != len(pairs_per_topology):
        raise InstanceError(
            f"{len(graphs)} graphs but {len(pairs_per_topology)} pair sets"
        )
    instances = [
        MSCInstance(
            graph,
            pairs,
            k,
            p_threshold=p_threshold,
            d_threshold=d_threshold,
            require_initially_unsatisfied=require_initially_unsatisfied,
        )
        for graph, pairs in zip(graphs, pairs_per_topology)
    ]
    return DynamicMSCInstance(instances)

"""Topology prediction for dynamic MSC (paper §VI).

The paper assumes "dynamic topologies and social pairs are given by …
prediction techniques" and stays agnostic about how. This module supplies
the standard baseline — constant-velocity extrapolation of node positions —
plus error metrics, so the prediction→placement→reality pipeline can be
exercised end to end: place shortcut edges against *predicted* topologies,
evaluate against the *actual* ones (see
``repro.experiments.prediction_exp``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import ValidationError
from repro.netgen.tactical import MobilityTrace, Position
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class PredictionError:
    """Positional prediction error summary (meters, same units as trace).

    Attributes:
        mean: mean Euclidean error over all (snapshot, node) points.
        max: worst-case error.
        per_snapshot: mean error per predicted snapshot (grows with
            horizon for any real predictor).
    """

    mean: float
    max: float
    per_snapshot: List[float]


class LinearMotionPredictor:
    """Constant-velocity extrapolation from the last *window* snapshots.

    For each node, the velocity is the average displacement per time unit
    over the observation window; predicted positions continue along it.
    With ``window=1`` this degenerates to "freeze the last topology", the
    natural no-motion baseline.
    """

    def __init__(self, window: int = 3) -> None:
        self.window = check_positive_int(window, "window")

    def predict(
        self, observed: MobilityTrace, horizon: int
    ) -> MobilityTrace:
        """Predict *horizon* future snapshots following *observed*.

        Snapshot spacing is taken from the observed trace (uniform spacing
        assumed; the generator produces it).
        """
        check_positive_int(horizon, "horizon")
        if observed.snapshots == 0:
            raise ValidationError("observed trace is empty")
        times = observed.times
        step = (
            times[-1] - times[-2]
            if len(times) >= 2
            else 1.0
        )
        window = min(self.window, observed.snapshots)
        first = observed.snapshots - window
        velocities: Dict[int, Tuple[float, float]] = {}
        for node in observed.groups:
            if window == 1 or times[-1] == times[first]:
                velocities[node] = (0.0, 0.0)
                continue
            x0, y0 = observed.positions[first][node]
            x1, y1 = observed.positions[-1][node]
            dt = times[-1] - times[first]
            velocities[node] = ((x1 - x0) / dt, (y1 - y0) / dt)

        predicted_times: List[float] = []
        predicted_positions: List[Dict[int, Position]] = []
        for h in range(1, horizon + 1):
            t = times[-1] + h * step
            frame: Dict[int, Position] = {}
            for node in observed.groups:
                x, y = observed.positions[-1][node]
                vx, vy = velocities[node]
                frame[node] = (x + vx * h * step, y + vy * h * step)
            predicted_times.append(t)
            predicted_positions.append(frame)
        return MobilityTrace(
            times=predicted_times,
            positions=predicted_positions,
            groups=dict(observed.groups),
            metadata={
                "predictor": f"linear(window={self.window})",
                "horizon": horizon,
            },
        )


def split_trace(
    trace: MobilityTrace, observed_snapshots: int
) -> Tuple[MobilityTrace, MobilityTrace]:
    """Split a trace into an observed prefix and the actual future."""
    check_positive_int(observed_snapshots, "observed_snapshots")
    if observed_snapshots >= trace.snapshots:
        raise ValidationError(
            f"observed_snapshots={observed_snapshots} leaves no future "
            f"(trace has {trace.snapshots})"
        )
    prefix = MobilityTrace(
        times=trace.times[:observed_snapshots],
        positions=trace.positions[:observed_snapshots],
        groups=dict(trace.groups),
        metadata=dict(trace.metadata),
    )
    future = MobilityTrace(
        times=trace.times[observed_snapshots:],
        positions=trace.positions[observed_snapshots:],
        groups=dict(trace.groups),
        metadata=dict(trace.metadata),
    )
    return prefix, future


def prediction_error(
    actual: MobilityTrace, predicted: MobilityTrace
) -> PredictionError:
    """Positional error of *predicted* against *actual* (aligned
    snapshot-by-snapshot; the shorter one bounds the comparison)."""
    import math

    count = min(actual.snapshots, predicted.snapshots)
    if count == 0:
        raise ValidationError("nothing to compare")
    per_snapshot: List[float] = []
    worst = 0.0
    total = 0.0
    points = 0
    for t in range(count):
        frame_error = 0.0
        for node in actual.groups:
            ax, ay = actual.positions[t][node]
            px, py = predicted.positions[t][node]
            err = math.hypot(ax - px, ay - py)
            frame_error += err
            worst = max(worst, err)
            total += err
            points += 1
        per_snapshot.append(frame_error / len(actual.groups))
    return PredictionError(
        mean=total / points,
        max=worst,
        per_snapshot=per_snapshot,
    )

"""Dynamic-network MSC (paper §VI): topology series and summed objectives."""

from repro.dynamics.prediction import (
    LinearMotionPredictor,
    prediction_error,
    split_trace,
)
from repro.dynamics.replanning import ReplanningResult, compare_windows, replan
from repro.dynamics.series import DynamicMSCInstance, build_dynamic_instance

__all__ = [
    "DynamicMSCInstance",
    "build_dynamic_instance",
    "LinearMotionPredictor",
    "prediction_error",
    "split_trace",
    "replan",
    "compare_windows",
    "ReplanningResult",
]

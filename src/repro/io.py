"""Persistence: save/load graphs, MSC instances and placements as JSON.

Lets users generate a workload once, archive it, and re-solve or audit it
later — and makes solver outputs portable artifacts. Node names survive a
round trip when they are JSON-representable (ints/strings); other hashables
are stringified with a warning in the payload.

Format (version 1)::

    {"format": "repro-instance", "version": 1,
     "graph": {"nodes": [...], "edges": [[u, v, length], ...]},
     "pairs": [[u, w], ...], "k": 3, "d_threshold": 0.1}

Placements::

    {"format": "repro-placement", "version": 1,
     "algorithm": "sandwich", "edges": [[u, v], ...], "sigma": 7, ...}
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Union

from repro.core.problem import MSCInstance
from repro.exceptions import ValidationError
from repro.graph.graph import WirelessGraph
from repro.types import PlacementResult
from repro.util.serialization import dump_json, load_json

PathLike = Union[str, Path]

INSTANCE_FORMAT = "repro-instance"
PLACEMENT_FORMAT = "repro-placement"
VERSION = 1


def _json_node(node) -> Any:
    if isinstance(node, (int, str)):
        return node
    if isinstance(node, float) and node == int(node):
        return int(node)
    return str(node)


def graph_to_dict(graph: WirelessGraph) -> Dict[str, Any]:
    """Graph as a JSON-ready dict (lengths carry the failure encoding)."""
    return {
        "nodes": [_json_node(v) for v in graph.nodes],
        "edges": [
            [_json_node(u), _json_node(v), length]
            for u, v, length in graph.edges
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> WirelessGraph:
    """Inverse of :func:`graph_to_dict`."""
    try:
        nodes = data["nodes"]
        edges = data["edges"]
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed graph payload: {exc}") from exc
    graph = WirelessGraph()
    graph.add_nodes(nodes)
    for entry in edges:
        if len(entry) != 3:
            raise ValidationError(
                f"graph edge entry must be [u, v, length], got {entry!r}"
            )
        u, v, length = entry
        graph.add_edge(u, v, length=float(length))
    return graph


def save_instance(instance: MSCInstance, path: PathLike) -> None:
    """Write an MSC instance to *path* as JSON."""
    payload = {
        "format": INSTANCE_FORMAT,
        "version": VERSION,
        "graph": graph_to_dict(instance.graph),
        "pairs": [
            [_json_node(u), _json_node(w)] for u, w in instance.pairs
        ],
        "k": instance.k,
        "d_threshold": instance.d_threshold,
    }
    dump_json(payload, path)


def load_instance(
    path: PathLike, *, require_initially_unsatisfied: bool = False
) -> MSCInstance:
    """Read an MSC instance written by :func:`save_instance`.

    Validation of "pairs initially violate the requirement" is off by
    default on load: archived instances may have been built with custom
    rules, and re-validating would reject them spuriously.
    """
    data = load_json(path)
    if not isinstance(data, dict) or data.get("format") != INSTANCE_FORMAT:
        raise ValidationError(f"{path}: not a {INSTANCE_FORMAT} file")
    if data.get("version") != VERSION:
        raise ValidationError(
            f"{path}: unsupported version {data.get('version')!r}"
        )
    graph = graph_from_dict(data["graph"])
    pairs = [tuple(pair) for pair in data["pairs"]]
    return MSCInstance(
        graph,
        pairs,
        data["k"],
        d_threshold=data["d_threshold"],
        require_initially_unsatisfied=require_initially_unsatisfied,
    )


def save_placement(result: PlacementResult, path: PathLike) -> None:
    """Write a placement result to *path* as JSON (extras included when
    serializable; non-serializable extras are dropped with a marker)."""
    import json

    extras: Dict[str, Any] = {}
    for key, value in result.extras.items():
        try:
            json.dumps(value)
            extras[key] = value
        except (TypeError, ValueError):
            extras[key] = f"<unserializable: {type(value).__name__}>"
    payload = {
        "format": PLACEMENT_FORMAT,
        "version": VERSION,
        "algorithm": result.algorithm,
        "edges": [[_json_node(u), _json_node(v)] for u, v in result.edges],
        "sigma": result.sigma,
        "satisfied": list(result.satisfied),
        "evaluations": result.evaluations,
        "trace": list(result.trace),
        "extras": extras,
    }
    dump_json(payload, path)


def load_placement(path: PathLike) -> PlacementResult:
    """Read a placement written by :func:`save_placement`."""
    data = load_json(path)
    if not isinstance(data, dict) or data.get("format") != PLACEMENT_FORMAT:
        raise ValidationError(f"{path}: not a {PLACEMENT_FORMAT} file")
    if data.get("version") != VERSION:
        raise ValidationError(
            f"{path}: unsupported version {data.get('version')!r}"
        )
    return PlacementResult(
        algorithm=data["algorithm"],
        edges=[tuple(edge) for edge in data["edges"]],
        sigma=data["sigma"],
        satisfied=[bool(flag) for flag in data["satisfied"]],
        evaluations=data.get("evaluations", 0),
        trace=list(data.get("trace", [])),
        extras=dict(data.get("extras", {})),
    )

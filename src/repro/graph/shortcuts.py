"""Exact distances in a graph augmented with zero-length shortcut edges.

Shortcut edges have length 0, so the endpoints of any connected group of
shortcut edges collapse — for distance purposes — into a single *supernode*.
Given the base graph's APSP matrix ``D`` (from a
:class:`~repro.graph.distances.DistanceOracle`), the augmented distance is

``d_F(u, w) = min(D[u, w],  min_{a, b} (D[u, comp_a] + C[a, b] + D[comp_b, w]))``

where ``D[u, comp]`` is the minimum base distance from ``u`` to any member of
the component, and ``C`` is the shortest-path closure of the inter-component
minimum-distance matrix. With ``c`` components (``c <= |F|``), building the
engine costs ``O(c^2 n + c^3)`` and each ``distances_from`` query is one
vectorized pass over ``n`` — far cheaper than re-running Dijkstra on the
augmented graph, and exact (verified against networkx in the test suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node
from repro.util.unionfind import UnionFind

ShortcutPair = Tuple[Node, Node]


def _floyd_warshall_closure(matrix: np.ndarray) -> np.ndarray:
    """Min-plus shortest-path closure of a small dense matrix (diag = 0)."""
    closure = matrix.copy()
    np.fill_diagonal(closure, 0.0)
    c = closure.shape[0]
    for mid in range(c):
        via = closure[:, mid : mid + 1] + closure[mid : mid + 1, :]
        np.minimum(closure, via, out=closure)
    return closure


class ShortcutDistanceEngine:
    """Distance queries on ``G' = (V, E ∪ F)`` for a fixed shortcut set F.

    The engine is immutable; evaluating a different shortcut set means
    building a new engine — either from scratch, or incrementally from an
    engine for a subset via :meth:`extended` (the greedy/EA hot path, which
    derives the new tables from the parent's instead of re-reducing the
    APSP matrix).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        shortcuts: Iterable[ShortcutPair],
    ) -> None:
        graph = oracle.graph
        index_pairs = []
        for u, v in shortcuts:
            index_pairs.append((graph.node_index(u), graph.node_index(v)))
        self._init_from_indices(oracle, index_pairs)

    @classmethod
    def from_index_pairs(
        cls,
        oracle: DistanceOracle,
        index_pairs: Iterable[Tuple[int, int]],
    ) -> "ShortcutDistanceEngine":
        """Build an engine directly from dense index pairs (fast path used by
        the σ evaluator, which works in index space throughout)."""
        engine = cls.__new__(cls)
        engine._init_from_indices(oracle, list(index_pairs))
        return engine

    def _init_from_indices(
        self,
        oracle: DistanceOracle,
        index_pairs: List[Tuple[int, int]],
    ) -> None:
        self._oracle = oracle
        n = oracle.number_of_nodes()
        self._shortcuts: List[Tuple[int, int]] = []
        uf = UnionFind()
        for iu, iv in index_pairs:
            if iu == iv:
                raise GraphError(f"shortcut self-loop on index {iu}")
            if not (0 <= iu < n and 0 <= iv < n):
                raise GraphError(f"shortcut index pair ({iu}, {iv}) "
                                 f"out of range for n={n}")
            self._shortcuts.append((iu, iv))
            uf.union(iu, iv)
        components = uf.components()
        self._components: List[List[int]] = [sorted(c) for c in components]
        self._build_tables()

    def _build_tables(self) -> None:
        c = len(self._components)
        oracle = self._oracle
        if c == 0:
            self._comp_min = np.empty((0, oracle.number_of_nodes()))
            self._inter = np.empty((0, 0))
            self._closure = np.empty((0, 0))
            return
        rows_to = getattr(oracle, "rows_to", None)
        if rows_to is not None:
            # Lazy tables (hub-label tier): never materialize the (c, n)
            # comp_min block. F is tiny, so the inter-supernode matrix is
            # a handful of label-sliced set-to-set queries, and the
            # column-restricted queries derive their comp_min slices on
            # demand (:meth:`_comp_block`). Full-width rows appear only
            # if a consumer asks for a full-row query (off the hot path).
            self._comp_min = None
            inter = np.empty((c, c))
            for a in range(c):
                inter[a, a] = 0.0
                for b in range(a + 1, c):
                    value = float(
                        rows_to(
                            self._components[a], self._components[b]
                        ).min()
                    )
                    inter[a, b] = inter[b, a] = value
            self._inter = inter
        else:
            # comp_min[a, :] = distance from supernode a to every base
            # node. Row access (never the square matrix) keeps the engine
            # working unchanged on row-block oracles.
            self._comp_min = np.vstack(
                [
                    oracle.rows(members).min(axis=0)
                    for members in self._components
                ]
            )
            # Pairwise supernode distances through the base graph, then
            # closed under taking further shortcut hops (supernodes can
            # chain).
            self._inter = np.vstack(
                [
                    self._comp_min[:, members].min(axis=1)
                    for members in self._components
                ]
            )
        self._closure = _floyd_warshall_closure(self._inter)

    def _comp_min_table(self) -> np.ndarray:
        """The full ``(c, n)`` comp_min block, materialized on demand in
        lazy mode (full-width queries only; restricted queries go through
        :meth:`_comp_block`)."""
        if self._comp_min is None:
            oracle = self._oracle
            self._comp_min = np.vstack(
                [
                    oracle.rows(members).min(axis=0)
                    for members in self._components
                ]
            )
        return self._comp_min

    def _comp_block(self, columns: np.ndarray) -> np.ndarray:
        """comp_min restricted to *columns* — ``(c, len(columns))``;
        label-sliced in lazy mode, a column view otherwise."""
        if self._comp_min is not None:
            return self._comp_min[:, columns]
        rows_to = self._oracle.rows_to
        return np.vstack(
            [
                rows_to(members, columns).min(axis=0)
                for members in self._components
            ]
        )

    # ----------------------------------------------------- incremental build

    def extended(self, shortcut: ShortcutPair) -> "ShortcutDistanceEngine":
        """Engine for ``F ∪ {shortcut}``, derived from this engine's tables.

        Equivalent to building a fresh engine for the extended set, but the
        supernode tables are updated incrementally: the affected component's
        ``comp_min`` row is an elementwise min of existing rows (plus at most
        two APSP rows), the inter-supernode matrix changes only in that
        component's row/column, and only the small ``c × c`` closure is
        recomputed — ``O(cn + c³)`` with ``c <= |F|`` tiny, instead of
        re-reducing the APSP matrix over every component member.
        """
        graph = self._oracle.graph
        u, v = shortcut
        return self.extended_by_index(
            graph.node_index(u), graph.node_index(v)
        )

    def extended_by_index(
        self, iu: int, iv: int
    ) -> "ShortcutDistanceEngine":
        """Index-space :meth:`extended` (fast path for the σ evaluator)."""
        n = self._oracle.number_of_nodes()
        if iu == iv:
            raise GraphError(f"shortcut self-loop on index {iu}")
        if not (0 <= iu < n and 0 <= iv < n):
            raise GraphError(f"shortcut index pair ({iu}, {iv}) "
                             f"out of range for n={n}")
        child = ShortcutDistanceEngine.__new__(ShortcutDistanceEngine)
        child._oracle = self._oracle
        child._shortcuts = self._shortcuts + [(iu, iv)]

        comp_u = comp_v = -1
        for j, members in enumerate(self._components):
            if iu in members:
                comp_u = j
            if iv in members:
                comp_v = j
        if comp_u >= 0 and comp_u == comp_v:
            # Redundant edge inside one supernode: tables are unchanged
            # (engines are immutable, so sharing them is safe).
            child._components = self._components
            child._comp_min = self._comp_min
            child._inter = self._inter
            child._closure = self._closure
            return child

        oracle = self._oracle
        rows_to = getattr(oracle, "rows_to", None)
        # A lazy parent stays lazy: the touched inter row/column comes
        # from label-sliced set-to-set queries, and no comp_min rows are
        # carried at all. (A parent whose comp_min was materialized by a
        # full-width query keeps the materialized update path.)
        lazy = rows_to is not None and self._comp_min is None
        components = [list(m) for m in self._components]
        comp_min_rows = None if lazy else list(self._comp_min)
        if comp_u < 0 and comp_v < 0:
            # Fresh two-node supernode, appended last.
            touched = len(components)
            components.append(sorted((iu, iv)))
            if not lazy:
                comp_min_rows.append(
                    np.minimum(
                        oracle.row_by_index(iu), oracle.row_by_index(iv)
                    )
                )
            kept = list(range(len(self._components)))
        elif comp_u >= 0 and comp_v >= 0:
            # Merge two existing supernodes (keep the lower slot).
            lo, hi = sorted((comp_u, comp_v))
            touched = lo
            components[lo] = sorted(components[lo] + components[hi])
            if not lazy:
                comp_min_rows[lo] = np.minimum(
                    comp_min_rows[lo], comp_min_rows[hi]
                )
                del comp_min_rows[hi]
            del components[hi]
            kept = [j for j in range(len(self._components)) if j != hi]
        else:
            # Absorb the loose endpoint into the existing supernode.
            touched = comp_u if comp_u >= 0 else comp_v
            loose = iv if comp_u >= 0 else iu
            components[touched] = sorted(components[touched] + [loose])
            if not lazy:
                comp_min_rows[touched] = np.minimum(
                    comp_min_rows[touched], oracle.row_by_index(loose)
                )
            kept = list(range(len(self._components)))

        child._components = [sorted(m) for m in components]
        child._comp_min = None if lazy else np.vstack(comp_min_rows)
        # Inter-supernode base distances change only in the touched row and
        # column (base distances between untouched member sets are fixed).
        c = len(components)
        inter = np.empty((c, c))
        kept_rows = [j for j in range(c) if j != touched]
        if kept_rows:
            sub = np.ix_(
                [kept[j] for j in kept_rows], [kept[j] for j in kept_rows]
            )
            inter[np.ix_(kept_rows, kept_rows)] = self._inter[sub]
        touched_members = child._components[touched]
        if lazy:
            touched_row = np.array(
                [
                    float(rows_to(touched_members, members).min())
                    for members in child._components
                ]
            )
        else:
            touched_row = np.array(
                [
                    child._comp_min[touched, members].min()
                    for members in child._components
                ]
            )
        inter[touched, :] = touched_row
        inter[:, touched] = touched_row  # base distances are symmetric
        child._inter = inter
        child._closure = _floyd_warshall_closure(inter)
        return child

    # ------------------------------------------------------------ inspection

    @property
    def oracle(self) -> DistanceOracle:
        return self._oracle

    @property
    def shortcut_indices(self) -> List[Tuple[int, int]]:
        """The shortcut edges as dense index pairs, in input order."""
        return list(self._shortcuts)

    @property
    def component_indices(self) -> List[List[int]]:
        """Supernode membership (dense indices), one list per component."""
        return [list(c) for c in self._components]

    # --------------------------------------------------------------- queries

    def distances_from_index(self, src: int) -> np.ndarray:
        """Augmented distances from dense index *src* to every node."""
        base = self._oracle.row_by_index(src)
        if not self._components:
            return base.copy()
        comp_min = self._comp_min_table()
        entry = comp_min[:, src]  # cost to reach each supernode
        reach = (entry[:, None] + self._closure).min(axis=0)
        via = (reach[:, None] + comp_min).min(axis=0)
        return np.minimum(base, via)

    def distances_from(self, node: Node) -> np.ndarray:
        """Augmented distances from *node* to every node (dense order)."""
        return self.distances_from_index(
            self._oracle.graph.node_index(node)
        )

    def distances_from_indices(self, sources: Sequence[int]) -> np.ndarray:
        """Augmented distances from each of *sources* to every node, as an
        ``(len(sources), n)`` array.

        Equivalent to stacking :meth:`distances_from_index` per source but
        performed in a handful of batched numpy operations — the fast path
        for evaluating σ over many social pairs at once.
        """
        src = np.asarray(sources, dtype=np.intp)
        out = self._oracle.rows(src)  # fresh (s, n) array; used as scratch
        if not self._components:
            return out
        comp_min = self._comp_min_table()
        entry = comp_min[:, src]  # (c, s): cost to reach supernodes
        # reach[c, i]: source i to supernode c, chaining through others.
        reach = (entry[:, None, :] + self._closure[:, :, None]).min(axis=0)
        # Fold the supernode routes in one component at a time: the naive
        # broadcast materializes a (c, s, n) temporary that grows with every
        # placed shortcut, while this loop keeps the peak at two (s, n)
        # arrays no matter how large F gets.
        via = np.empty_like(out)
        for a in range(len(self._components)):
            np.add(reach[a, :, None], comp_min[a, None, :], out=via)
            np.minimum(out, via, out=out)
        return out

    def distances_from_indices_to(
        self, sources: Sequence[int], columns: Sequence[int]
    ) -> np.ndarray:
        """Augmented distances from each of *sources* to each of *columns*,
        as a ``(len(sources), len(columns))`` array.

        Equals ``distances_from_indices(sources)[:, columns]`` but never
        materializes the full-width block — peak memory and work scale
        with the requested column set (the restricted-candidate hot path).
        """
        src = np.asarray(sources, dtype=np.intp)
        cols = np.asarray(columns, dtype=np.intp)
        rows_to = getattr(self._oracle, "rows_to", None)
        if rows_to is not None:
            # Label-sliced base block: work scales with the requested
            # labels, never with n.
            out = rows_to(src, cols)
        else:
            out = np.empty((src.size, cols.size))
            for i, s in enumerate(src):
                out[i] = self._oracle.row_by_index(int(s))[cols]
        if not self._components:
            return out
        entry = self._comp_block(src)  # (c, s): cost to reach supernodes
        reach = (entry[:, None, :] + self._closure[:, :, None]).min(axis=0)
        comp_cols = self._comp_block(cols)  # (c, len(cols))
        via = np.empty_like(out)
        for a in range(len(self._components)):
            np.add(reach[a, :, None], comp_cols[a, None, :], out=via)
            np.minimum(out, via, out=out)
        return out

    def distance_by_index(self, iu: int, iv: int) -> float:
        """Augmented distance between dense indices *iu* and *iv*."""
        best = float(self._oracle.distance_by_index(iu, iv))
        if self._components:
            block = self._comp_block(np.array([iu, iv], dtype=np.intp))
            reach = (block[:, :1] + self._closure).min(axis=0)
            best = min(best, float((reach + block[:, 1]).min()))
        return best

    def distance(self, u: Node, v: Node) -> float:
        """Augmented distance between nodes *u* and *v*."""
        graph = self._oracle.graph
        return self.distance_by_index(
            graph.node_index(u), graph.node_index(v)
        )

    def satisfied_pairs(
        self,
        pairs: Sequence[Tuple[Node, Node]],
        threshold: float,
    ) -> List[bool]:
        """For each (u, w) pair, whether its augmented distance is within
        *threshold* (the paper's distance requirement ``d_t``).

        A small tolerance absorbs floating-point noise so pairs sitting
        exactly on the threshold count as satisfied.
        """
        graph = self._oracle.graph
        tol = 1e-12 + 1e-9 * max(threshold, 0.0)
        # Group by source node so pairs sharing an endpoint reuse one query.
        by_source: Dict[int, np.ndarray] = {}
        out: List[bool] = []
        for u, w in pairs:
            iu, iw = graph.node_index(u), graph.node_index(w)
            if iu not in by_source:
                by_source[iu] = self.distances_from_index(iu)
            out.append(bool(by_source[iu][iw] <= threshold + tol))
        return out

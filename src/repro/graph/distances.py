"""Cached all-pairs distance oracle for a fixed base graph.

Every MSC algorithm repeatedly asks for base-graph distances between social
pair endpoints and candidate shortcut endpoints. :class:`DistanceOracle`
computes the APSP matrix once and serves O(1) queries plus numpy row views
for the vectorized evaluators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Node, WirelessGraph
from repro.graph.paths import all_pairs_distance_matrix


class DistanceOracle:
    """All-pairs shortest-path distances of a base graph, computed lazily.

    The matrix is indexed by the graph's dense node indices; node-keyed
    convenience accessors are provided. The oracle assumes the graph is not
    mutated after the first query — callers that modify the graph must build
    a fresh oracle.
    """

    def __init__(
        self, graph: WirelessGraph, use_scipy: Optional[bool] = None
    ) -> None:
        self._graph = graph
        self._use_scipy = use_scipy
        self._matrix: Optional[np.ndarray] = None

    @property
    def graph(self) -> WirelessGraph:
        return self._graph

    @property
    def matrix(self) -> np.ndarray:
        """The full ``n x n`` distance matrix (computed on first access).

        The returned array is the oracle's internal buffer and is marked
        read-only — writing through it raises, enforcing the documented
        contract (callers needing a mutable copy must ``.copy()``).
        """
        if self._matrix is None:
            self._matrix = all_pairs_distance_matrix(
                self._graph, use_scipy=self._use_scipy
            )
            self._matrix.setflags(write=False)
        return self._matrix

    def distance(self, u: Node, v: Node) -> float:
        """Base-graph distance between nodes *u* and *v*."""
        return float(
            self.matrix[self._graph.node_index(u), self._graph.node_index(v)]
        )

    def distance_by_index(self, iu: int, iv: int) -> float:
        """Base-graph distance between dense indices *iu* and *iv*."""
        return float(self.matrix[iu, iv])

    def row(self, node: Node) -> np.ndarray:
        """Distances from *node* to every node, as a read-only numpy row."""
        return self.matrix[self._graph.node_index(node), :]

    def row_by_index(self, index: int) -> np.ndarray:
        """Distances from dense *index* to every node."""
        return self.matrix[index, :]

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

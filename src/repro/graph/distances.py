"""Cached all-pairs distance oracle for a fixed base graph.

Every MSC algorithm repeatedly asks for base-graph distances between social
pair endpoints and candidate shortcut endpoints. :class:`DistanceOracle`
computes the APSP matrix once and serves O(1) queries plus numpy row views
for the vectorized evaluators.

Oracle protocol
---------------

Distance consumers (the shortcut engine, the σ evaluator, the solvers) are
written against the *row* accessors — ``row_by_index``, ``rows``,
``distance_by_index`` — never against a full square matrix. That is what
lets :class:`~repro.graph.sparse_oracle.SparseRowOracle` slot in behind the
same call sites with an ``r × n`` row block (``r ≪ n``) instead of the
O(n²) matrix. ``matrix`` remains available on both tiers for legacy
consumers, but on the sparse tier it materializes the full matrix and
should be avoided on hot paths.

Every full build of distance rows bumps the class-level ``build_count``
(process-local), which the shared-memory fan-out tests use to assert that
an APSP/row block is computed exactly once per distinct base graph.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.graph import Node, WirelessGraph
from repro.graph.paths import all_pairs_distance_matrix


class DistanceOracle:
    """All-pairs shortest-path distances of a base graph, computed lazily.

    The matrix is indexed by the graph's dense node indices; node-keyed
    convenience accessors are provided. The oracle assumes the graph is not
    mutated after the first query — callers that modify the graph must build
    a fresh oracle.
    """

    #: Process-local count of full APSP builds (adopted matrices — shared
    #: memory attaches, memo hits — do not count).
    build_count: int = 0

    def __init__(
        self, graph: WirelessGraph, use_scipy: Optional[bool] = None
    ) -> None:
        self._graph = graph
        self._use_scipy = use_scipy
        self._matrix: Optional[np.ndarray] = None

    @classmethod
    def with_matrix(
        cls, graph: WirelessGraph, matrix: np.ndarray
    ) -> "DistanceOracle":
        """Oracle adopting an already-computed APSP *matrix* for *graph*.

        The matrix is used as-is (marked read-only, never copied), which is
        how shared-memory workers and the fault-injection memo reuse one
        APSP computation across processes/cells without rebuilding it. The
        caller is responsible for the matrix actually belonging to *graph*
        (match signatures via :func:`~repro.graph.graph.graph_signature`).
        """
        n = graph.number_of_nodes()
        if matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({n}, {n})"
            )
        oracle = cls(graph)
        if matrix.flags.writeable:
            matrix = matrix.view()
            matrix.setflags(write=False)
        oracle._matrix = matrix
        return oracle

    @property
    def graph(self) -> WirelessGraph:
        return self._graph

    @property
    def matrix(self) -> np.ndarray:
        """The full ``n x n`` distance matrix (computed on first access).

        The returned array is the oracle's internal buffer and is marked
        read-only — writing through it raises, enforcing the documented
        contract (callers needing a mutable copy must ``.copy()``).
        """
        if self._matrix is None:
            self._matrix = all_pairs_distance_matrix(
                self._graph, use_scipy=self._use_scipy
            )
            self._matrix.setflags(write=False)
            DistanceOracle.build_count += 1
        return self._matrix

    def distance(self, u: Node, v: Node) -> float:
        """Base-graph distance between nodes *u* and *v*."""
        return float(
            self.matrix[self._graph.node_index(u), self._graph.node_index(v)]
        )

    def distance_by_index(self, iu: int, iv: int) -> float:
        """Base-graph distance between dense indices *iu* and *iv*."""
        return float(self.matrix[iu, iv])

    def row(self, node: Node) -> np.ndarray:
        """Distances from *node* to every node, as a read-only numpy row."""
        return self.matrix[self._graph.node_index(node), :]

    def row_by_index(self, index: int) -> np.ndarray:
        """Distances from dense *index* to every node."""
        return self.matrix[index, :]

    def rows(self, indices: Sequence[int]) -> np.ndarray:
        """Distances from each of *indices* to every node, as a
        ``(len(indices), n)`` block (a fresh array; safe to keep)."""
        return self.matrix[np.asarray(indices, dtype=np.intp), :]

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

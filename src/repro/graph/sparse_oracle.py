"""Pair-centric sparse distance oracle: an ``r × n`` row block, ``r ≪ n``.

The MSC objective only ever queries base-graph distances *from* a small set
of relevant sources — the social-pair endpoints and the nodes within the
distance requirement ``d_t`` of one (the paper's §IV pruning observation:
a shortcut endpoint farther than ``d_t`` from every pair endpoint can never
help a pair, and every reachable-through-shortcuts endpoint is within
``d_t`` of an already-placed endpoint, which is itself inside the ball).
:class:`SparseRowOracle` therefore runs Dijkstra only from those sources
and stores the resulting row block, turning the oracle's footprint from
O(n²) into O(r·n) and its build time from n single-source runs into r.

Rows outside the block are still exact: a straggler query (rare — e.g. a
later greedy round placing a shortcut endpoint discovered through an
earlier shortcut's ball) fills that row lazily with one more Dijkstra run
and caches it. The oracle therefore *never approximates*; it only chooses
which exact rows to precompute.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Node, WirelessGraph
from repro.graph.paths import (
    ball_indices,
    source_rows_matrix,
)


def relevant_source_indices(
    graph: WirelessGraph,
    seeds: Sequence[int],
    radius: Optional[float],
) -> np.ndarray:
    """Sorted dense indices the sparse oracle should precompute rows for:
    the *seeds* (pair endpoints) plus every node within *radius* (``d_t``)
    of one. ``radius=None`` keeps just the seeds."""
    seeds = sorted({int(s) for s in seeds})
    if radius is None:
        return np.array(seeds, dtype=np.intp)
    return ball_indices(graph, seeds, radius)


class SparseRowOracle:
    """Source-restricted distance oracle over a fixed base graph.

    Serves the same row/distance protocol as
    :class:`~repro.graph.distances.DistanceOracle` from an ``(r, n)`` row
    block holding exact single-source distances for the *relevant* sources
    (*seeds* plus their ``radius``-ball). Any other row is computed lazily
    on first access (one Dijkstra run, cached), so all queries are exact.

    Args:
        graph: the base graph (must not be mutated afterwards).
        seeds: dense indices distances are needed from (pair endpoints).
        radius: ball radius (the instance's ``d_t``); relevant sources are
            the seeds plus all nodes within *radius* of one. ``None``
            precomputes seed rows only.
        use_scipy: force the scipy/pure-Python backend (``None`` = auto).
            The same backend serves lazy fills, so every row matches what a
            dense oracle with the same setting would hold.
        sources: precomputed relevant-source indices (skips the ball
            expansion; used by the auto-selection policy, which has already
            measured the ball).
    """

    #: Process-local count of row-block builds (adopted blocks do not
    #: count) — see :class:`~repro.graph.distances.DistanceOracle`.
    build_count: int = 0

    def __init__(
        self,
        graph: WirelessGraph,
        seeds: Sequence[int] = (),
        *,
        radius: Optional[float] = None,
        use_scipy: Optional[bool] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> None:
        self._graph = graph
        self._use_scipy = use_scipy
        n = graph.number_of_nodes()
        if sources is None:
            sources = relevant_source_indices(graph, seeds, radius)
        self._sources = np.asarray(sources, dtype=np.intp)
        if self._sources.size and not (
            0 <= int(self._sources.min())
            and int(self._sources.max()) < n
        ):
            raise GraphError(
                f"source indices out of range for n={n}"
            )
        self._slot_of: Dict[int, int] = {
            int(s): i for i, s in enumerate(self._sources)
        }
        self._block: Optional[np.ndarray] = None
        self._extra: Dict[int, np.ndarray] = {}
        self._lazy_fills = 0

    @classmethod
    def with_block(
        cls,
        graph: WirelessGraph,
        sources: Sequence[int],
        block: np.ndarray,
    ) -> "SparseRowOracle":
        """Oracle adopting an already-computed row *block* for *sources*
        (shared-memory attach path; the block is used as-is, read-only)."""
        oracle = cls(graph, sources=sources)
        n = graph.number_of_nodes()
        if block.shape != (oracle._sources.size, n):
            raise ValueError(
                f"block shape {block.shape} != "
                f"({oracle._sources.size}, {n})"
            )
        if block.flags.writeable:
            block = block.view()
            block.setflags(write=False)
        oracle._block = block
        return oracle

    # ------------------------------------------------------------ the block

    @property
    def graph(self) -> WirelessGraph:
        return self._graph

    @property
    def source_indices(self) -> np.ndarray:
        """The precomputed sources, sorted (read-only view)."""
        view = self._sources.view()
        view.setflags(write=False)
        return view

    @property
    def block(self) -> np.ndarray:
        """The ``(r, n)`` row block (computed on first access, read-only)."""
        if self._block is None:
            self._block = source_rows_matrix(
                self._graph,
                [int(s) for s in self._sources],
                use_scipy=self._use_scipy,
            )
            self._block.setflags(write=False)
            SparseRowOracle.build_count += 1
        return self._block

    @property
    def lazy_fills(self) -> int:
        """Rows served from outside the precomputed block so far."""
        return self._lazy_fills

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    def block_nbytes(self) -> int:
        """Memory footprint of the row block in bytes (without lazy rows)."""
        return self._sources.size * self._graph.number_of_nodes() * 8

    # -------------------------------------------------------------- queries

    def row_by_index(self, index: int) -> np.ndarray:
        """Distances from dense *index* to every node (read-only).

        Block rows are served as views; stragglers are computed once and
        cached.
        """
        slot = self._slot_of.get(int(index))
        if slot is not None:
            return self.block[slot, :]
        cached = self._extra.get(int(index))
        if cached is None:
            cached = source_rows_matrix(
                self._graph, [int(index)], use_scipy=self._use_scipy
            )[0]
            cached.setflags(write=False)
            self._extra[int(index)] = cached
            self._lazy_fills += 1
        return cached

    def row(self, node: Node) -> np.ndarray:
        return self.row_by_index(self._graph.node_index(node))

    def rows(self, indices: Sequence[int]) -> np.ndarray:
        """Distances from each of *indices* to every node, as a
        ``(len(indices), n)`` block (a fresh array; safe to keep)."""
        idx = np.asarray(indices, dtype=np.intp)
        slots = [self._slot_of.get(int(i)) for i in idx]
        if all(s is not None for s in slots):
            return self.block[np.asarray(slots, dtype=np.intp), :]
        return np.vstack([self.row_by_index(int(i)) for i in idx])

    def distance_by_index(self, iu: int, iv: int) -> float:
        """Base-graph distance between dense indices *iu* and *iv* (either
        endpoint's row may serve the query — distances are symmetric)."""
        slot = self._slot_of.get(int(iu))
        if slot is not None:
            return float(self.block[slot, iv])
        slot = self._slot_of.get(int(iv))
        if slot is not None:
            return float(self.block[slot, iu])
        return float(self.row_by_index(iu)[iv])

    def distance(self, u: Node, v: Node) -> float:
        return self.distance_by_index(
            self._graph.node_index(u), self._graph.node_index(v)
        )

    @property
    def matrix(self) -> np.ndarray:
        """Full ``n x n`` matrix for legacy consumers.

        Materializing it forfeits the sparse tier's memory savings (every
        missing row is computed), so hot paths must use the row accessors;
        this exists so code written against the dense oracle still returns
        exact results when handed a sparse one.
        """
        n = self._graph.number_of_nodes()
        missing = [
            i
            for i in range(n)
            if i not in self._slot_of and i not in self._extra
        ]
        if missing:
            filled = source_rows_matrix(
                self._graph, missing, use_scipy=self._use_scipy
            )
            for index, row in zip(missing, filled):
                row.setflags(write=False)
                self._extra[index] = row
            self._lazy_fills += len(missing)
        full = np.vstack([self.row_by_index(i) for i in range(n)])
        full.setflags(write=False)
        return full

    def __repr__(self) -> str:
        return (
            f"SparseRowOracle(n={self._graph.number_of_nodes()}, "
            f"r={self._sources.size}, lazy={self._lazy_fills})"
        )

"""Shortest-path algorithms over :class:`~repro.graph.graph.WirelessGraph`.

A pure-Python binary-heap Dijkstra is the reference implementation; the
all-pairs matrix additionally has a scipy fast path (``scipy.sparse.csgraph``)
that is used automatically when scipy is importable. Both produce identical
results (covered by tests).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Node, WirelessGraph

INFINITY = math.inf

#: scipy's csgraph treats explicit zeros as "no edge"; exact-zero edge
#: lengths are bumped to this negligible value on the scipy paths so both
#: backends agree (covered by regression tests).
_ZERO_LENGTH_EPSILON = 1e-300


def dijkstra(
    graph: WirelessGraph,
    source: Node,
    cutoff: Optional[float] = None,
) -> Dict[Node, float]:
    """Single-source shortest path lengths from *source*.

    Returns a dict mapping every reachable node (within *cutoff*, if given)
    to its distance. Unreachable nodes are absent from the result.
    """
    src = graph.node_index(source)
    dist = _dijkstra_indices(graph, src, cutoff)
    return {
        graph.index_node(i): d
        for i, d in enumerate(dist)
        if not math.isinf(d)
    }


def _dijkstra_indices(
    graph: WirelessGraph,
    src: int,
    cutoff: Optional[float] = None,
) -> List[float]:
    """Dijkstra over dense indices; returns a distance list with ``inf`` for
    unreachable nodes."""
    n = graph.number_of_nodes()
    dist = [INFINITY] * n
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if cutoff is not None and d > cutoff:
            # The heap is popped in non-decreasing order, so every remaining
            # entry is at least this far; stop and post-filter below.
            break
        for v, length in graph.neighbors_by_index(u).items():
            nd = d + length
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    if cutoff is not None:
        dist = [d if d <= cutoff else INFINITY for d in dist]
    return dist


def shortest_path_length(graph: WirelessGraph, u: Node, v: Node) -> float:
    """Shortest-path length between *u* and *v* (``inf`` if disconnected)."""
    src = graph.node_index(u)
    dst = graph.node_index(v)
    return _dijkstra_indices(graph, src)[dst]


def shortest_path(
    graph: WirelessGraph, u: Node, v: Node
) -> Tuple[float, List[Node]]:
    """Shortest path between *u* and *v* as ``(length, node_list)``.

    Raises :class:`GraphError` if *v* is unreachable from *u*.
    """
    src, dst = graph.node_index(u), graph.node_index(v)
    n = graph.number_of_nodes()
    dist = [INFINITY] * n
    parent: List[Optional[int]] = [None] * n
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        d, x = heapq.heappop(heap)
        if d > dist[x]:
            continue
        if x == dst:
            break
        for y, length in graph.neighbors_by_index(x).items():
            nd = d + length
            if nd < dist[y]:
                dist[y] = nd
                parent[y] = x
                heapq.heappush(heap, (nd, y))
    if math.isinf(dist[dst]):
        raise GraphError(f"{v!r} is unreachable from {u!r}")
    path_indices = [dst]
    while path_indices[-1] != src:
        prev = parent[path_indices[-1]]
        assert prev is not None
        path_indices.append(prev)
    path_indices.reverse()
    return dist[dst], [graph.index_node(i) for i in path_indices]


def all_pairs_distance_matrix(
    graph: WirelessGraph, use_scipy: Optional[bool] = None
) -> np.ndarray:
    """Dense ``n x n`` all-pairs shortest-path matrix (``inf`` when
    disconnected), indexed by the graph's dense node indices.

    *use_scipy* forces the scipy (`True`) or pure-Python (`False`) backend;
    ``None`` auto-selects scipy when available.
    """
    if use_scipy is None:
        use_scipy = _scipy_available()
    if use_scipy:
        return _apsp_scipy(graph)
    return _apsp_python(graph)


def _scipy_available() -> bool:
    try:
        import scipy.sparse.csgraph  # noqa: F401
    except ImportError:
        return False
    return True


def graph_csr(
    graph: WirelessGraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The graph's adjacency as CSR arrays ``(indptr, indices, data)``.

    Deterministic given the graph (neighbors are emitted in insertion
    order). Exact-zero edge lengths are preserved as-is; the scipy callers
    bump them themselves.
    """
    n = graph.number_of_nodes()
    indptr = np.zeros(n + 1, dtype=np.int64)
    cols: List[int] = []
    vals: List[float] = []
    for u in range(n):
        nbrs = graph.neighbors_by_index(u)
        indptr[u + 1] = indptr[u] + len(nbrs)
        cols.extend(nbrs.keys())
        vals.extend(nbrs.values())
    return (
        indptr,
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )


def _scipy_graph(graph: WirelessGraph):
    from scipy.sparse import csr_matrix

    n = graph.number_of_nodes()
    indptr, indices, data = graph_csr(graph)
    data = np.where(data > 0, data, _ZERO_LENGTH_EPSILON)
    return csr_matrix((data, indices, indptr), shape=(n, n))


def _apsp_python(graph: WirelessGraph) -> np.ndarray:
    n = graph.number_of_nodes()
    matrix = np.full((n, n), INFINITY)
    for src in range(n):
        matrix[src, :] = _dijkstra_indices(graph, src)
    return matrix


def _apsp_scipy(graph: WirelessGraph) -> np.ndarray:
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    return sp_dijkstra(_scipy_graph(graph), directed=False)


def source_rows_matrix(
    graph: WirelessGraph,
    sources: Sequence[int],
    use_scipy: Optional[bool] = None,
) -> np.ndarray:
    """Shortest-path distances from each of *sources* to every node, as a
    ``(len(sources), n)`` row block (``inf`` when disconnected).

    The source-restricted analogue of :func:`all_pairs_distance_matrix`:
    cost scales with the number of sources, not with ``n`` squared, which
    is what the sparse distance-oracle tier is built on. Both backends
    produce identical rows to their all-pairs counterparts.
    """
    sources = list(sources)
    if use_scipy is None:
        use_scipy = _scipy_available()
    if not sources:
        return np.empty((0, graph.number_of_nodes()))
    if use_scipy:
        from scipy.sparse.csgraph import dijkstra as sp_dijkstra

        block = sp_dijkstra(
            _scipy_graph(graph), directed=False, indices=sources
        )
        return np.atleast_2d(block)
    return np.vstack(
        [_dijkstra_indices(graph, src) for src in sources]
    )


def ball_indices(
    graph: WirelessGraph, sources: Sequence[int], radius: float
) -> np.ndarray:
    """Sorted dense indices of every node within *radius* of a source.

    One *multi-source* cutoff Dijkstra (every source seeded at distance
    zero) computes ``min_s d(s, v)`` directly, so the union ball is
    explored once — not once per source — and exploration stays bounded
    by the ball size rather than the graph size. Membership
    (``min_s d(s, v) <= radius``) is identical to the union of per-source
    cutoff balls. Sources themselves are always included (distance zero).
    """
    dist: Dict[int, float] = {int(s): 0.0 for s in sources}
    heap: List[Tuple[float, int]] = [(0.0, s) for s in dist]
    heapq.heapify(heap)
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INFINITY):
            continue
        if d > radius:
            break
        for v, length in graph.neighbors_by_index(u).items():
            nd = d + length
            if nd <= radius and nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return np.array(
        sorted(i for i, d in dist.items() if d <= radius), dtype=np.intp
    )

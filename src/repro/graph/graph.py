"""Undirected wireless-network graph with per-edge failure probabilities.

The paper models a wireless network as an undirected graph where edge
``e_ij`` fails independently with probability ``p_ij``. Defining the edge
*length* ``l_ij = -ln(1 - p_ij)`` makes "most reliable path" equivalent to
"shortest path" (Section III of the paper). :class:`WirelessGraph` stores both
quantities consistently: edges may be added by failure probability (length is
derived) or directly by length (probability is derived).

Nodes may be arbitrary hashables; internally each node gets a dense integer
index so numeric kernels (APSP matrices, numpy evaluators) can use arrays.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import GraphError
from repro.failure.models import failure_to_length, length_to_failure
from repro.util.validation import check_fraction, check_nonnegative

Node = Hashable
Edge = Tuple[Node, Node]


class WirelessGraph:
    """Undirected graph whose edges carry a length and failure probability.

    The two edge attributes are kept in lockstep through the transform
    ``length = -ln(1 - failure_probability)``; exactly one of the two must be
    supplied when adding an edge.
    """

    def __init__(self) -> None:
        self._index_of: Dict[Node, int] = {}
        self._node_of: List[Node] = []
        self._adjacency: List[Dict[int, float]] = []  # index -> {index: length}

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> int:
        """Add *node* if absent; return its dense integer index."""
        idx = self._index_of.get(node)
        if idx is None:
            idx = len(self._node_of)
            self._index_of[node] = idx
            self._node_of.append(node)
            self._adjacency.append({})
        return idx

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in *nodes* (existing nodes are ignored)."""
        for node in nodes:
            self.add_node(node)

    def has_node(self, node: Node) -> bool:
        return node in self._index_of

    def node_index(self, node: Node) -> int:
        """Dense index of *node*; raises :class:`GraphError` if unknown."""
        try:
            return self._index_of[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def index_node(self, index: int) -> Node:
        """Node for dense *index* (inverse of :meth:`node_index`)."""
        try:
            return self._node_of[index]
        except IndexError:
            raise GraphError(f"no node with index {index}") from None

    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion (= index) order."""
        return list(self._node_of)

    def number_of_nodes(self) -> int:
        return len(self._node_of)

    def __len__(self) -> int:
        return len(self._node_of)

    def __contains__(self, node: Node) -> bool:
        return node in self._index_of

    # ------------------------------------------------------------------ edges

    def add_edge(
        self,
        u: Node,
        v: Node,
        *,
        failure_probability: Optional[float] = None,
        length: Optional[float] = None,
    ) -> None:
        """Add an undirected edge, given either its failure probability in
        ``[0, 1)`` or its length ``>= 0`` (but not both).

        Re-adding an existing edge overwrites its attributes. Self-loops are
        rejected: they can never shorten a path.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if (failure_probability is None) == (length is None):
            raise GraphError(
                "exactly one of failure_probability / length must be given"
            )
        if length is None:
            p = check_fraction(failure_probability, "failure_probability")
            length = failure_to_length(p)
        else:
            length = check_nonnegative(length, "length")
        iu, iv = self.add_node(u), self.add_node(v)
        self._adjacency[iu][iv] = length
        self._adjacency[iv][iu] = length

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge between *u* and *v*; error if it does not exist."""
        iu, iv = self.node_index(u), self.node_index(v)
        if iv not in self._adjacency[iu]:
            raise GraphError(f"no edge between {u!r} and {v!r}")
        del self._adjacency[iu][iv]
        del self._adjacency[iv][iu]

    def has_edge(self, u: Node, v: Node) -> bool:
        if u not in self._index_of or v not in self._index_of:
            return False
        return self._index_of[v] in self._adjacency[self._index_of[u]]

    def length(self, u: Node, v: Node) -> float:
        """Length of edge (u, v); raises :class:`GraphError` if absent."""
        iu, iv = self.node_index(u), self.node_index(v)
        try:
            return self._adjacency[iu][iv]
        except KeyError:
            raise GraphError(f"no edge between {u!r} and {v!r}") from None

    def failure_probability(self, u: Node, v: Node) -> float:
        """Failure probability of edge (u, v), derived from its length."""
        return length_to_failure(self.length(u, v))

    @property
    def edges(self) -> List[Tuple[Node, Node, float]]:
        """All edges as ``(u, v, length)`` with ``index(u) < index(v)``."""
        out = []
        for iu, nbrs in enumerate(self._adjacency):
            for iv, length in nbrs.items():
                if iu < iv:
                    out.append((self._node_of[iu], self._node_of[iv], length))
        return out

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency) // 2

    def neighbors(self, node: Node) -> Iterator[Tuple[Node, float]]:
        """Yield ``(neighbor, edge_length)`` for every neighbor of *node*."""
        for iv, length in self._adjacency[self.node_index(node)].items():
            yield self._node_of[iv], length

    def degree(self, node: Node) -> int:
        return len(self._adjacency[self.node_index(node)])

    # ------------------------------------------------------------ index views

    def neighbors_by_index(self, index: int) -> Dict[int, float]:
        """Adjacency dict (index -> length) for a dense node index.

        The returned dict is the live internal structure; callers must not
        mutate it.
        """
        return self._adjacency[index]

    # ------------------------------------------------------------- conversion

    def copy(self) -> "WirelessGraph":
        """Deep-enough copy: structure is duplicated, node objects shared."""
        clone = WirelessGraph()
        clone._index_of = dict(self._index_of)
        clone._node_of = list(self._node_of)
        clone._adjacency = [dict(nbrs) for nbrs in self._adjacency]
        return clone

    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``length`` and
        ``failure_probability`` edge attributes (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._node_of)
        for u, v, length in self.edges:
            g.add_edge(
                u,
                v,
                length=length,
                failure_probability=length_to_failure(length),
            )
        return g

    @classmethod
    def from_adjacency_arrays(
        cls,
        indptr: Sequence[int],
        indices: Sequence[int],
        data: Sequence[float],
        nodes: Optional[Sequence[Node]] = None,
    ) -> "WirelessGraph":
        """Rebuild a graph from CSR adjacency arrays (see
        :func:`repro.graph.paths.graph_csr`).

        *nodes* supplies the node labels in dense-index order; by default
        the labels are the indices themselves. The CSR arrays must describe
        a symmetric adjacency (both directions of every undirected edge),
        which is what :func:`~repro.graph.paths.graph_csr` emits — the
        round trip preserves node order, edge lengths, and therefore the
        graph signature.
        """
        n = len(indptr) - 1
        if nodes is None:
            nodes = list(range(n))
        if len(nodes) != n:
            raise GraphError(
                f"{len(nodes)} node labels for {n} CSR rows"
            )
        graph = cls()
        graph.add_nodes(nodes)
        for iu in range(n):
            for slot in range(int(indptr[iu]), int(indptr[iu + 1])):
                iv = int(indices[slot])
                if iu < iv:
                    graph.add_edge(
                        nodes[iu], nodes[iv], length=float(data[slot])
                    )
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, float]],
        *,
        by: str = "length",
        nodes: Iterable[Node] = (),
    ) -> "WirelessGraph":
        """Build a graph from ``(u, v, value)`` triples.

        *by* selects how the third element is interpreted: ``"length"``
        (default) or ``"failure_probability"``. Extra isolated *nodes* may be
        supplied.
        """
        if by not in ("length", "failure_probability"):
            raise GraphError(f"unknown edge attribute {by!r}")
        graph = cls()
        graph.add_nodes(nodes)
        for u, v, value in edges:
            graph.add_edge(u, v, **{by: value})
        return graph

    def __repr__(self) -> str:
        return (
            f"WirelessGraph(n={self.number_of_nodes()}, "
            f"e={self.number_of_edges()})"
        )


def graph_signature(graph: WirelessGraph) -> str:
    """Content digest of a graph's structure (hex SHA-256 prefix).

    Two graphs share a signature iff they have the same node count and the
    same indexed edge set with identical lengths — node *labels* are not
    hashed, so an identically-shaped copy (e.g. a severity-0 perturbation)
    matches its original. Used as the memo/shared-memory key for distance
    oracles: equal signature means equal distance matrix.
    """
    hasher = hashlib.sha256()
    hasher.update(graph.number_of_nodes().to_bytes(8, "big"))
    for iu, nbrs in enumerate(graph._adjacency):
        for iv in sorted(nbrs):
            if iu < iv:
                hasher.update(iu.to_bytes(8, "big"))
                hasher.update(iv.to_bytes(8, "big"))
                hasher.update(repr(nbrs[iv]).encode("ascii"))
    return hasher.hexdigest()[:32]

"""Graph substrate: weighted undirected graphs, shortest paths, and
shortcut-aware distance computation."""

from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.paths import (
    all_pairs_distance_matrix,
    dijkstra,
    shortest_path,
    shortest_path_length,
)
from repro.graph.shortcuts import ShortcutDistanceEngine

__all__ = [
    "WirelessGraph",
    "DistanceOracle",
    "ShortcutDistanceEngine",
    "dijkstra",
    "shortest_path",
    "shortest_path_length",
    "all_pairs_distance_matrix",
]

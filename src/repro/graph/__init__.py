"""Graph substrate: weighted undirected graphs, shortest paths, and
shortcut-aware distance computation."""

from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph, graph_signature
from repro.graph.paths import (
    all_pairs_distance_matrix,
    dijkstra,
    shortest_path,
    shortest_path_length,
    source_rows_matrix,
)
from repro.graph.shortcuts import ShortcutDistanceEngine
from repro.graph.sparse_oracle import SparseRowOracle

__all__ = [
    "WirelessGraph",
    "DistanceOracle",
    "SparseRowOracle",
    "ShortcutDistanceEngine",
    "dijkstra",
    "shortest_path",
    "shortest_path_length",
    "all_pairs_distance_matrix",
    "source_rows_matrix",
    "graph_signature",
]

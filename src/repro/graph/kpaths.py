"""Yen's algorithm: k shortest loopless paths.

The paper's introduction motivates MSC against multipath routing ("multipath
routing [5] or even flooding could be used to improve the data forwarding
performance; [but] each path may still experience a high failure rate").
The delivery simulator (``repro.sim``) quantifies that argument, and needs
the k most reliable paths per pair — which, in length space, are exactly the
k shortest loopless paths.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Node, WirelessGraph
from repro.graph.paths import shortest_path
from repro.util.validation import check_positive_int

Path = List[Node]


def _path_length(graph: WirelessGraph, path: Path) -> float:
    return sum(graph.length(a, b) for a, b in zip(path, path[1:]))


def _shortest_path_avoiding(
    graph: WirelessGraph,
    source: Node,
    target: Node,
    banned_edges: Set[Tuple[Node, Node]],
    banned_nodes: Set[Node],
) -> Optional[Tuple[float, Path]]:
    """Dijkstra from *source* to *target* skipping banned edges/nodes.

    Banned edges are undirected (both orientations are stored by callers).
    Returns None when no path remains.
    """
    import heapq as hq
    import math

    src = graph.node_index(source)
    dst = graph.node_index(target)
    n = graph.number_of_nodes()
    banned_node_idx = {graph.node_index(v) for v in banned_nodes}
    banned_edge_idx = {
        (graph.node_index(a), graph.node_index(b)) for a, b in banned_edges
    }
    if src in banned_node_idx or dst in banned_node_idx:
        return None
    dist = [math.inf] * n
    parent: List[Optional[int]] = [None] * n
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        d, u = hq.heappop(heap)
        if d > dist[u]:
            continue
        if u == dst:
            break
        for v, length in graph.neighbors_by_index(u).items():
            if v in banned_node_idx or (u, v) in banned_edge_idx:
                continue
            nd = d + length
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                hq.heappush(heap, (nd, v))
    if math.isinf(dist[dst]):
        return None
    indices = [dst]
    while indices[-1] != src:
        prev = parent[indices[-1]]
        assert prev is not None
        indices.append(prev)
    indices.reverse()
    return dist[dst], [graph.index_node(i) for i in indices]


def k_shortest_paths(
    graph: WirelessGraph, source: Node, target: Node, k: int
) -> List[Tuple[float, Path]]:
    """The up-to-*k* shortest loopless paths from *source* to *target*,
    sorted by length (Yen's algorithm).

    Returns fewer than *k* entries when the graph does not contain that many
    distinct loopless paths; raises :class:`GraphError` when the target is
    unreachable at all.
    """
    check_positive_int(k, "k")
    if source == target:
        raise GraphError("source and target must differ")
    first_length, first_path = shortest_path(graph, source, target)
    accepted: List[Tuple[float, Path]] = [(first_length, first_path)]
    # Candidate heap with a tiebreaker counter (paths are not comparable).
    candidates: List[Tuple[float, int, Path]] = []
    seen_candidates: Set[Tuple[Node, ...]] = {tuple(first_path)}
    counter = 0

    while len(accepted) < k:
        _prev_length, prev_path = accepted[-1]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root_path = prev_path[: i + 1]
            banned_edges: Set[Tuple[Node, Node]] = set()
            for _length, path in accepted:
                if path[: i + 1] == root_path and len(path) > i + 1:
                    banned_edges.add((path[i], path[i + 1]))
                    banned_edges.add((path[i + 1], path[i]))
            banned_nodes = set(root_path[:-1])
            spur = _shortest_path_avoiding(
                graph, spur_node, target, banned_edges, banned_nodes
            )
            if spur is None:
                continue
            _spur_length, spur_path = spur
            total_path = root_path[:-1] + spur_path
            key = tuple(total_path)
            if key in seen_candidates:
                continue
            seen_candidates.add(key)
            counter += 1
            heapq.heappush(
                candidates,
                (_path_length(graph, total_path), counter, total_path),
            )
        if not candidates:
            break
        length, _tie, path = heapq.heappop(candidates)
        accepted.append((length, path))
    return accepted

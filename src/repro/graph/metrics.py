"""Descriptive statistics for wireless graphs.

Used by experiment reports to document the generated workloads (node/edge
counts, connectivity, diameter) alongside the algorithmic results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set

from repro.graph.graph import Node, WirelessGraph
from repro.graph.paths import all_pairs_distance_matrix


def connected_components(graph: WirelessGraph) -> List[List[Node]]:
    """Connected components as node lists (BFS over the adjacency)."""
    n = graph.number_of_nodes()
    seen: Set[int] = set()
    components: List[List[Node]] = []
    for start in range(n):
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        members = []
        while queue:
            u = queue.pop()
            members.append(graph.index_node(u))
            for v in graph.neighbors_by_index(u):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        components.append(members)
    return components


def is_connected(graph: WirelessGraph) -> bool:
    """True when the graph has exactly one connected component (and at least
    one node)."""
    if graph.number_of_nodes() == 0:
        return False
    return len(connected_components(graph)) == 1


def largest_component(graph: WirelessGraph) -> List[Node]:
    """Nodes of the largest connected component (empty for empty graph)."""
    components = connected_components(graph)
    if not components:
        return []
    return max(components, key=len)


def induced_subgraph(graph: WirelessGraph, nodes: List[Node]) -> WirelessGraph:
    """Subgraph induced by *nodes*, preserving edge lengths."""
    keep = set(nodes)
    sub = WirelessGraph()
    sub.add_nodes(nodes)
    for u, v, length in graph.edges:
        if u in keep and v in keep:
            sub.add_edge(u, v, length=length)
    return sub


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (weighted diameter over finite pairs)."""

    nodes: int
    edges: int
    components: int
    average_degree: float
    weighted_diameter: float

    def __str__(self) -> str:
        return (
            f"n={self.nodes} e={self.edges} components={self.components} "
            f"avg_degree={self.average_degree:.2f} "
            f"diameter={self.weighted_diameter:.4f}"
        )


def graph_stats(graph: WirelessGraph) -> GraphStats:
    """Compute :class:`GraphStats` for *graph* (APSP-based, so intended for
    the laptop-scale instances this library targets)."""
    n = graph.number_of_nodes()
    e = graph.number_of_edges()
    comps = len(connected_components(graph))
    avg_degree = (2 * e / n) if n else 0.0
    diameter = 0.0
    if n:
        matrix = all_pairs_distance_matrix(graph)
        finite = matrix[~(matrix == math.inf)]
        if finite.size:
            diameter = float(finite.max())
    return GraphStats(
        nodes=n,
        edges=e,
        components=comps,
        average_degree=avg_degree,
        weighted_diameter=diameter,
    )

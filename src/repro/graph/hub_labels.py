"""Hub-labeling (pruned landmark) distance oracle: the large-n tier.

The dense tier stores the full APSP matrix (``O(n²)``); the sparse tier an
``r × n`` row block whose width still grows linearly with ``n``. This third
tier stores a *2-hop labeling* instead: every node ``v`` keeps a short
sorted list of ``(hub, d(v, hub))`` entries such that every shortest path
is covered by a common hub, so

``d(u, v) = min over shared hubs h of  d(u, h) + d(h, v)``

Labels are built by Akiba et al.'s pruned landmark labeling: roots are
processed in degree-descending rank order, each running a Dijkstra that
*prunes* any node whose distance is already certified by earlier (higher
rank) hubs. The index is exact and its footprint is the total label size —
on the bounded-degree geometric graphs the experiments use, a few entries
per node, independent of ``n``.

Threshold-cutoff mode
---------------------

The MSC solver stack never needs arbitrary distances: every decision
compares a distance (or a sum of individually-small legs) against
``limit = d_t + tol``. Passing ``cutoff >= limit`` to the builder bounds
every root's search by the cutoff ball, making the build ``O(n · ball)``
— seconds at n=10⁵ in pure Python — while keeping every query **exact for
true distances ≤ cutoff**. Queries beyond the cutoff return an upper
bound (usually ``inf``): each label entry is a real path, so reported
distances are never below the true distance, and any true distance within
the cutoff is covered by the max-rank-hub argument (all certificate
distances involved are themselves ≤ cutoff). Solver comparisons
``d <= limit`` therefore resolve identically to a full oracle, which is
what keeps placements identical across tiers (asserted by the tier tests
and the benchmark harness).

The built index is four flat CSR-like buffers (``label_indptr``,
``label_hubs`` in rank space, ``label_dists``, plus a tiny meta array) —
exactly the shape :mod:`repro.experiments.shm` publishes, so a parallel
fan-out builds the index once and every worker attaches zero-copy views
(:meth:`HubLabelOracle.index_arrays` / :meth:`HubLabelOracle.with_arrays`).
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Node, WirelessGraph

INFINITY = math.inf


def threshold_cutoff(d_threshold: float) -> float:
    """The build cutoff used for an instance with requirement *d_threshold*.

    Strictly above the evaluator's satisfaction limit
    ``d_t + 1e-12 + 1e-9·d_t``, with an extra relative margin so label
    distances a float-rounding step away from the boundary stay covered.
    """
    tol = 1e-12 + 1e-9 * max(d_threshold, 0.0)
    return (d_threshold + tol) * (1.0 + 1e-9) + 1e-12


class HubLabelOracle:
    """Pruned-landmark hub-label oracle serving the distance-row protocol.

    Args:
        graph: the base graph (must not be mutated afterwards).
        cutoff: optional distance bound. ``None`` builds a full exact
            index; a finite cutoff bounds the per-root search to the
            cutoff ball, keeping queries exact for true distances ≤ cutoff
            and upper bounds (typically ``inf``) beyond — sufficient for
            every threshold comparison the solvers make (see module docs).
    """

    #: Process-local count of label-index builds (adopted indexes do not
    #: count) — see :class:`~repro.graph.distances.DistanceOracle`.
    build_count: int = 0

    #: Row-cache capacity: full n-width rows are off the hot path for this
    #: tier (consumers use :meth:`rows_to`), so a handful is plenty.
    _ROW_CACHE_SIZE = 8

    #: Tells the evaluator's candidate-universe builder to derive the
    #: d_t-ball from cutoff Dijkstra instead of full oracle rows — row
    #: queries on this tier cost the whole index, while the ball search
    #: costs only the ball.
    prefers_ball_universe = True

    def __init__(
        self,
        graph: WirelessGraph,
        *,
        cutoff: Optional[float] = None,
    ) -> None:
        if cutoff is not None and cutoff < 0:
            raise GraphError(f"negative cutoff {cutoff}")
        self._graph = graph
        self._cutoff = None if cutoff is None else float(cutoff)
        self._build()
        HubLabelOracle.build_count += 1
        self._finalize()

    @classmethod
    def with_arrays(
        cls,
        graph: WirelessGraph,
        arrays: Dict[str, np.ndarray],
    ) -> "HubLabelOracle":
        """Oracle adopting an already-built index (shared-memory attach
        path; the arrays are used as-is, read-only)."""
        oracle = cls.__new__(cls)
        oracle._graph = graph
        n = graph.number_of_nodes()
        indptr = np.asarray(arrays["label_indptr"], dtype=np.int64)
        hubs = np.asarray(arrays["label_hubs"], dtype=np.int64)
        dists = np.asarray(arrays["label_dists"], dtype=np.float64)
        meta = np.asarray(arrays["meta"], dtype=np.float64)
        if indptr.shape != (n + 1,):
            raise ValueError(
                f"label_indptr shape {indptr.shape} != ({n + 1},)"
            )
        if hubs.shape != dists.shape or hubs.ndim != 1:
            raise ValueError("label_hubs/label_dists shape mismatch")
        if int(indptr[-1]) != hubs.size:
            raise ValueError(
                f"label_indptr[-1]={int(indptr[-1])} != {hubs.size} entries"
            )
        cutoff = float(meta[0])
        oracle._cutoff = None if math.isinf(cutoff) else cutoff
        oracle._indptr = indptr
        oracle._hubs = hubs
        oracle._dists = dists
        oracle._finalize()
        return oracle

    # ----------------------------------------------------------- the build

    def _build(self) -> None:
        graph = self._graph
        n = graph.number_of_nodes()
        cutoff = self._cutoff
        adjacency = [
            list(graph.neighbors_by_index(u).items()) for u in range(n)
        ]
        # Degree-descending rank order (index tiebreak): high-degree nodes
        # become hubs first, which is what keeps labels short on the
        # hub-and-spoke structure of geometric/social graphs.
        order = sorted(range(n), key=lambda u: (-len(adjacency[u]), u))
        label_hubs = [[] for _ in range(n)]
        label_dists = [[] for _ in range(n)]
        # Rank-indexed scratch holding the current root's label distances,
        # so the pruning query is one pass over the popped node's label.
        root_dist = [INFINITY] * n
        for rank, root in enumerate(order):
            root_hubs = label_hubs[root]
            root_dists = label_dists[root]
            for h, d in zip(root_hubs, root_dists):
                root_dist[h] = d
            dist: Dict[int, float] = {root: 0.0}
            heap = [(0.0, root)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, INFINITY):
                    continue
                if cutoff is not None and d > cutoff:
                    break  # popped non-decreasing: the rest is farther
                # Prune when an earlier (higher-rank) hub pair already
                # certifies a distance this short.
                hubs_u = label_hubs[u]
                dists_u = label_dists[u]
                pruned = False
                for h, dh in zip(hubs_u, dists_u):
                    if root_dist[h] + dh <= d:
                        pruned = True
                        break
                if pruned:
                    continue
                hubs_u.append(rank)
                dists_u.append(d)
                for v, length in adjacency[u]:
                    nd = d + length
                    if cutoff is not None and nd > cutoff:
                        continue
                    if nd < dist.get(v, INFINITY):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            for h in root_hubs:
                root_dist[h] = INFINITY
        self._indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            [len(hubs) for hubs in label_hubs], out=self._indptr[1:]
        )
        self._hubs = np.array(
            [h for hubs in label_hubs for h in hubs], dtype=np.int64
        )
        self._dists = np.array(
            [d for dists in label_dists for d in dists], dtype=np.float64
        )

    def _finalize(self) -> None:
        """Derived query plumbing shared by build and adoption."""
        n = self._graph.number_of_nodes()
        for array in (self._indptr, self._hubs, self._dists):
            if array.flags.writeable:
                array.setflags(write=False)
        lengths = np.diff(self._indptr)
        self._nonempty = lengths > 0
        self._segment_starts = self._indptr[:-1][self._nonempty]
        # Rank-space scratch for the vectorized row queries; only entries
        # touched by a query are reset, so queries stay O(label size).
        self._hub_scratch = np.full(n, INFINITY)
        self._row_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    # ----------------------------------------------------------- inspection

    @property
    def graph(self) -> WirelessGraph:
        return self._graph

    @property
    def cutoff(self) -> Optional[float]:
        """The build cutoff (``None`` = full exact index)."""
        return self._cutoff

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    def label_count(self) -> int:
        """Total number of (hub, distance) label entries."""
        return int(self._hubs.size)

    def index_nbytes(self) -> int:
        """Memory footprint of the label buffers in bytes."""
        return (
            self._indptr.nbytes + self._hubs.nbytes + self._dists.nbytes
        )

    def index_arrays(self) -> Dict[str, np.ndarray]:
        """The flat index buffers, keyed for :func:`repro.experiments.shm`
        publication (adopt on the other side via :meth:`with_arrays`)."""
        cutoff = INFINITY if self._cutoff is None else self._cutoff
        return {
            "label_indptr": self._indptr,
            "label_hubs": self._hubs,
            "label_dists": self._dists,
            "meta": np.array([cutoff], dtype=np.float64),
        }

    # -------------------------------------------------------------- queries

    def distance_by_index(self, iu: int, iv: int) -> float:
        """Distance between dense indices (sorted-label merge, O(labels))."""
        indptr = self._indptr
        su, eu = int(indptr[iu]), int(indptr[iu + 1])
        sv, ev = int(indptr[iv]), int(indptr[iv + 1])
        hubs, dists = self._hubs, self._dists
        best = INFINITY
        i, j = su, sv
        while i < eu and j < ev:
            hi = hubs[i]
            hj = hubs[j]
            if hi == hj:
                total = dists[i] + dists[j]
                if total < best:
                    best = float(total)
                i += 1
                j += 1
            elif hi < hj:
                i += 1
            else:
                j += 1
        return best

    def distance(self, u: Node, v: Node) -> float:
        return self.distance_by_index(
            self._graph.node_index(u), self._graph.node_index(v)
        )

    def _fill_scratch(self, index: int) -> np.ndarray:
        start, end = self._indptr[index], self._indptr[index + 1]
        hubs = self._hubs[start:end]
        self._hub_scratch[hubs] = self._dists[start:end]
        return hubs

    def _clear_scratch(self, touched: np.ndarray) -> None:
        self._hub_scratch[touched] = INFINITY

    def row_by_index(self, index: int) -> np.ndarray:
        """Distances from dense *index* to every node (read-only).

        One vectorized label sweep: candidate sums over every node's label
        entries, segment-min folded per node. Cached in a tiny LRU — full
        rows are off this tier's hot path (consumers use :meth:`rows_to`).
        """
        index = int(index)
        cached = self._row_cache.get(index)
        if cached is not None:
            self._row_cache.move_to_end(index)
            return cached
        n = self._graph.number_of_nodes()
        out = np.full(n, INFINITY)
        touched = self._fill_scratch(index)
        if self._hubs.size:
            candidates = self._dists + self._hub_scratch[self._hubs]
            out[self._nonempty] = np.minimum.reduceat(
                candidates, self._segment_starts
            )
        self._clear_scratch(touched)
        out.setflags(write=False)
        self._row_cache[index] = out
        while len(self._row_cache) > self._ROW_CACHE_SIZE:
            self._row_cache.popitem(last=False)
        return out

    def row(self, node: Node) -> np.ndarray:
        return self.row_by_index(self._graph.node_index(node))

    def rows(self, indices: Sequence[int]) -> np.ndarray:
        """Distances from each of *indices* to every node, as a
        ``(len(indices), n)`` block (a fresh array; safe to keep)."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return np.empty((0, self._graph.number_of_nodes()))
        return np.vstack([self.row_by_index(int(i)) for i in idx])

    def rows_to(
        self, sources: Sequence[int], columns: Sequence[int]
    ) -> np.ndarray:
        """Distances from each of *sources* to each of *columns*, as a
        ``(len(sources), len(columns))`` array.

        Equals ``rows(sources)[:, columns]`` but the work scales with the
        *requested* labels — ``O(Σ|label(source)| + s·Σ|label(column)|)``
        — never with ``n``. This is the batch query the shortcut engine's
        lazy tables and the restricted candidate scan are built on.
        """
        src = np.asarray(sources, dtype=np.intp)
        cols = np.asarray(columns, dtype=np.intp)
        out = np.full((src.size, cols.size), INFINITY)
        if src.size == 0 or cols.size == 0:
            return out
        # Concatenate the requested columns' label slices once; every
        # source then reuses the gathered buffers.
        indptr = self._indptr
        col_lengths = (indptr[cols + 1] - indptr[cols]).astype(np.int64)
        total = int(col_lengths.sum())
        if total == 0:
            return out
        gather = np.empty(total, dtype=np.int64)
        position = 0
        for c, length in zip(cols, col_lengths):
            if length:
                start = int(indptr[c])
                gather[position : position + length] = np.arange(
                    start, start + length
                )
                position += int(length)
        col_hubs = self._hubs[gather]
        col_dists = self._dists[gather]
        col_nonempty = col_lengths > 0
        col_indptr = np.zeros(cols.size + 1, dtype=np.int64)
        np.cumsum(col_lengths, out=col_indptr[1:])
        col_starts = col_indptr[:-1][col_nonempty]
        for i, s in enumerate(src):
            touched = self._fill_scratch(int(s))
            candidates = col_dists + self._hub_scratch[col_hubs]
            out[i, col_nonempty] = np.minimum.reduceat(
                candidates, col_starts
            )
            self._clear_scratch(touched)
        return out

    @property
    def matrix(self) -> np.ndarray:
        """Full ``n × n`` matrix for legacy consumers (full mode only).

        A cutoff index is exact only within the cutoff, so serving the
        matrix would silently hand out upper bounds — refuse instead
        (threshold-sliced consumers use the row/``rows_to`` accessors).
        """
        if self._cutoff is not None:
            raise GraphError(
                "a cutoff hub-label index cannot serve the full matrix "
                f"(exact only within cutoff={self._cutoff}); build with "
                "cutoff=None or use a dense/sparse oracle"
            )
        n = self._graph.number_of_nodes()
        full = np.vstack([self.row_by_index(i) for i in range(n)])
        full.setflags(write=False)
        return full

    def __repr__(self) -> str:
        cutoff = (
            "full" if self._cutoff is None else f"cutoff={self._cutoff:.4g}"
        )
        return (
            f"HubLabelOracle(n={self._graph.number_of_nodes()}, "
            f"labels={self.label_count()}, {cutoff})"
        )

"""Experiment registry and top-level runner."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import ValidationError
from repro.experiments.ablations import (
    run_ablation_aea,
    run_ablation_ea_mutation,
    run_ablation_sandwich,
    run_ablation_warmstart,
)
from repro.experiments.delivery_exp import run_delivery
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.generality_exp import run_generality
from repro.experiments.msc_cn_exp import run_msc_cn
from repro.experiments.prediction_exp import run_prediction
from repro.experiments.replanning_exp import run_replanning
from repro.experiments.results import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.util.rng import SeedLike

Runner = Callable[..., ExperimentResult]

#: The paper's tables and figures.
EXPERIMENTS: Dict[str, Runner] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
}

#: Supplementary studies beyond the paper's evaluation (ablations and the
#: MSC-CN special case, which the paper proves about but never measures).
#: Included in lookups but not in "run all".
SUPPLEMENTARY: Dict[str, Runner] = {
    "ablation_sandwich": run_ablation_sandwich,
    "ablation_aea": run_ablation_aea,
    "ablation_ea": run_ablation_ea_mutation,
    "ablation_warmstart": run_ablation_warmstart,
    "msc_cn": run_msc_cn,
    "delivery": run_delivery,
    "prediction": run_prediction,
    "generality": run_generality,
    "replanning": run_replanning,
}


def experiment_names() -> List[str]:
    """The paper's experiments (what "run all" runs)."""
    return sorted(EXPERIMENTS)


def all_experiment_names() -> List[str]:
    """Paper experiments plus supplementary studies."""
    return sorted({**EXPERIMENTS, **SUPPLEMENTARY})


def get_experiment(name: str) -> Runner:
    """Look up an experiment runner by id ("table1" ... "fig5", or a
    supplementary id like "ablation_aea")."""
    key = name.lower()
    if key in EXPERIMENTS:
        return EXPERIMENTS[key]
    if key in SUPPLEMENTARY:
        return SUPPLEMENTARY[key]
    raise ValidationError(
        f"unknown experiment {name!r}; "
        f"available: {', '.join(all_experiment_names())}"
    )


def run_experiment(
    name: str, scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(name)(scale=scale, seed=seed)


def run_all(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
) -> List[ExperimentResult]:
    """Run every (or the selected) experiment, in declared order."""
    selected = names if names is not None else experiment_names()
    return [run_experiment(name, scale=scale, seed=seed) for name in selected]

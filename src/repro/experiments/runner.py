"""Experiment registry and top-level runner.

``run_all`` optionally fans whole experiments out across worker processes
(``jobs > 1``); every experiment derives all randomness from its
``(name, scale, seed)`` task alone, so the combined output is
byte-identical to the serial run at any job count.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.experiments.ablations import (
    run_ablation_aea,
    run_ablation_ea_mutation,
    run_ablation_sandwich,
    run_ablation_warmstart,
)
from repro.experiments.delivery_exp import run_delivery
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.generality_exp import run_generality
from repro.experiments.msc_cn_exp import run_msc_cn
from repro.experiments.prediction_exp import run_prediction
from repro.experiments.replanning_exp import run_replanning
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.util.rng import SeedLike

Runner = Callable[..., ExperimentResult]

#: The paper's tables and figures.
EXPERIMENTS: Dict[str, Runner] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
}

#: Supplementary studies beyond the paper's evaluation (ablations and the
#: MSC-CN special case, which the paper proves about but never measures).
#: Included in lookups but not in "run all".
SUPPLEMENTARY: Dict[str, Runner] = {
    "ablation_sandwich": run_ablation_sandwich,
    "ablation_aea": run_ablation_aea,
    "ablation_ea": run_ablation_ea_mutation,
    "ablation_warmstart": run_ablation_warmstart,
    "msc_cn": run_msc_cn,
    "delivery": run_delivery,
    "prediction": run_prediction,
    "generality": run_generality,
    "replanning": run_replanning,
}


def experiment_names() -> List[str]:
    """The paper's experiments (what "run all" runs)."""
    return sorted(EXPERIMENTS)


def all_experiment_names() -> List[str]:
    """Paper experiments plus supplementary studies."""
    return sorted({**EXPERIMENTS, **SUPPLEMENTARY})


def get_experiment(name: str) -> Runner:
    """Look up an experiment runner by id ("table1" ... "fig5", or a
    supplementary id like "ablation_aea")."""
    key = name.lower()
    if key in EXPERIMENTS:
        return EXPERIMENTS[key]
    if key in SUPPLEMENTARY:
        return SUPPLEMENTARY[key]
    raise ValidationError(
        f"unknown experiment {name!r}; "
        f"available: {', '.join(all_experiment_names())}"
    )


def run_experiment(
    name: str, scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Run one experiment by id.

    *jobs* is forwarded to runners that support internal fan-out (per-cell
    sweeps, trial batches) and ignored by the rest; it never changes the
    result, only the wall-clock.
    """
    runner = get_experiment(name)
    if jobs != 1 and "jobs" in inspect.signature(runner).parameters:
        return runner(scale=scale, seed=seed, jobs=jobs)
    return runner(scale=scale, seed=seed)


def _timed_experiment_task(
    task: Tuple[str, str, SeedLike]
) -> Tuple[ExperimentResult, float]:
    """Worker for the ``run_all`` fan-out: one experiment, with its own
    wall-clock (module-level so it is picklable)."""
    name, scale, seed = task
    start = time.perf_counter()
    result = run_experiment(name, scale=scale, seed=seed)
    return result, time.perf_counter() - start


def run_all_timed(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
    jobs: int = 1,
) -> List[Tuple[ExperimentResult, float]]:
    """Like :func:`run_all` but each result comes with its wall-clock
    seconds. With ``jobs > 1`` experiments run across worker processes;
    results stay in declared order and are byte-identical to serial."""
    selected = names if names is not None else experiment_names()
    return fanout(
        _timed_experiment_task,
        [(name, scale, seed) for name in selected],
        jobs=jobs,
    )


def run_all(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
    jobs: int = 1,
) -> List[ExperimentResult]:
    """Run every (or the selected) experiment, in declared order."""
    return [
        result
        for result, _ in run_all_timed(
            scale=scale, seed=seed, names=names, jobs=jobs
        )
    ]

"""Experiment registry and top-level runner.

``run_all`` optionally fans whole experiments out across worker processes
(``jobs > 1``); every experiment derives all randomness from its
``(name, scale, seed)`` task alone, so the combined output is
byte-identical to the serial run at any job count.

The runner is fault-tolerant: with ``checkpoint_dir`` set, every finished
``(experiment, scale, seed)`` task is journaled atomically the moment it
completes, a crashed/hung worker is retried up to ``retries`` extra times
on a fresh process, and a re-run pointed at the same directory restores
journaled tasks instead of recomputing them — producing byte-identical
final results, because each task's output is a pure function of its key.
"""

from __future__ import annotations

import inspect
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ValidationError
from repro.experiments.results import ExperimentResult
from repro.experiments.parallel import FanoutReport, fanout_report
from repro.util.resilience import policy_for_retries
from repro.util.serialization import TaskJournal
from repro.experiments.ablations import (
    run_ablation_aea,
    run_ablation_ea_mutation,
    run_ablation_sandwich,
    run_ablation_warmstart,
)
from repro.experiments.delivery_exp import run_delivery
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.generality_exp import run_generality
from repro.experiments.msc_cn_exp import run_msc_cn
from repro.experiments.prediction_exp import run_prediction
from repro.experiments.replanning_exp import run_replanning
from repro.experiments.robustness_exp import run_robustness
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.workloads import (
    gowalla_workload,
    gowalla_workload_key,
    rg_workload,
    rg_workload_key,
    workload_arrays,
)
from repro.util.rng import SeedLike

Runner = Callable[..., ExperimentResult]

#: The paper's tables and figures.
EXPERIMENTS: Dict[str, Runner] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
}

#: Supplementary studies beyond the paper's evaluation (ablations and the
#: MSC-CN special case, which the paper proves about but never measures).
#: Included in lookups but not in "run all".
SUPPLEMENTARY: Dict[str, Runner] = {
    "ablation_sandwich": run_ablation_sandwich,
    "ablation_aea": run_ablation_aea,
    "ablation_ea": run_ablation_ea_mutation,
    "ablation_warmstart": run_ablation_warmstart,
    "msc_cn": run_msc_cn,
    "delivery": run_delivery,
    "prediction": run_prediction,
    "generality": run_generality,
    "replanning": run_replanning,
    "robustness": run_robustness,
}


def experiment_names() -> List[str]:
    """The paper's experiments (what "run all" runs)."""
    return sorted(EXPERIMENTS)


def all_experiment_names() -> List[str]:
    """Paper experiments plus supplementary studies."""
    return sorted({**EXPERIMENTS, **SUPPLEMENTARY})


def get_experiment(name: str) -> Runner:
    """Look up an experiment runner by id ("table1" ... "fig5", or a
    supplementary id like "ablation_aea")."""
    key = name.lower()
    if key in EXPERIMENTS:
        return EXPERIMENTS[key]
    if key in SUPPLEMENTARY:
        return SUPPLEMENTARY[key]
    raise ValidationError(
        f"unknown experiment {name!r}; "
        f"available: {', '.join(all_experiment_names())}"
    )


def run_experiment(
    name: str, scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Run one experiment by id.

    *jobs* is forwarded to runners that support internal fan-out (per-cell
    sweeps, trial batches) and ignored by the rest; it never changes the
    result, only the wall-clock.
    """
    runner = get_experiment(name)
    if jobs != 1 and "jobs" in inspect.signature(runner).parameters:
        return runner(scale=scale, seed=seed, jobs=jobs)
    return runner(scale=scale, seed=seed)


def _timed_experiment_task(
    task: Tuple[str, str, SeedLike]
) -> Tuple[ExperimentResult, float]:
    """Worker for the ``run_all`` fan-out: one experiment, with its own
    wall-clock (module-level so it is picklable)."""
    name, scale, seed = task
    start = time.perf_counter()
    result = run_experiment(name, scale=scale, seed=seed)
    return result, time.perf_counter() - start


def _task_key(task: Tuple[str, str, SeedLike]) -> List:
    """Journal key of a ``run_all`` task: the task itself. Seeds must be
    JSON-representable (ints/strings/tuples), which all CLI seeds are."""
    return list(task)


def _encode_timed(timed: Tuple[ExperimentResult, float]) -> Dict:
    result, elapsed = timed
    return {"result": result.to_json(), "elapsed": elapsed}


def _decode_timed(payload: Dict) -> Tuple[ExperimentResult, float]:
    return (
        ExperimentResult.from_json(payload["result"]),
        float(payload["elapsed"]),
    )


#: Experiments that rebuild the scale's default RG workload
#: (``rg_workload(seed=seed, n=preset.rg_n)``) per task.
_RG_N_USERS = frozenset({"table1", "fig2", "fig3", "fig4"})

#: Experiments that rebuild the fixed Gowalla dataset per task.
_GOWALLA_USERS = frozenset({"table2", "fig2", "fig3", "fig4"})


def shared_workload_payload(
    names: List[str], scale: str, seed: SeedLike
) -> Dict[str, Dict]:
    """Arrays of every workload the selected experiments would otherwise
    rebuild per task, keyed for :mod:`.shm` publication.

    ``run_all`` tasks share three heavy builds: the fixed Gowalla dataset
    (every seed, four experiments), the scale's default RG workload
    (four experiments per seed), and fig1's own RG size. Building each
    once in the parent and publishing CSR + APSP lets every worker adopt
    instead of regenerate; :func:`~.workloads.rg_workload` falls back to a
    from-scratch build on any key miss, so the payload is a pure
    accelerator — results are byte-identical with or without it.
    """
    from repro.experiments.config import SCALES

    preset = SCALES[scale]
    selected = {name.lower() for name in names}
    payload: Dict[str, Dict] = {}

    def add_rg(n: int) -> None:
        key = rg_workload_key(seed, n)
        if key not in payload:
            payload[key] = workload_arrays(rg_workload(seed=seed, n=n))

    if selected & _RG_N_USERS:
        add_rg(preset.rg_n)
    if "fig1" in selected:
        add_rg(preset.fig1_n)
    if selected & _GOWALLA_USERS:
        payload[gowalla_workload_key()] = workload_arrays(
            gowalla_workload()
        )
    return payload


def run_all_report(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
    jobs: int = 1,
    *,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    warm_start: bool = True,
) -> FanoutReport:
    """Fault-tolerant ``run_all`` returning a full :class:`FanoutReport`.

    Each element of ``report.results`` is ``(result, elapsed_seconds)`` in
    declared experiment order (``None`` where a task exhausted its retry
    budget — those tasks are listed per-task in ``report.failures``).
    With *checkpoint_dir*, completed tasks are journaled atomically as
    they finish and already-journaled tasks are restored instead of
    re-run, so a killed campaign resumes without losing (or re-spending)
    anything; tasks that do run produce byte-identical output to an
    uninterrupted run.

    With *warm_start* (the default), the workloads the selected
    experiments share are built once in the parent and published via
    shared memory (:func:`shared_workload_payload`), so each task adopts
    the graph + APSP matrix instead of regenerating them — the dominant
    per-task fixed cost in the fan-out. Warm start never changes results,
    only wall-clock.
    """
    selected = names if names is not None else experiment_names()
    journal = (
        TaskJournal(checkpoint_dir) if checkpoint_dir is not None else None
    )
    shared = (
        shared_workload_payload(selected, scale, seed)
        if warm_start
        else None
    )
    return fanout_report(
        _timed_experiment_task,
        [(name, scale, seed) for name in selected],
        jobs=jobs,
        policy=policy_for_retries(retries),
        task_timeout=task_timeout,
        journal=journal,
        key_fn=_task_key,
        encode=_encode_timed,
        decode=_decode_timed,
        shared=shared or None,
    )


def run_all_timed(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
    jobs: int = 1,
    *,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    warm_start: bool = True,
) -> List[Tuple[ExperimentResult, float]]:
    """Like :func:`run_all` but each result comes with its wall-clock
    seconds. With ``jobs > 1`` experiments run across worker processes;
    results stay in declared order and are byte-identical to serial.
    See :func:`run_all_report` for the fault-tolerance keywords; here an
    exhausted retry budget raises the first per-task
    :class:`~repro.exceptions.TaskError` (journaled completions are kept).
    """
    report = run_all_report(
        scale=scale,
        seed=seed,
        names=names,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        retries=retries,
        task_timeout=task_timeout,
        warm_start=warm_start,
    )
    report.raise_on_failure()
    return list(report.results)


def run_all(
    scale: str = "paper",
    seed: SeedLike = 1,
    names: Optional[List[str]] = None,
    jobs: int = 1,
    **fault_tolerance,
) -> List[ExperimentResult]:
    """Run every (or the selected) experiment, in declared order."""
    return [
        result
        for result, _ in run_all_timed(
            scale=scale, seed=seed, names=names, jobs=jobs,
            **fault_tolerance,
        )
    ]

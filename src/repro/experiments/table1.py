"""Table I: data-dependent approximation ratio σ(F_ν)/ν(F_ν) on the RG
graph, across the ``p_t × k`` grid (paper §VII-B, n=100, m=17)."""

from __future__ import annotations

from repro.core.ratio import ratio_grid
from repro.experiments.config import Scale, get_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import rg_workload
from repro.util.rng import SeedLike


def run_table1(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Regenerate Table I.

    Expected shape (paper): ratios mostly above 0.05, up to ~0.4; the ratio
    decreases as *k* grows because the bounds μ/ν drift away from σ on more
    complex placements.
    """
    preset: Scale = get_scale(scale)
    workload = rg_workload(seed=seed, n=preset.rg_n)
    budgets = list(preset.table1_k)
    max_k = max(budgets)

    def factory(p_t: float, draw: int):
        return workload.instance(
            p_t, m=preset.table1_m, k=max_k, seed=(seed, p_t, draw)
        )

    draws = 10 if scale == "paper" else 2
    grid = ratio_grid(factory, preset.table1_p, budgets, draws=draws)

    result = ExperimentResult(
        name="table1",
        title="σ(F_ν)/ν(F_ν) for Random Geometric graph",
        params={
            "scale": scale,
            "seed": seed,
            "n": preset.rg_n,
            "m": preset.table1_m,
            "p_t": list(preset.table1_p),
            "k": budgets,
        },
    )
    headers = ["k"] + [f"p_t={p}" for p in preset.table1_p]
    rows = []
    for i, k in enumerate(budgets):
        rows.append([k] + [grid[p][i].ratio for p in preset.table1_p])
    result.add_table("Table I", headers, rows)

    result.params["draws"] = draws
    result.notes.append(_trend_note(grid, preset.table1_p, budgets))
    return result


def _trend_note(grid, p_values, budgets) -> str:
    """Describe the k-trend per column (the paper reports a decrease; see
    EXPERIMENTS.md for where and why our reproduction deviates)."""
    trends = []
    for p in p_values:
        first, last = grid[p][0].ratio, grid[p][-1].ratio
        if last < first - 1e-6:
            trends.append("down")
        elif last > first + 1e-6:
            trends.append("up")
        else:
            trends.append("flat")
    return (
        "k-trend per p_t column (paper: down): "
        + ", ".join(f"{p}:{t}" for p, t in zip(p_values, trends))
    )

"""Table I: data-dependent approximation ratio σ(F_ν)/ν(F_ν) on the RG
graph, across the ``p_t × k`` grid (paper §VII-B, n=100, m=17).

Grid columns (one per ``p_t``) are independent given the seed, so they fan
out across processes; the ``ratio_grid`` instance factory is a closure and
cannot be pickled, so each worker rebuilds the workload and its own factory
from the ``(scale, seed, p_t)`` task."""

from __future__ import annotations

from typing import List

from repro.core.ratio import RatioReport, ratio_grid
from repro.experiments.config import Scale, get_scale
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import rg_workload
from repro.util.rng import SeedLike


def _grid_draws(scale: str) -> int:
    return 10 if scale == "paper" else 2


def _grid_column(task) -> List[RatioReport]:
    """One p_t column of Table I (module-level, picklable)."""
    scale, seed, p_t = task
    preset = get_scale(scale)
    workload = rg_workload(seed=seed, n=preset.rg_n)
    budgets = list(preset.table1_k)
    max_k = max(budgets)

    def factory(p: float, draw: int):
        return workload.instance(
            p, m=preset.table1_m, k=max_k, seed=(seed, p, draw)
        )

    return ratio_grid(
        factory, [p_t], budgets, draws=_grid_draws(scale)
    )[p_t]


def run_table1(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Table I.

    Expected shape (paper): ratios mostly above 0.05, up to ~0.4; the ratio
    decreases as *k* grows because the bounds μ/ν drift away from σ on more
    complex placements.
    """
    preset: Scale = get_scale(scale)
    budgets = list(preset.table1_k)
    draws = _grid_draws(scale)
    columns = fanout(
        _grid_column,
        [(scale, seed, p_t) for p_t in preset.table1_p],
        jobs=jobs,
    )
    grid = dict(zip(preset.table1_p, columns))

    result = ExperimentResult(
        name="table1",
        title="σ(F_ν)/ν(F_ν) for Random Geometric graph",
        params={
            "scale": scale,
            "seed": seed,
            "n": preset.rg_n,
            "m": preset.table1_m,
            "p_t": list(preset.table1_p),
            "k": budgets,
        },
    )
    headers = ["k"] + [f"p_t={p}" for p in preset.table1_p]
    rows = []
    for i, k in enumerate(budgets):
        rows.append([k] + [grid[p][i].ratio for p in preset.table1_p])
    result.add_table("Table I", headers, rows)

    result.params["draws"] = draws
    result.notes.append(_trend_note(grid, preset.table1_p, budgets))
    return result


def _trend_note(grid, p_values, budgets) -> str:
    """Describe the k-trend per column (the paper reports a decrease; see
    EXPERIMENTS.md for where and why our reproduction deviates)."""
    trends = []
    for p in p_values:
        first, last = grid[p][0].ratio, grid[p][-1].ratio
        if last < first - 1e-6:
            trends.append("down")
        elif last > first + 1e-6:
            trends.append("up")
        else:
            trends.append("flat")
    return (
        "k-trend per p_t column (paper: down): "
        + ", ".join(f"{p}:{t}" for p, t in zip(p_values, trends))
    )

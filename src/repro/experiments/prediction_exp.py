"""Supplementary experiment: placement under topology prediction.

Paper §VI assumes predicted topologies are *given*. This study quantifies
what the prediction step costs: we observe a prefix of a tactical trace,
predict the future with constant-velocity extrapolation, place shortcut
edges with AA against the *predicted* topologies, and evaluate against the
*actual* future. Three placements are compared on the actual objective:

* ``oracle`` — AA on the actual future (the upper reference);
* ``predicted`` — AA on the predicted future (what §VI implies);
* ``frozen`` — AA on the last observed topology only (no prediction).

Expected shape: oracle is the ceiling; the prediction-based placements
recover most of its value because shortcut edges are anchored at *nodes*
and group membership is stable even when positions drift. Whether velocity
extrapolation beats the frozen baseline depends on the motion model —
random-waypoint turns can make extrapolation worse than freezing, which is
itself a finding about how robust §VI's "predictions are given" assumption
is.
"""

from __future__ import annotations

from typing import List

from repro.core.problem import MSCInstance
from repro.dynamics.prediction import (
    LinearMotionPredictor,
    prediction_error,
    split_trace,
)
from repro.dynamics.series import DynamicMSCInstance
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import (
    TACTICAL_MAX_LINK_FAILURE,
    TACTICAL_RADIUS_METERS,
)
from repro.graph.distances import DistanceOracle
from repro.netgen.pairs import select_important_pairs
from repro.netgen.tactical import (
    TacticalConfig,
    generate_tactical_trace,
    tactical_topology_series,
)
from repro.util.rng import SeedLike, ensure_rng, spawn_rng


def _dynamic_instance_from_trace(
    trace, p_threshold: float, m: int, k: int, pair_seed
) -> DynamicMSCInstance:
    graphs = tactical_topology_series(
        trace,
        TACTICAL_RADIUS_METERS,
        max_link_failure=TACTICAL_MAX_LINK_FAILURE,
    )
    pair_rng = ensure_rng(pair_seed)
    instances: List[MSCInstance] = []
    for graph in graphs:
        oracle = DistanceOracle(graph)
        pairs = select_important_pairs(
            graph, m, p_threshold, seed=pair_rng, oracle=oracle
        )
        instances.append(
            MSCInstance(
                graph, pairs, k, p_threshold=p_threshold, oracle=oracle
            )
        )
    return DynamicMSCInstance(instances)


def run_prediction(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Oracle vs predicted vs frozen placements on the actual future."""
    if scale == "paper":
        n, m, k, observed, horizon, windows = 50, 20, 10, 10, 10, (1, 3, 5)
    else:
        n, m, k, observed, horizon, windows = 30, 8, 4, 5, 4, (1, 3)
    p_t = 0.11
    rng = ensure_rng((seed, "prediction"))
    config = TacticalConfig(n_nodes=n, snapshots=observed + horizon)
    trace = generate_tactical_trace(config, seed=spawn_rng(rng, "trace"))
    prefix, future = split_trace(trace, observed)

    # The actual-future instance, with one fixed pair demand. The same
    # pairs are used for the predicted topologies: demand is social, not
    # positional, so prediction only affects the *graphs*.
    actual = _dynamic_instance_from_trace(
        future, p_t, m, k, (seed, "pairs")
    )
    actual_sigma = actual.sigma_function()

    result = ExperimentResult(
        name="prediction",
        title="Placement from predicted topologies vs oracle",
        params={
            "scale": scale, "seed": seed, "n": n, "m": m, "k": k,
            "observed": observed, "horizon": horizon, "p_t": p_t,
            "max_total": actual.total_pairs,
        },
    )

    rows: List[List[object]] = []
    oracle_result = actual.solve_sandwich()
    rows.append(["oracle", "-", oracle_result.sigma, "-"])

    for window in windows:
        predictor = LinearMotionPredictor(window=window)
        predicted_trace = predictor.predict(prefix, horizon)
        error = prediction_error(future, predicted_trace)
        predicted_graphs = tactical_topology_series(
            predicted_trace,
            TACTICAL_RADIUS_METERS,
            max_link_failure=TACTICAL_MAX_LINK_FAILURE,
        )
        # Same pairs as the actual instance, evaluated on predicted graphs;
        # pairs may already be satisfied there, so validation is relaxed.
        predicted_instances = [
            MSCInstance(
                graph,
                actual_inst.pairs,
                k,
                p_threshold=p_t,
                require_initially_unsatisfied=False,
            )
            for graph, actual_inst in zip(
                predicted_graphs, actual.instances
            )
        ]
        predicted_dyn = DynamicMSCInstance(predicted_instances)
        placement = predicted_dyn.solve_sandwich()
        achieved = actual_sigma.value(
            actual.edges_to_index_pairs(placement.edges)
        )
        label = "frozen" if window == 1 else f"predicted(w={window})"
        rows.append([label, round(error.mean, 1), int(achieved), ""])

    result.add_table(
        "actual-future σ achieved by each placement",
        ["placement", "mean pred. error (m)", "sigma on actual", "note"],
        rows,
    )
    oracle_sigma = rows[0][2]
    best_predicted = max(r[2] for r in rows[1:])
    result.notes.append(
        f"best predicted placement recovers {best_predicted}/{oracle_sigma} "
        "of the oracle's maintained connections"
    )
    return result

"""Fig. 4: maintained connections as a function of the iteration budget r
for EA and AEA, with AA as the (iteration-independent) reference line —
RG graph at p_t=0.14 (a) and Gowalla at p_t=0.23 (b), for several k
(paper §VII-D).

EA and AEA traces are taken from a single long run per (workload, k): the
best-so-far value at each checkpoint equals the value an independent run of
that length would report, because both algorithms only ever improve their
best-so-far. Each (workload, k) cell is seed-self-contained and fans out
across processes (``jobs``) with byte-identical results."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.aea import AdaptiveEvolutionaryAlgorithm
from repro.core.ea import EvolutionaryAlgorithm
from repro.core.sandwich import SandwichApproximation
from repro.experiments.config import Scale, get_scale
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import (
    Workload,
    gowalla_workload,
    rg_workload,
)
from repro.util.rng import SeedLike

AEA_POOL = 10
AEA_DELTA = 0.05


def _trace_at(trace: List[int], checkpoints: Sequence[int]) -> List[int]:
    """Best-so-far value at each checkpoint (1-based iteration counts)."""
    out = []
    for r in checkpoints:
        idx = min(r, len(trace)) - 1
        out.append(trace[idx] if idx >= 0 else 0)
    return out


def _workload_for(
    kind: str, seed, preset: Scale
) -> Tuple[Workload, float, int]:
    """The named workload plus its fig4 threshold and pair count."""
    if kind == "rg":
        return (
            rg_workload(seed=seed, n=preset.rg_n),
            preset.fig4_rg_p,
            preset.fig3_m_rg,
        )
    return gowalla_workload(), preset.fig4_gw_p, preset.fig3_m_gw


def _sweep_cell(task) -> Tuple[List[int], List[int], List[int]]:
    """One (workload, k) cell: AA line plus EA/AEA checkpoint traces."""
    scale, seed, kind, k = task
    preset = get_scale(scale)
    workload, p_t, m = _workload_for(kind, seed, preset)
    checkpoints = list(preset.fig4_checkpoints)
    max_r = max(checkpoints)
    instance = workload.instance(
        p_t, m=m, k=k, seed=(seed, workload.name, p_t)
    )
    aa_sigma = SandwichApproximation(instance).solve(k=k).sigma
    ea = EvolutionaryAlgorithm(
        instance, iterations=max_r, seed=(seed, "ea", k)
    ).solve(k=k)
    aea = AdaptiveEvolutionaryAlgorithm(
        instance,
        iterations=max_r,
        pool_size=AEA_POOL,
        delta=AEA_DELTA,
        seed=(seed, "aea", k),
    ).solve(k=k)
    return (
        [aa_sigma] * len(checkpoints),
        _trace_at(ea.trace, checkpoints),
        _trace_at(aea.trace, checkpoints),
    )


def _sweep(
    scale: str,
    seed,
    kind: str,
    budgets: Sequence[int],
    jobs: int,
) -> List[tuple]:
    cells = fanout(
        _sweep_cell,
        [(scale, seed, kind, k) for k in budgets],
        jobs=jobs,
    )
    series = []
    for k, (aa_line, ea_line, aea_line) in zip(budgets, cells):
        series.append((f"AA k={k}", aa_line))
        series.append((f"EA k={k}", ea_line))
        series.append((f"AEA k={k}", aea_line))
    return series


def run_fig4(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Fig. 4. Expected shape: EA/AEA improve with r; AEA starts
    below AA but overtakes it at large r; EA stays below both."""
    preset: Scale = get_scale(scale)
    checkpoints = list(preset.fig4_checkpoints)
    result = ExperimentResult(
        name="fig4",
        title="Maintained connections vs. iteration budget r",
        params={
            "scale": scale,
            "seed": seed,
            "checkpoints": checkpoints,
            "k": list(preset.fig4_k),
            "p_rg": preset.fig4_rg_p,
            "p_gowalla": preset.fig4_gw_p,
        },
    )
    result.add_series(
        f"(a) RG graph, p_t={preset.fig4_rg_p}, m={preset.fig3_m_rg}",
        "r",
        checkpoints,
        _sweep(scale, seed, "rg", preset.fig4_k, jobs),
    )
    result.add_series(
        f"(b) Gowalla, p_t={preset.fig4_gw_p}, m={preset.fig3_m_gw}",
        "r",
        checkpoints,
        _sweep(scale, seed, "gowalla", preset.fig4_k, jobs),
    )
    return result

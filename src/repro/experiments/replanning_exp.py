"""Supplementary experiment: static placement vs sliding-window re-planning.

The paper fixes one placement for the whole horizon (§VI). With relocatable
links (UAVs, steerable beams), re-planning every ``window`` instances buys
maintained connections at the cost of relocation churn. This study sweeps
the window size on the tactical workload and reports both sides of the
tradeoff.

Expected shape: total σ is non-increasing in the window size (more frequent
re-planning never hurts the objective), while relocations grow as windows
shrink; the static end reproduces Fig. 5's numbers by construction.
"""

from __future__ import annotations

from typing import List

from repro.dynamics.replanning import compare_windows
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import tactical_dynamic_instance
from repro.util.rng import SeedLike


def run_replanning(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Tradeoff curve: total maintained vs relocations over window sizes."""
    if scale == "paper":
        n, m, k, T = 50, 30, 10, 30
        windows = [30, 15, 10, 5, 1]
    else:
        n, m, k, T = 30, 8, 4, 6
        windows = [6, 3, 1]
    p_t = 0.11
    dyn = tactical_dynamic_instance(
        p_t, m=m, k=k, T=T, seed=(seed, "replan"), n=n
    )
    results = compare_windows(dyn, windows)

    result = ExperimentResult(
        name="replanning",
        title="Static placement vs sliding-window re-planning",
        params={
            "scale": scale, "seed": seed, "n": n, "m": m, "k": k,
            "T": T, "p_t": p_t, "max_total": dyn.total_pairs,
        },
    )
    rows: List[List[object]] = []
    for r in results:
        rows.append(
            [
                r.window,
                r.total_sigma,
                round(r.total_sigma / T, 2),
                r.relocations,
                len(r.placements),
            ]
        )
    result.add_table(
        "window sweep",
        ["window", "total sigma", "avg/instance", "relocations",
         "placements"],
        rows,
    )
    static_sigma = rows[0][1]
    best_sigma = max(row[1] for row in rows)
    result.notes.append(
        f"re-planning gains up to {best_sigma - static_sigma} maintained "
        f"connection-instances over the static placement "
        f"({static_sigma} -> {best_sigma}), paid in relocations"
    )
    return result

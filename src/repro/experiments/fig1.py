"""Fig. 1: shortcut-edge placement showcase — Approximation Algorithm vs.
best-of-500 random selection on a small RG instance (paper §VII-C).

The paper's figure draws the two placements on the node layout; the runner
emits the equivalent data — node coordinates, the chosen shortcut edges, and
which important pairs each placement maintains — so the figure can be
re-plotted, plus a summary table comparing the two.
"""

from __future__ import annotations

from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import SandwichApproximation
from repro.experiments.config import Scale, get_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import rg_workload
from repro.util.rng import SeedLike


def run_fig1(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Fig. 1. Expected shape: AA maintains at least as many
    pairs as the random baseline, typically strictly more. *jobs* fans the
    baseline's trials across processes (byte-identical results)."""
    preset: Scale = get_scale(scale)
    workload = rg_workload(seed=seed, n=preset.fig1_n)
    instance = workload.instance(
        preset.fig1_p, m=preset.fig1_m, k=preset.fig1_k, seed=(seed, "fig1")
    )
    aa = SandwichApproximation(instance).solve()
    random_result = solve_random_baseline(
        instance,
        seed=(seed, "fig1-random"),
        trials=preset.fig2_trials,
        jobs=jobs,
    )

    result = ExperimentResult(
        name="fig1",
        title="Shortcut placement: AA vs. random selection (RG)",
        params={
            "scale": scale,
            "seed": seed,
            "n": instance.n,
            "m": instance.m,
            "k": instance.k,
            "p_t": preset.fig1_p,
        },
    )
    result.add_table(
        "Placement comparison",
        ["algorithm", "sigma", "edges"],
        [
            [aa.algorithm, aa.sigma, _fmt_edges(aa.edges)],
            [
                random_result.algorithm,
                random_result.sigma,
                _fmt_edges(random_result.edges),
            ],
        ],
    )
    result.add_table(
        "Per-pair satisfaction",
        ["pair", "AA", "random"],
        [
            [f"{u}-{w}", sat_a, sat_r]
            for (u, w), sat_a, sat_r in zip(
                instance.pairs, aa.satisfied, random_result.satisfied
            )
        ],
    )
    # The raw layout for re-plotting the figure.
    result.params["positions"] = {
        str(node): list(pos) for node, pos in workload.positions.items()
    }
    result.notes.append(
        f"AA maintains {aa.sigma} vs random {random_result.sigma} "
        f"(AA >= random: {aa.sigma >= random_result.sigma})"
    )
    return result


def _fmt_edges(edges) -> str:
    return "; ".join(f"{u}-{w}" for u, w in edges) if edges else "(none)"

"""Combined markdown report from saved experiment JSON results.

``msc-repro run ... --json out.json`` archives results; this module turns
one or more such archives into a single markdown document (tables and
series become markdown tables), so a full reproduction run can be published
as one artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.exceptions import ValidationError
from repro.util.serialization import load_json

PathLike = Union[str, Path]


def _md_escape(cell: Any, precision: int = 4) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell).replace("|", "\\|")


def _md_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], precision: int
) -> str:
    lines = [
        "| " + " | ".join(_md_escape(h) for h in headers) + " |",
        "|" + "---|" * len(headers),
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_md_escape(c, precision) for c in row)
            + " |"
        )
    return "\n".join(lines)


def result_to_markdown(data: Dict[str, Any], precision: int = 4) -> str:
    """One experiment result dict (from ``ExperimentResult.to_json``) as a
    markdown section."""
    for key in ("name", "title"):
        if key not in data:
            raise ValidationError(f"result payload missing {key!r}")
    blocks: List[str] = [f"## {data['name']} — {data['title']}"]
    params = data.get("params") or {}
    if params:
        rendered = ", ".join(
            f"`{k}={v}`"
            for k, v in sorted(params.items())
            if k != "positions"  # bulky layout payloads don't belong here
        )
        blocks.append(f"Parameters: {rendered}")
    for table in data.get("tables", []):
        blocks.append(f"**{table['title']}**")
        blocks.append(
            _md_table(table["headers"], table["rows"], precision)
        )
    for fig in data.get("series", []):
        blocks.append(f"**{fig['title']}**")
        headers = [fig["x_label"]] + [name for name, _v in fig["series"]]
        rows = []
        for i, x in enumerate(fig["x"]):
            rows.append(
                [x] + [values[i] for _name, values in fig["series"]]
            )
        blocks.append(_md_table(headers, rows, precision))
    for note in data.get("notes", []):
        blocks.append(f"> {note}")
    return "\n\n".join(blocks)


def build_report(
    json_paths: Sequence[PathLike],
    *,
    title: str = "MSC reproduction report",
    precision: int = 4,
) -> str:
    """Markdown report combining every result in *json_paths*.

    Each file may hold a single result dict or a list of them (both shapes
    are produced by the CLI).
    """
    sections: List[str] = [f"# {title}"]
    for path in json_paths:
        data = load_json(path)
        results = data if isinstance(data, list) else [data]
        for result in results:
            if not isinstance(result, dict):
                raise ValidationError(
                    f"{path}: expected result dict(s), got "
                    f"{type(result).__name__}"
                )
            sections.append(result_to_markdown(result, precision))
    return "\n\n".join(sections) + "\n"


def write_report(
    json_paths: Sequence[PathLike],
    output: PathLike,
    *,
    title: str = "MSC reproduction report",
    precision: int = 4,
) -> None:
    """Write :func:`build_report` output to *output*."""
    target = Path(output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        build_report(json_paths, title=title, precision=precision),
        encoding="utf-8",
    )

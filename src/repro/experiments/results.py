"""Experiment result container with text and JSON rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.util.serialization import dump_json
from repro.util.tables import render_series, render_table


@dataclass
class ExperimentResult:
    """Uniform output of every experiment runner.

    Attributes:
        name: experiment id ("table1" ... "fig5").
        title: human-readable title echoing the paper's caption.
        params: the parameters the run used (seeds included).
        tables: list of ``{"title", "headers", "rows"}`` dicts.
        series: list of ``{"title", "x_label", "x", "series": [(name,
            values), ...]}`` dicts — figure-shaped data.
        notes: free-form observations (e.g. shape checks).
    """

    name: str
    title: str
    params: Dict[str, Any] = field(default_factory=dict)
    tables: List[Dict[str, Any]] = field(default_factory=list)
    series: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
    ) -> None:
        self.tables.append(
            {"title": title, "headers": list(headers),
             "rows": [list(r) for r in rows]}
        )

    def add_series(
        self,
        title: str,
        x_label: str,
        x: Sequence[Any],
        series: Sequence,
    ) -> None:
        self.series.append(
            {
                "title": title,
                "x_label": x_label,
                "x": list(x),
                "series": [(name, list(values)) for name, values in series],
            }
        )

    def render(self, precision: int = 4, charts: bool = False) -> str:
        """Full plain-text report.

        With ``charts=True``, series whose x values are numeric are
        additionally rendered as ASCII line charts (the figure's shape).
        """
        blocks: List[str] = [f"== {self.name}: {self.title} =="]
        if self.params:
            blocks.append(
                "params: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            )
        for table in self.tables:
            blocks.append(
                render_table(
                    table["headers"],
                    table["rows"],
                    title=table["title"],
                    precision=precision,
                )
            )
        for fig in self.series:
            blocks.append(
                render_series(
                    fig["x_label"],
                    fig["x"],
                    fig["series"],
                    title=fig["title"],
                    precision=precision,
                )
            )
            if charts:
                chart = self._chart_or_none(fig)
                if chart is not None:
                    blocks.append(chart)
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)

    @staticmethod
    def _chart_or_none(fig: Dict[str, Any]) -> Optional[str]:
        from repro.util.charts import render_chart

        try:
            x = [float(v) for v in fig["x"]]
        except (TypeError, ValueError):
            return None  # categorical x axis; table only
        try:
            return render_chart(x, fig["series"], title=fig["title"])
        except ValueError:
            return None

    def to_json(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Plain-dict form; written to *path* when given."""
        data = {
            "name": self.name,
            "title": self.title,
            "params": self.params,
            "tables": self.tables,
            "series": self.series,
            "notes": self.notes,
        }
        if path is not None:
            dump_json(data, path)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from its :meth:`to_json` form.

        JSON has no tuple type, so series entries come back as
        ``[name, values]`` lists; all consumers (rendering, aggregation,
        re-serialization) accept both, and a restored result serializes to
        byte-identical JSON — the property checkpoint/resume relies on.
        """
        if not isinstance(data, dict) or "name" not in data:
            raise ValidationError(
                f"not an ExperimentResult payload: {data!r:.80}"
            )
        return cls(
            name=data["name"],
            title=data.get("title", ""),
            params=dict(data.get("params", {})),
            tables=[dict(t) for t in data.get("tables", [])],
            series=[dict(s) for s in data.get("series", [])],
            notes=list(data.get("notes", [])),
        )

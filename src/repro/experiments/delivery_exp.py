"""Supplementary experiment: end-to-end delivery validation.

Closes the loop the paper's formulation opens: "maintained" is defined via
the probability model (best path failure ≤ p_t); here we *simulate* link
failures and measure actual delivery. Expected outcome:

* before placement, the important pairs (selected to violate p_t) deliver
  below ``1 - p_t`` under single-path routing;
* after the AA placement, every *maintained* pair's simulated best-path
  delivery rate clears ``1 - p_t`` (up to Monte Carlo noise);
* flooding ≥ multipath ≥ best-path at each stage. Flooding's raw delivery
  can be high even without shortcuts (dense graphs have path diversity) —
  but it floods the whole network per message, which is exactly the
  "redundant transmission may further degrade the communication of other
  social pairs" overhead the paper rules out (§I). The placement is what
  brings *single-path* delivery up to the requirement.
"""

from __future__ import annotations

from typing import List

from repro.core.sandwich import SandwichApproximation
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import rg_workload
from repro.sim.delivery import DeliverySimulator
from repro.util.rng import SeedLike


def run_delivery(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Simulated delivery rates before/after shortcut placement."""
    if scale == "paper":
        n, m, k, trials = 100, 40, 6, 2000
    else:
        n, m, k, trials = 50, 12, 3, 300
    p_t = 0.1
    workload = rg_workload(seed=(seed, "delivery"), n=n)
    instance = workload.instance(p_t, m=m, k=k, seed=(seed, "pairs"))
    placement = SandwichApproximation(instance).solve()

    result = ExperimentResult(
        name="delivery",
        title="Simulated delivery: before vs after AA placement",
        params={
            "scale": scale,
            "seed": seed,
            "n": instance.n,
            "m": m,
            "k": k,
            "p_t": p_t,
            "trials": trials,
            "maintained": placement.sigma,
        },
    )

    rows: List[List[object]] = []
    requirement = 1.0 - p_t
    for label, shortcuts in (
        ("before", []),
        ("after", placement.edges),
    ):
        simulator = DeliverySimulator(instance.graph, shortcuts)
        for strategy in ("best_path", "multipath", "flooding"):
            report = simulator.simulate(
                instance.pairs,
                strategy=strategy,
                trials=trials,
                seed=(seed, label, strategy),
            )
            rows.append(
                [
                    label,
                    strategy,
                    report.mean_rate,
                    report.meeting_requirement(p_t),
                ]
            )
    result.add_table(
        f"mean delivery rate and pairs clearing 1 - p_t = {requirement}",
        ["placement", "strategy", "mean rate", f"pairs >= {requirement}"],
        rows,
    )

    # Transmission overhead: what flooding's delivery rate costs (§I's
    # "redundant transmission" argument, quantified).
    from repro.sim.overhead import compare_overheads

    overhead_rows: List[List[object]] = []
    for label, shortcuts in (("before", []), ("after", placement.edges)):
        for report_o in compare_overheads(
            instance.graph,
            instance.pairs,
            shortcuts,
            trials=max(trials // 10, 20),
            seed=(seed, "overhead", label),
        ):
            overhead_rows.append(
                [
                    label,
                    report_o.strategy,
                    report_o.per_delivery,
                ]
            )
    result.add_table(
        "transmissions per successful delivery",
        ["placement", "strategy", "tx/delivery"],
        overhead_rows,
    )
    flood_tx = next(
        r[2] for r in overhead_rows if r[:2] == ["after", "flooding"]
    )
    best_tx = next(
        r[2] for r in overhead_rows if r[:2] == ["after", "best_path"]
    )
    result.notes.append(
        f"flooding costs {flood_tx / best_tx:.1f}x the transmissions of "
        "best-path routing per delivered message (the overhead §I rules "
        "out)"
    )

    # Per-pair check: maintained pairs must clear the requirement after
    # placement (best-path strategy), modulo Monte Carlo noise.
    simulator = DeliverySimulator(instance.graph, placement.edges)
    report = simulator.simulate(
        instance.pairs,
        strategy="best_path",
        trials=trials,
        seed=(seed, "check"),
    )
    violations = 0
    for delivered, maintained in zip(report.pairs, placement.satisfied):
        if maintained:
            _lo, hi = delivered.wilson_interval(z=3.3)
            if hi < requirement:  # statistically below the requirement
                violations += 1
    result.notes.append(
        f"maintained pairs whose simulated delivery contradicts the model: "
        f"{violations} (expected 0)"
    )
    return result

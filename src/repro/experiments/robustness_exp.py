"""Supplementary experiment: graceful degradation under fault injection.

The paper optimizes σ against a *static* failure model; this study measures
what a finished AA placement is worth when the network degrades afterwards.
Three fault modes (see :mod:`repro.failure.injection`) are swept over a
severity grid; each cell reports the analytic σ on the perturbed network
and the Monte-Carlo delivery rate, so the degradation profile shows up in
both the objective and the simulated system.

Expected shape: severity 0 reproduces the unperturbed placement in every
mode; σ and delivery fall monotonically (modulo sampling noise) as severity
rises; shortcut outage at severity 1 strips the placement entirely, so its
σ collapses to the pairs the base graph already happens to maintain.

Each ``(mode, severity)`` cell derives all randomness from
``(seed, mode, severity)`` alone, so the sweep fans out across worker
processes without changing a single byte of output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sandwich import SandwichApproximation
from repro.experiments import shm
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import Workload, rg_workload
from repro.failure.injection import (
    MODES,
    FaultInjectionHarness,
    InjectionOutcome,
)
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph, graph_signature
from repro.graph.paths import graph_csr
from repro.util.rng import SeedLike

#: Severity grids and Monte-Carlo trials per scale.
_SCALES: Dict[str, Dict] = {
    "paper": {
        "n": 100, "m": 40, "k": 6, "trials": 400,
        "severities": (0.0, 0.25, 0.5, 0.75, 1.0),
    },
    "quick": {
        "n": 50, "m": 12, "k": 3, "trials": 120,
        "severities": (0.0, 0.5, 1.0),
    },
}

_P_THRESHOLD = 0.1


def _config(scale: str) -> Dict:
    return _SCALES.get(scale, _SCALES["quick"])


#: Per-process harness cache, keyed by ``(scale, repr(seed))``. The
#: content is byte-identical whether the workload was rebuilt from
#: scratch or adopted from shared memory, so the cache key deliberately
#: ignores *how* the harness was built.
_HARNESS_CACHE: Dict[Tuple[str, str], Tuple[FaultInjectionHarness, int]] = {}
_HARNESS_CACHE_MAX = 4


def _shared_workload(shm_key: str, n: int) -> Optional[Workload]:
    """Rebuild the RG workload from published shared-memory arrays.

    The graph is reconstructed from the CSR adjacency (plus original node
    labels) and the oracle adopts the published APSP matrix — zero
    Dijkstra runs in the worker. Returns ``None`` when the key is not
    resolvable in this process (e.g. a journal-restored run without the
    publication), in which case the caller rebuilds from scratch.
    """
    payload = shm.maybe_get(shm_key)
    if payload is None:
        return None
    graph = WirelessGraph.from_adjacency_arrays(
        payload["indptr"],
        payload["indices"],
        payload["data"],
        nodes=[int(label) for label in payload["nodes"]],
    )
    if graph.number_of_nodes() != n:
        return None  # stale publication; never adopt mismatched data
    oracle = DistanceOracle.with_matrix(graph, payload["matrix"])
    return Workload(graph=graph, oracle=oracle, name="rg")


def _prepared_harness(
    scale: str, seed: SeedLike, shm_key: Optional[str] = None
) -> Tuple[FaultInjectionHarness, int]:
    """Workload → instance → AA placement → harness, cached per process
    (every cell of one sweep shares the same solved placement).

    With *shm_key*, the base graph and its APSP matrix are adopted from
    shared memory instead of recomputed — the workload generator and the
    oracle build are skipped entirely in pool workers.
    """
    cache_key = (scale, repr(seed))
    cached = _HARNESS_CACHE.get(cache_key)
    if cached is not None:
        return cached
    cfg = _config(scale)
    workload = None
    if shm_key is not None:
        workload = _shared_workload(shm_key, cfg["n"])
    if workload is None:
        workload = rg_workload(seed=(seed, "robustness"), n=cfg["n"])
    instance = workload.instance(
        _P_THRESHOLD, m=cfg["m"], k=cfg["k"], seed=(seed, "pairs")
    )
    placement = SandwichApproximation(instance).solve()
    harness = FaultInjectionHarness(
        instance,
        placement.edges,
        trials=cfg["trials"],
        seed=(seed, "robustness"),
    )
    while len(_HARNESS_CACHE) >= _HARNESS_CACHE_MAX:
        _HARNESS_CACHE.pop(next(iter(_HARNESS_CACHE)))
    _HARNESS_CACHE[cache_key] = (harness, placement.sigma)
    return harness, placement.sigma


def _robustness_cell(
    task: Tuple[str, SeedLike, str, float, Optional[str]]
) -> InjectionOutcome:
    """One ``(mode, severity)`` cell (module-level so it is picklable;
    workers rebuild the placement from ``(scale, seed)`` — adopting the
    shared-memory base graph/APSP when published — and cache it)."""
    scale, seed, mode, severity = task[:4]
    shm_key = task[4] if len(task) > 4 else None
    harness, _sigma = _prepared_harness(scale, seed, shm_key)
    return harness.run(mode, severity)


def run_robustness(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Fault-injection degradation sweep over all modes and severities."""
    cfg = _config(scale)
    severities: Sequence[float] = cfg["severities"]
    harness, baseline_sigma = _prepared_harness(scale, seed)
    instance = harness.instance

    # Publish the base graph (CSR + labels) and its APSP matrix once;
    # every worker attaches the read-only segments instead of rerunning
    # the generator and n Dijkstra sweeps per process.
    digest = graph_signature(instance.graph)
    shm_key = f"oracle:{digest}"
    indptr, indices, data = graph_csr(instance.graph)
    shared = {
        shm_key: {
            "matrix": instance.oracle.matrix,
            "indptr": indptr,
            "indices": indices,
            "data": data,
            "nodes": np.asarray(
                [int(label) for label in instance.graph.nodes],
                dtype=np.int64,
            ),
        }
    }

    tasks = [
        (scale, seed, mode, severity, shm_key)
        for mode in MODES
        for severity in severities
    ]
    outcomes: List[InjectionOutcome] = fanout(
        _robustness_cell, tasks, jobs=jobs, shared=shared
    )
    by_mode = {
        mode: outcomes[i * len(severities): (i + 1) * len(severities)]
        for i, mode in enumerate(MODES)
    }

    result = ExperimentResult(
        name="robustness",
        title="Placement robustness under link-failure fault injection",
        params={
            "scale": scale,
            "seed": seed,
            "n": instance.n,
            "m": instance.m,
            "k": instance.k,
            "p_t": _P_THRESHOLD,
            "trials": harness.trials,
            "baseline_sigma": baseline_sigma,
        },
    )

    rows: List[List[object]] = []
    for mode in MODES:
        for outcome in by_mode[mode]:
            rows.append(
                [
                    mode,
                    outcome.severity,
                    outcome.sigma,
                    outcome.sigma_fraction,
                    outcome.delivery_rate,
                    outcome.pairs_meeting_requirement,
                    outcome.dropped_shortcuts,
                    outcome.lost_nodes,
                ]
            )
    result.add_table(
        "degradation per fault mode and severity",
        [
            "mode", "severity", "sigma", "sigma frac", "delivery",
            f"pairs >= {1 - _P_THRESHOLD}", "lost edges", "lost nodes",
        ],
        rows,
    )
    result.add_series(
        "maintained fraction vs fault severity",
        "severity",
        list(severities),
        [
            (mode, [o.sigma_fraction for o in by_mode[mode]])
            for mode in MODES
        ],
    )
    result.add_series(
        "simulated delivery rate vs fault severity",
        "severity",
        list(severities),
        [
            (mode, [o.delivery_rate for o in by_mode[mode]])
            for mode in MODES
        ],
    )

    # Sanity: severity 0 must reproduce the unperturbed placement exactly.
    zero_sigmas = {mode: by_mode[mode][0].sigma for mode in MODES}
    consistent = all(s == baseline_sigma for s in zero_sigmas.values())
    result.notes.append(
        f"severity-0 sigma matches the unperturbed placement in all modes: "
        f"{consistent} (baseline {baseline_sigma})"
    )
    non_monotone = sum(
        1
        for mode in MODES
        for a, b in zip(by_mode[mode], by_mode[mode][1:])
        if b.sigma > a.sigma
    )
    result.notes.append(
        f"severity steps where sigma increased (expected ~0): {non_monotone}"
    )
    return result

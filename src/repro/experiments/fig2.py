"""Fig. 2: Approximation Algorithm vs. random selection — maintained
connections as a function of the budget k, for several thresholds p_t, on
both the RG graph and the Gowalla network (paper §VII-C)."""

from __future__ import annotations

from typing import List, Sequence

from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import SandwichApproximation
from repro.experiments.config import Scale, get_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import Workload, gowalla_workload, rg_workload
from repro.util.rng import SeedLike


def _sweep(
    workload: Workload,
    p_values: Sequence[float],
    budgets: Sequence[int],
    m: int,
    trials: int,
    seed,
) -> List[tuple]:
    series = []
    for p_t in p_values:
        aa_values: List[int] = []
        random_values: List[int] = []
        instance = workload.instance(
            p_t, m=m, k=max(budgets), seed=(seed, workload.name, p_t)
        )
        for k in budgets:
            aa_values.append(SandwichApproximation(instance).solve(k=k).sigma)
            random_inst = instance  # same pairs; budget passed per-solve
            baseline = solve_random_baseline(
                _with_budget(random_inst, k),
                seed=(seed, workload.name, p_t, k),
                trials=trials,
            )
            random_values.append(baseline.sigma)
        series.append((f"AA p_t={p_t}", aa_values))
        series.append((f"random p_t={p_t}", random_values))
    return series


def _with_budget(instance, k):
    """Clone-with-budget: the random baseline reads ``instance.k``."""
    from repro.core.problem import MSCInstance

    return MSCInstance(
        instance.graph,
        instance.pairs,
        k,
        d_threshold=instance.d_threshold,
        oracle=instance.oracle,
        require_initially_unsatisfied=False,
    )


def run_fig2(scale: str = "paper", seed: SeedLike = 1) -> ExperimentResult:
    """Regenerate Fig. 2. Expected shape: AA dominates random at every
    (p_t, k); both curves grow with k and with p_t."""
    preset: Scale = get_scale(scale)
    budgets = list(preset.fig2_k)

    result = ExperimentResult(
        name="fig2",
        title="Maintained connections: AA vs. random selection",
        params={
            "scale": scale,
            "seed": seed,
            "k": budgets,
            "trials": preset.fig2_trials,
            "m_rg": preset.fig2_m_rg,
            "m_gowalla": preset.fig2_m_gw,
        },
    )

    rg = rg_workload(seed=seed, n=preset.rg_n)
    result.add_series(
        f"(a) RG graph, n={preset.rg_n}, m={preset.fig2_m_rg}",
        "k",
        budgets,
        _sweep(
            rg, preset.fig2_rg_p, budgets, preset.fig2_m_rg,
            preset.fig2_trials, seed,
        ),
    )

    gowalla = gowalla_workload()
    result.add_series(
        f"(b) Gowalla, n={gowalla.graph.number_of_nodes()}, "
        f"m={preset.fig2_m_gw}",
        "k",
        budgets,
        _sweep(
            gowalla, preset.fig2_gw_p, budgets, preset.fig2_m_gw,
            preset.fig2_trials, seed,
        ),
    )
    return result

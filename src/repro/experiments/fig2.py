"""Fig. 2: Approximation Algorithm vs. random selection — maintained
connections as a function of the budget k, for several thresholds p_t, on
both the RG graph and the Gowalla network (paper §VII-C).

Each ``(workload, p_t)`` sweep cell is independent — its instance and
baseline seeds are derived tuples, not positions in a shared stream — so
cells fan out across processes (``jobs``) with byte-identical results; the
per-cell worker rebuilds the (seed-deterministic) workload locally because
workload objects do not cross process boundaries.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import SandwichApproximation
from repro.experiments.config import Scale, get_scale
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import (
    Workload,
    gowalla_workload,
    rg_workload,
)
from repro.util.rng import SeedLike


def _workload_for(kind: str, seed, preset: Scale) -> Tuple[Workload, int]:
    """Rebuild the named workload (and its fig2 pair count) in-process."""
    if kind == "rg":
        return rg_workload(seed=seed, n=preset.rg_n), preset.fig2_m_rg
    return gowalla_workload(), preset.fig2_m_gw


def _sweep_cell(task) -> Tuple[List[int], List[int]]:
    """One p_t column of a sweep: AA and best-random σ per budget."""
    scale, seed, kind, p_t = task
    preset = get_scale(scale)
    workload, m = _workload_for(kind, seed, preset)
    budgets = list(preset.fig2_k)
    trials = preset.fig2_trials
    instance = workload.instance(
        p_t, m=m, k=max(budgets), seed=(seed, workload.name, p_t)
    )
    aa_values: List[int] = []
    random_values: List[int] = []
    for k in budgets:
        aa_values.append(SandwichApproximation(instance).solve(k=k).sigma)
        baseline = solve_random_baseline(
            _with_budget(instance, k),
            seed=(seed, workload.name, p_t, k),
            trials=trials,
        )
        random_values.append(baseline.sigma)
    return aa_values, random_values


def _sweep(
    scale: str,
    seed,
    kind: str,
    p_values: Sequence[float],
    jobs: int,
) -> List[tuple]:
    cells = fanout(
        _sweep_cell,
        [(scale, seed, kind, p_t) for p_t in p_values],
        jobs=jobs,
    )
    series = []
    for p_t, (aa_values, random_values) in zip(p_values, cells):
        series.append((f"AA p_t={p_t}", aa_values))
        series.append((f"random p_t={p_t}", random_values))
    return series


def _with_budget(instance, k):
    """Clone-with-budget: the random baseline reads ``instance.k``."""
    from repro.core.problem import MSCInstance

    return MSCInstance(
        instance.graph,
        instance.pairs,
        k,
        d_threshold=instance.d_threshold,
        oracle=instance.oracle,
        require_initially_unsatisfied=False,
    )


def run_fig2(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Fig. 2. Expected shape: AA dominates random at every
    (p_t, k); both curves grow with k and with p_t."""
    preset: Scale = get_scale(scale)
    budgets = list(preset.fig2_k)

    result = ExperimentResult(
        name="fig2",
        title="Maintained connections: AA vs. random selection",
        params={
            "scale": scale,
            "seed": seed,
            "k": budgets,
            "trials": preset.fig2_trials,
            "m_rg": preset.fig2_m_rg,
            "m_gowalla": preset.fig2_m_gw,
        },
    )

    result.add_series(
        f"(a) RG graph, n={preset.rg_n}, m={preset.fig2_m_rg}",
        "k",
        budgets,
        _sweep(scale, seed, "rg", preset.fig2_rg_p, jobs),
    )

    gowalla = gowalla_workload()
    result.add_series(
        f"(b) Gowalla, n={gowalla.graph.number_of_nodes()}, "
        f"m={preset.fig2_m_gw}",
        "k",
        budgets,
        _sweep(scale, seed, "gowalla", preset.fig2_gw_p, jobs),
    )
    return result

"""Multi-seed experiment statistics: mean ± std aggregation.

The paper reports single runs; serious reproduction wants error bars. This
module re-runs an experiment across seeds and merges the numeric content:
series values become ``mean`` with a parallel ``±std`` series, table cells
(numeric ones) become means. Non-numeric cells must agree across seeds or
aggregation refuses — silently averaging labels would hide a bug.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence

from repro.exceptions import ValidationError
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import get_experiment
from repro.util.validation import check_positive_int


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    m = _mean(values)
    return math.sqrt(
        sum((v - m) ** 2 for v in values) / (len(values) - 1)
    )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_results(
    results: Sequence[ExperimentResult],
) -> ExperimentResult:
    """Merge same-shaped results from different seeds into mean ± std."""
    if not results:
        raise ValidationError("nothing to aggregate")
    first = results[0]
    for other in results[1:]:
        if other.name != first.name:
            raise ValidationError(
                f"cannot aggregate {first.name!r} with {other.name!r}"
            )

    merged = ExperimentResult(
        name=first.name,
        title=f"{first.title} (mean of {len(results)} seeds)",
        params={
            **{
                k: v
                for k, v in first.params.items()
                if k not in ("seed", "positions")
            },
            "seeds": len(results),
        },
    )

    # ---- tables -------------------------------------------------------
    for t_index, table in enumerate(first.tables):
        all_rows = [r.tables[t_index]["rows"] for r in results]
        if any(len(rows) != len(all_rows[0]) for rows in all_rows):
            raise ValidationError(
                f"table {table['title']!r} row counts differ across seeds"
            )
        rows_out: List[List[Any]] = []
        for row_cells in zip(*all_rows):
            row: List[Any] = []
            for cells in zip(*row_cells):
                if all(_is_number(c) for c in cells):
                    row.append(_mean([float(c) for c in cells]))
                elif len(set(map(str, cells))) == 1:
                    row.append(cells[0])
                else:
                    raise ValidationError(
                        f"non-numeric cells disagree across seeds: {cells!r}"
                    )
            rows_out.append(row)
        merged.add_table(table["title"], table["headers"], rows_out)

    # ---- series -------------------------------------------------------
    for s_index, fig in enumerate(first.series):
        all_figs = [r.series[s_index] for r in results]
        if any(f["x"] != fig["x"] for f in all_figs):
            raise ValidationError(
                f"series {fig['title']!r} x-axes differ across seeds"
            )
        out_series = []
        for series_pos, (name, _values) in enumerate(fig["series"]):
            stacks = [
                f["series"][series_pos][1] for f in all_figs
            ]
            means = [_mean(col) for col in zip(*stacks)]
            stds = [_std(col) for col in zip(*stacks)]
            out_series.append((name, means))
            out_series.append((f"{name} ±std", stds))
        merged.add_series(fig["title"], fig["x_label"], fig["x"], out_series)

    return merged


def _seed_run_task(task) -> ExperimentResult:
    """Worker for the multi-seed fan-out (module-level, picklable)."""
    name, scale, seed = task
    return get_experiment(name)(scale=scale, seed=seed)


def run_with_seeds(
    name: str,
    seeds: Sequence[int],
    scale: str = "quick",
    jobs: int = 1,
) -> ExperimentResult:
    """Run experiment *name* once per seed and aggregate.

    Seeds are independent tasks, so ``jobs > 1`` fans them across worker
    processes; the aggregate is identical at any job count."""
    check_positive_int(len(seeds), "number of seeds")
    from repro.experiments.parallel import fanout

    return aggregate_results(
        fanout(
            _seed_run_task,
            [(name, scale, seed) for seed in seeds],
            jobs=jobs,
        )
    )

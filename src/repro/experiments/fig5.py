"""Fig. 5: dynamic networks on the tactical mobility workload (paper §VII-E;
n=50, m=30 per topology, T=30; r=500, l=10, δ=0.05).

(a) total maintained connections across all time instances vs. budget k,
    for several p_t, comparing AA/EA/AEA on the summed objective;
(b) total (and per-instance average) maintained connections vs. the number
    of time instances T, for several k.
"""

from __future__ import annotations

from typing import List

from repro.experiments.config import Scale, get_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import tactical_dynamic_instance
from repro.util.rng import SeedLike

AEA_POOL = 10
AEA_DELTA = 0.05


def run_fig5(scale: str = "paper", seed: SeedLike = 1) -> ExperimentResult:
    """Regenerate Fig. 5. Expected shapes: (a) AEA ≳ AA ≫ EA, all growing
    with k and p_t (AEA ≈ AA once nearly all pairs are maintained);
    (b) total maintained grows with T and k while the per-instance average
    decreases with T."""
    preset: Scale = get_scale(scale)
    result = ExperimentResult(
        name="fig5",
        title="Dynamic networks (tactical traces)",
        params={
            "scale": scale,
            "seed": seed,
            "n": preset.fig5_n,
            "m": preset.fig5_m,
            "T": preset.fig5_T,
            "iterations": preset.fig5_iterations,
            "pool_size": AEA_POOL,
            "delta": AEA_DELTA,
        },
    )

    # ---- (a): sweep k for each p_t ------------------------------------
    budgets = list(preset.fig5_k)
    series_a: List[tuple] = []
    for p_t in preset.fig5_p:
        dyn = tactical_dynamic_instance(
            p_t,
            m=preset.fig5_m,
            k=max(budgets),
            T=preset.fig5_T,
            seed=(seed, "fig5a", p_t),
            n=preset.fig5_n,
        )
        aa_vals, ea_vals, aea_vals = [], [], []
        for k in budgets:
            scoped = _with_budget(dyn, k)
            aa_vals.append(scoped.solve_sandwich().sigma)
            ea_vals.append(
                scoped.solve_ea(
                    iterations=preset.fig5_iterations,
                    seed=(seed, "ea", p_t, k),
                ).sigma
            )
            aea_vals.append(
                scoped.solve_aea(
                    iterations=preset.fig5_iterations,
                    pool_size=AEA_POOL,
                    delta=AEA_DELTA,
                    seed=(seed, "aea", p_t, k),
                ).sigma
            )
        series_a.append((f"AA p_t={p_t}", aa_vals))
        series_a.append((f"EA p_t={p_t}", ea_vals))
        series_a.append((f"AEA p_t={p_t}", aea_vals))
    result.add_series(
        f"(a) total maintained vs k (T={preset.fig5_T})",
        "k",
        budgets,
        series_a,
    )

    # ---- (b): sweep T for each k --------------------------------------
    sweep_T = list(preset.fig5_T_sweep)
    series_b: List[tuple] = []
    avg_series: List[tuple] = []
    for k in preset.fig5_T_k:
        totals, averages = [], []
        for T in sweep_T:
            dyn = tactical_dynamic_instance(
                preset.fig5_T_p,
                m=preset.fig5_m,
                k=k,
                T=T,
                seed=(seed, "fig5b", T),
                n=preset.fig5_n,
            )
            total = dyn.solve_sandwich().sigma
            totals.append(total)
            averages.append(total / T)
        series_b.append((f"total k={k}", totals))
        avg_series.append((f"avg/instance k={k}", averages))
    result.add_series(
        f"(b) total maintained vs T (p_t={preset.fig5_T_p}, AA)",
        "T",
        sweep_T,
        series_b,
    )
    result.add_series(
        "(b') per-instance average vs T",
        "T",
        sweep_T,
        avg_series,
    )
    return result


def _with_budget(dyn, k):
    """Dynamic instance view with a smaller budget (re-wraps the per-topology
    instances; objective caches are rebuilt lazily)."""
    from repro.core.problem import MSCInstance
    from repro.dynamics.series import DynamicMSCInstance

    instances = [
        MSCInstance(
            inst.graph,
            inst.pairs,
            k,
            d_threshold=inst.d_threshold,
            oracle=inst.oracle,
            require_initially_unsatisfied=False,
        )
        for inst in dyn.instances
    ]
    return DynamicMSCInstance(instances)

"""Zero-copy numpy sharing for the experiment fan-out.

Large read-only arrays — an instance's APSP matrix or sparse row block,
the base graph's CSR adjacency — are identical in every worker of a sweep.
Pickling them per task (the default ``ProcessPoolExecutor`` transport)
copies them once per submission; this module instead publishes them once
into POSIX shared memory (:mod:`multiprocessing.shared_memory`) and lets
workers attach read-only views at pool start-up.

Lifecycle
---------

* The parent calls :func:`publish` with ``{key: {name: array}}``; each
  array is copied once into a fresh segment named
  ``mscshm_<pid>_<seq>_<n>`` and the returned :class:`Publication` carries
  the picklable specs workers need to attach.
* :func:`attach_worker` runs as the pool initializer: it maps each
  segment read-only. Pool workers share the parent's resource-tracker
  process (multiprocessing hands the tracker fd to every child), so the
  attach-side ``register`` is a set no-op there — ownership and the
  unlink responsibility stay with the parent, and a dying worker cannot
  take a segment down with it.
* ``Publication.close()`` (called by the fan-out's ``finally``) closes and
  unlinks every segment — covering normal teardown, worker crashes
  (the pool is rebuilt, the segments survive), and ``KeyboardInterrupt``.
* If the parent is SIGKILLed before ``close()``, its resource tracker — a
  separate process that survives it — unlinks the leaked segments, so
  ``/dev/shm`` is clean even after a hard kill (exercised by the chaos
  tests).

The registry is uniform across execution modes: :func:`get` serves
worker-attached views when running in a pool and the parent's original
arrays when running serially, so consumers resolve a key the same way in
both paths. :func:`memo` adds the per-process object memo on top — e.g.
"the oracle for instance digest X" is constructed from the shared arrays
once per process, not once per task.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

#: Prefix of every segment this module creates; the chaos tests glob
#: ``/dev/shm/mscshm_<pid>_*`` to assert a killed run leaked nothing.
SEGMENT_PREFIX = "mscshm"

#: Parent-side originals, registered for the serial path.
_LOCAL: Dict[str, Dict[str, np.ndarray]] = {}

#: Worker-side read-only views onto attached segments.
_ATTACHED: Dict[str, Dict[str, np.ndarray]] = {}

#: Worker-side segment handles (kept alive for the process lifetime).
_WORKER_SEGMENTS: List[SharedMemory] = []

#: Per-process object memo (see :func:`memo`).
_MEMO: Dict[Any, Any] = {}

_SEQUENCE = 0


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of one published array."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass
class Publication:
    """Parent-side handle on a set of published segments."""

    payload: Dict[str, Dict[str, SharedArraySpec]]
    _segments: List[SharedMemory] = field(default_factory=list)

    def segment_names(self) -> List[str]:
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


def _next_segment_name() -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{_SEQUENCE}"


def publish(
    shared: Mapping[str, Mapping[str, np.ndarray]]
) -> Publication:
    """Copy *shared* arrays into fresh shared-memory segments.

    Returns a :class:`Publication` whose ``payload`` is picklable (pass it
    to :func:`attach_worker` via the pool initializer) and whose
    :meth:`~Publication.close` releases the segments.
    """
    publication = Publication(payload={})
    try:
        for key, arrays in shared.items():
            specs: Dict[str, SharedArraySpec] = {}
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = SharedMemory(
                    create=True,
                    size=max(array.nbytes, 1),
                    name=_next_segment_name(),
                )
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                publication._segments.append(segment)
                specs[name] = SharedArraySpec(
                    segment=segment.name,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            publication.payload[key] = specs
    except BaseException:
        publication.close()
        raise
    return publication


def attach_worker(
    payload: Mapping[str, Mapping[str, SharedArraySpec]]
) -> None:
    """Pool initializer: map every published segment read-only.

    Workers share the parent's resource tracker, so attaching here does
    not transfer unlink responsibility — the parent (or, after a hard
    kill, the surviving tracker process) releases the segments.
    """
    for key, specs in payload.items():
        arrays: Dict[str, np.ndarray] = {}
        for name, spec in specs.items():
            segment = SharedMemory(name=spec.segment)
            _WORKER_SEGMENTS.append(segment)
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
            )
            view.setflags(write=False)
            arrays[name] = view
        _ATTACHED[key] = arrays


def register_local(
    shared: Mapping[str, Mapping[str, np.ndarray]]
) -> None:
    """Make *shared* resolvable via :func:`get` in this process (the
    serial path and the pool parent — no segments involved)."""
    for key, arrays in shared.items():
        _LOCAL[key] = dict(arrays)


def unregister_local(keys: Mapping[str, Any]) -> None:
    """Undo :func:`register_local` for *keys* (a mapping or iterable)."""
    for key in list(keys):
        _LOCAL.pop(key, None)


def maybe_get(key: str) -> Optional[Dict[str, np.ndarray]]:
    """The arrays published under *key*, or ``None`` when unknown here.

    Worker-attached views win over parent-local originals (a worker never
    holds both; the parent resolves its own originals).
    """
    arrays = _ATTACHED.get(key)
    if arrays is not None:
        return arrays
    return _LOCAL.get(key)


def get(key: str) -> Dict[str, np.ndarray]:
    """Like :func:`maybe_get` but raises ``KeyError`` when absent."""
    arrays = maybe_get(key)
    if arrays is None:
        raise KeyError(f"no shared arrays published under {key!r}")
    return arrays


def memo(key: Any, factory: Callable[[], Any]) -> Any:
    """Process-level memo: build once per process, reuse across tasks.

    This is what keeps a mode×severity sweep from rebuilding the same
    oracle/harness in every cell a worker handles — the first task pays
    the construction, subsequent tasks in the same process reuse it.
    """
    if key not in _MEMO:
        _MEMO[key] = factory()
    return _MEMO[key]


def clear_memo() -> None:
    """Drop the process-level memo (test isolation)."""
    _MEMO.clear()


def attached_keys() -> List[str]:
    """Keys this process can resolve (attached + local), for diagnostics."""
    return sorted(set(_ATTACHED) | set(_LOCAL))

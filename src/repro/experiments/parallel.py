"""Deterministic process fan-out for the experiment layer.

Experiments decompose into independent tasks (whole experiments in
``run all``, per-``p_t`` sweep cells inside a figure, trial batches inside
the random baseline). :func:`fanout` maps a module-level worker over such a
task list, serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------

Results are **byte-identical at any job count** because

* every task carries its own seed material (derived from the experiment
  seed, never from a shared RNG consumed in loop order),
* the same worker function runs per task whether in-process or in a pool,
* results are assembled in task order (``Executor.map`` preserves input
  order), never in completion order.

Workers must be module-level functions with picklable arguments —
closures (e.g. ``ratio_grid`` factories) cannot cross process boundaries,
so parallel workers rebuild workloads from ``(scale, seed, ...)`` tuples
instead of capturing them.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

from repro.util.validation import check_positive_int

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int) -> int:
    """Validate a ``--jobs``-style argument (must be a positive int)."""
    return check_positive_int(jobs, "jobs")


def fanout(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
) -> List[R]:
    """Map *worker* over *tasks*, optionally across worker processes.

    With ``jobs <= 1`` (or fewer than two tasks) the map runs in-process;
    otherwise a :class:`ProcessPoolExecutor` with
    ``min(jobs, len(tasks))`` workers is used. Either way the result list
    is in task order and each element is computed by the same call
    ``worker(task)``, so output does not depend on the job count.
    """
    resolve_jobs(jobs)
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(worker, tasks))

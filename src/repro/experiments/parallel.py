"""Deterministic, fault-tolerant process fan-out for the experiment layer.

Experiments decompose into independent tasks (whole experiments in
``run all``, per-``p_t`` sweep cells inside a figure, trial batches inside
the random baseline). :func:`fanout` maps a module-level worker over such a
task list, serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------

Results are **byte-identical at any job count** because

* every task carries its own seed material (derived from the experiment
  seed, never from a shared RNG consumed in loop order),
* the same worker function runs per task whether in-process or in a pool,
* results are assembled in task order, never in completion order.

Fault tolerance
---------------

A crashed worker process, a raising worker, or a hung worker no longer
aborts the whole map:

* each task gets up to ``policy.attempts`` attempts with exponential
  backoff and deterministic jitter (:class:`~repro.util.resilience.RetryPolicy`);
* a task that kills its worker (``BrokenProcessPool``) is retried on a
  **fresh** pool; in-flight siblings that died with the pool are retried
  too;
* a task that exceeds *task_timeout* has its worker terminated (the pool
  is rebuilt; innocent in-flight siblings are requeued without being
  charged an attempt);
* completed results can be checkpointed to a
  :class:`~repro.util.serialization.TaskJournal` the moment they arrive,
  and journaled tasks are skipped on a resumed run;
* a task that exhausts its budget is reported as a
  :class:`~repro.exceptions.TaskError` carrying the task itself, the
  attempt count and the original traceback — never a bare
  ``BrokenProcessPool`` with no clue which ``(experiment, scale, seed)``
  died.

Retries re-run the worker with the task's own seed material, so a retry
that succeeds produces byte-identical output to a first-attempt success —
fault tolerance does not erode the determinism contract.

Workers must be module-level functions with picklable arguments —
closures (e.g. ``ratio_grid`` factories) cannot cross process boundaries,
so parallel workers rebuild workloads from ``(scale, seed, ...)`` tuples
instead of capturing them.
"""

from __future__ import annotations

import math
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
)

from repro.exceptions import TaskError, TaskTimeoutError, ValidationError
from repro.experiments import shm
from repro.util.resilience import RetryPolicy, retry_call
from repro.util.serialization import TaskJournal
from repro.util.validation import check_positive_int

T = TypeVar("T")
R = TypeVar("R")

#: Idle poll interval (seconds) while waiting for backoff windows.
_POLL_INTERVAL = 0.05


def resolve_jobs(jobs: int) -> int:
    """Validate a ``--jobs``-style argument (must be a positive int)."""
    return check_positive_int(jobs, "jobs")


@dataclass
class FanoutReport:
    """Outcome of a fault-tolerant fan-out.

    Attributes:
        results: per-task results in task order; ``None`` where the task
            failed (see *failures*).
        failures: exhausted-budget errors, in task order; empty on full
            success.
        restored: tasks restored from the journal instead of run.
        retried: failed attempts that were retried across all tasks.
    """

    results: List[Optional[Any]] = field(default_factory=list)
    failures: List[TaskError] = field(default_factory=list)
    restored: int = 0
    retried: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        """Re-raise the first failure (task order) if any task failed."""
        if self.failures:
            raise self.failures[0]


def fanout(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    *,
    policy: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
    journal: Optional[TaskJournal] = None,
    key_fn: Optional[Callable[[T], Any]] = None,
    encode: Optional[Callable[[R], Any]] = None,
    decode: Optional[Callable[[Any], R]] = None,
    shared: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> List[R]:
    """Map *worker* over *tasks*, optionally across worker processes.

    With ``jobs <= 1`` (or fewer than two tasks to run) the map runs
    in-process; otherwise a :class:`ProcessPoolExecutor` with
    ``min(jobs, len(tasks))`` workers is used. Either way the result list
    is in task order and each element is computed by the same call
    ``worker(task)``, so output does not depend on the job count.

    Failures raise :class:`~repro.exceptions.TaskError` identifying the
    task (after the retry budget, if any, is exhausted); completed tasks
    already checkpointed to *journal* are never lost. See
    :func:`fanout_report` for the keyword arguments and for collecting
    per-task failures instead of raising on the first.
    """
    report = fanout_report(
        worker,
        tasks,
        jobs,
        policy=policy,
        task_timeout=task_timeout,
        journal=journal,
        key_fn=key_fn,
        encode=encode,
        decode=decode,
        shared=shared,
    )
    report.raise_on_failure()
    return list(report.results)


def fanout_report(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    *,
    policy: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
    journal: Optional[TaskJournal] = None,
    key_fn: Optional[Callable[[T], Any]] = None,
    encode: Optional[Callable[[R], Any]] = None,
    decode: Optional[Callable[[Any], R]] = None,
    shared: Optional[Mapping[str, Mapping[str, Any]]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> FanoutReport:
    """Fault-tolerant :func:`fanout` that collects failures per task.

    Args:
        policy: retry schedule; default is a single attempt (no retries).
        task_timeout: per-attempt wall-clock bound in seconds. In the
            process pool the hung worker is terminated; in-process a
            daemon thread is abandoned.
        journal: checkpoint store. Completed tasks are recorded the moment
            they finish; tasks already recorded are restored instead of
            re-run (their results are byte-identical by the determinism
            contract, so a resumed campaign equals an uninterrupted one).
        key_fn: task -> JSON-serializable journal key (required with
            *journal*; also used to label errors and seed backoff jitter).
        encode / decode: result <-> JSON-serializable journal payload
            (default: identity — results must then be JSON-serializable).
        shared: ``{key: {name: numpy array}}`` of large read-only arrays
            workers resolve via :func:`repro.experiments.shm.get` instead
            of receiving pickled copies. In the pool the arrays are
            published to shared memory once and attached by every worker
            (including rebuilt pools after crashes/timeouts); serially
            they are registered in-process. Segments are unlinked on the
            way out — normal return, task failure, or interrupt.

    Returns:
        A :class:`FanoutReport`; task failures are collected, not raised.
    """
    resolve_jobs(jobs)
    tasks = list(tasks)
    policy = policy or RetryPolicy()
    if journal is not None and key_fn is None:
        raise ValidationError("journal requires key_fn to derive task keys")
    key_of = key_fn if key_fn is not None else (lambda task: task)
    encode = encode if encode is not None else (lambda result: result)
    decode = decode if decode is not None else (lambda payload: payload)

    report = FanoutReport(results=[None] * len(tasks))
    to_run: List[int] = []
    for i, task in enumerate(tasks):
        if journal is not None:
            try:
                report.results[i] = decode(journal.load(key_of(task)))
            except KeyError:
                to_run.append(i)
            else:
                report.restored += 1
        else:
            to_run.append(i)

    failures: Dict[int, TaskError] = {}

    def record(i: int, result: R) -> None:
        report.results[i] = result
        if journal is not None:
            journal.put(key_of(tasks[i]), encode(result))

    if shared is not None:
        shm.register_local(shared)
    try:
        if jobs <= 1 or len(to_run) <= 1:
            _run_serial(
                worker, tasks, to_run, policy, task_timeout, key_of,
                record, failures, report, sleep,
            )
        else:
            _run_pool(
                worker, tasks, to_run, jobs, policy, task_timeout, key_of,
                record, failures, report, sleep, shared,
            )
    finally:
        if shared is not None:
            shm.unregister_local(shared)

    report.failures = [failures[i] for i in sorted(failures)]
    return report


def _run_serial(
    worker, tasks, to_run, policy, task_timeout, key_of,
    record, failures, report, sleep,
) -> None:
    for i in to_run:
        def _note_retry(attempt: int, _exc: BaseException) -> None:
            if attempt < policy.attempts:
                report.retried += 1

        try:
            result = retry_call(
                worker,
                (tasks[i],),
                policy=policy,
                key=key_of(tasks[i]),
                timeout=task_timeout,
                sleep=sleep,
                on_failure=_note_retry,
            )
        except TaskError as exc:
            failures[i] = exc
        else:
            record(i, result)


def _terminate_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Shut *pool* down; with *kill*, terminate its worker processes (the
    only way to reclaim a hung worker)."""
    if kill:
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
    pool.shutdown(wait=not kill, cancel_futures=True)


def _run_pool(
    worker, tasks, to_run, jobs, policy, task_timeout, key_of,
    record, failures, report, sleep, shared=None,
) -> None:
    max_workers = min(jobs, len(to_run))
    attempts = {i: 0 for i in to_run}
    eligible = {i: 0.0 for i in to_run}  # monotonic time gate (backoff)
    pending = list(to_run)

    # Publish shared arrays once; every pool — the initial one and any
    # rebuilt after a crash or timeout — attaches the same segments via
    # its initializer, so retries see the identical read-only data.
    publication = shm.publish(shared) if shared else None

    def make_pool() -> ProcessPoolExecutor:
        if publication is None:
            return ProcessPoolExecutor(max_workers=max_workers)
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=shm.attach_worker,
            initargs=(publication.payload,),
        )

    pool = make_pool()
    running: Dict[Any, tuple] = {}  # future -> (index, deadline)

    def fail_attempt(i: int, tb: Optional[str], timed_out: bool) -> None:
        attempts[i] += 1
        if attempts[i] >= policy.attempts:
            error_cls = TaskTimeoutError if timed_out else TaskError
            reason = (
                f"exceeded its {task_timeout}s timeout" if timed_out
                else "failed (worker raised or died)"
            )
            failures[i] = error_cls(
                f"task {key_of(tasks[i])!r} {reason} after "
                f"{attempts[i]} attempt(s)",
                task=tasks[i],
                attempts=attempts[i],
                cause_traceback=tb,
            )
        else:
            report.retried += 1
            eligible[i] = time.monotonic() + policy.delay(
                attempts[i], key_of(tasks[i])
            )
            pending.append(i)

    try:
        while pending or running:
            now = time.monotonic()
            ready = sorted(i for i in pending if eligible[i] <= now)
            for i in ready[: max_workers - len(running)]:
                pending.remove(i)
                deadline = (
                    now + task_timeout if task_timeout else math.inf
                )
                running[pool.submit(worker, tasks[i])] = (i, deadline)

            if not running:
                # Everything left is backing off; sleep to the first gate.
                wake = min(eligible[i] for i in pending)
                sleep(max(wake - time.monotonic(), _POLL_INTERVAL))
                continue

            wait_timeout = None
            next_deadline = min(dl for _, dl in running.values())
            if next_deadline < math.inf:
                wait_timeout = max(next_deadline - time.monotonic(), 0.0)
            if pending:
                soonest = min(eligible[i] for i in pending)
                window = max(soonest - time.monotonic(), _POLL_INTERVAL)
                wait_timeout = (
                    window if wait_timeout is None
                    else min(wait_timeout, window)
                )
            done, _ = wait(
                set(running), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )

            pool_broken = False
            for future in done:
                i, _deadline = running.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    fail_attempt(i, None, timed_out=False)
                except Exception:
                    fail_attempt(
                        i, traceback.format_exc(), timed_out=False
                    )
                else:
                    record(i, result)

            if pool_broken:
                # The dying worker poisoned the whole pool: every
                # in-flight sibling failed with it. Retry them all on a
                # fresh pool.
                for future, (i, _deadline) in list(running.items()):
                    fail_attempt(i, None, timed_out=False)
                running.clear()
                _terminate_pool(pool, kill=False)
                pool = make_pool()
                continue

            now = time.monotonic()
            expired = {
                future
                for future, (_i, deadline) in running.items()
                if deadline <= now
            }
            if expired:
                # A hung worker can only be reclaimed by terminating it,
                # which takes the pool down; innocent in-flight siblings
                # are requeued without being charged an attempt.
                for future, (i, _deadline) in list(running.items()):
                    if future in expired:
                        fail_attempt(i, None, timed_out=True)
                    else:
                        pending.append(i)
                running.clear()
                _terminate_pool(pool, kill=True)
                pool = make_pool()
    finally:
        _terminate_pool(pool, kill=False)
        if publication is not None:
            publication.close()

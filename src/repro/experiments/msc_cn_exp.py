"""Supplementary experiment: the MSC-CN special case (paper §IV).

The paper proves MSC-CN is submodular and that greedy achieves
``(1 - 1/e)`` of optimal (Theorem 5), but reports no evaluation for it. This
supplementary experiment fills that gap on the disaster-recovery workload of
the introduction: a control center with many rescue-team partners. It
compares the dedicated max-coverage solver against the general algorithms
and, on small instances, against the exact optimum — empirically confirming
the theorem's bound.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.msc_cn import solve_msc_cn, solve_msc_cn_exact
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.sandwich import SandwichApproximation
from repro.exceptions import SolverError
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import rg_workload
from repro.netgen.pairs import select_common_node_pairs
from repro.util.rng import SeedLike

APPROX = 1 - 1 / math.e


def run_msc_cn(scale: str = "paper", seed: SeedLike = 1) -> ExperimentResult:
    """MSC-CN: greedy coverage vs general AA vs random (vs exact when
    feasible). Expected: greedy ≈ AA ≫ random, and greedy within
    ``(1 - 1/e)`` of exact wherever exact is computable."""
    if scale == "paper":
        n, m, budgets, instances = 100, 25, [2, 4, 6, 8], 5
    else:
        n, m, budgets, instances = 40, 8, [2, 3], 2
    result = ExperimentResult(
        name="msc_cn",
        title="MSC-CN (common node): coverage greedy vs general solvers",
        params={
            "scale": scale, "seed": seed, "n": n, "m": m,
            "k": budgets, "instances": instances,
        },
    )
    rows: List[List[object]] = []
    bound_ok = True
    for i in range(instances):
        workload = rg_workload(seed=(seed, "cn", i), n=n)
        graph = workload.graph
        # Common node: a node on the periphery so partners are far away.
        common = min(
            workload.positions,
            key=lambda v: workload.positions[v][0] + workload.positions[v][1],
        )
        p_t = 0.1
        try:
            pairs = select_common_node_pairs(
                graph, common, m=m, p_threshold=p_t,
                seed=(seed, "cn-pairs", i), oracle=workload.oracle,
            )
        except Exception:
            continue  # peripheral node with too few distant partners
        for k in budgets:
            instance = MSCInstance(
                graph, pairs, k, p_threshold=p_t, oracle=workload.oracle
            )
            cn = solve_msc_cn(instance)
            aa = SandwichApproximation(instance).solve()
            rnd = solve_random_baseline(
                instance, seed=(seed, "cn-rnd", i, k), trials=100
            )
            exact_sigma: object = "-"
            try:
                exact_sigma = solve_msc_cn_exact(instance).sigma
                if cn.sigma < APPROX * exact_sigma - 1e-9:
                    bound_ok = False
            except SolverError:
                pass  # search space beyond the work limit; skip this cell
            rows.append(
                [i, k, cn.sigma, aa.sigma, rnd.sigma, exact_sigma]
            )
    result.add_table(
        "MSC-CN comparison",
        ["instance", "k", "coverage greedy", "AA", "random", "exact"],
        rows,
    )
    result.notes.append(
        "greedy within (1-1/e) of exact wherever exact computed: "
        + ("yes" if bound_ok else "NO — Theorem 5 violated?!")
    )
    return result

"""Canonical workloads shared by the table/figure experiments.

Every experiment in the paper draws from three workload families (RG graph,
Gowalla-Austin, tactical traces). The builders here fix the calibrated
generator parameters (see DESIGN.md §5) and expose exactly the knobs the
paper varies: threshold ``p_t``, pair count ``m``, budget ``k``, time
instances ``T``, and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.problem import MSCInstance
from repro.core.substrate import PlacementRequest, Substrate
from repro.dynamics.series import DynamicMSCInstance
from repro.experiments import shm
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.paths import graph_csr
from repro.netgen.geometric import GeometricNetwork, random_geometric_network
from repro.netgen.gowalla import gowalla_network
from repro.netgen.pairs import select_important_pairs
from repro.netgen.tactical import (
    TacticalConfig,
    generate_tactical_trace,
    tactical_topology_series,
)
from repro.util.rng import SeedLike, ensure_rng, spawn_rng

#: Calibrated RG parameters (unit square; paper §VII-A1/A3).
RG_RADIUS = 0.2
RG_MAX_LINK_FAILURE = 0.08

#: Tactical parameters (meters; paper §VII-A2, Fig. 5 scale).
TACTICAL_RADIUS_METERS = 250.0
TACTICAL_MAX_LINK_FAILURE = 0.15

#: The synthetic Gowalla stand-in plays the role of a *fixed dataset* (the
#: paper's Austin-evening cut), so it has one canonical generation seed;
#: experiment seeds only drive pair sampling. Generating with another seed
#: is possible but changes the "dataset".
GOWALLA_DATASET_SEED = 42


@dataclass
class Workload:
    """A prepared static workload: graph (+ oracle) ready for pair/instance
    sampling at several thresholds."""

    graph: WirelessGraph
    oracle: DistanceOracle
    name: str
    positions: Optional[dict] = None
    _substrate: Optional[Substrate] = None

    def substrate(self) -> Substrate:
        """The workload's shared :class:`Substrate` (built on first use).

        Shortcut engines depend only on the oracle and the shortcut set —
        never on pairs or thresholds — so one substrate (and its engine
        LRU) safely serves every instance sampled from this workload, and
        a multi-threshold sweep reuses engines across its cells.
        """
        if self._substrate is None:
            self._substrate = Substrate(self.graph, self.oracle)
        return self._substrate

    def instance(
        self,
        p_threshold: float,
        m: int,
        k: int,
        seed: SeedLike = None,
    ) -> MSCInstance:
        """Sample *m* important pairs at *p_threshold* and build the
        instance with budget *k* (sharing the workload substrate)."""
        pairs = select_important_pairs(
            self.graph, m, p_threshold, seed=seed, oracle=self.oracle
        )
        return MSCInstance.from_parts(
            self.substrate(),
            PlacementRequest(pairs, k, p_threshold=p_threshold),
        )


def rg_workload_key(
    seed: SeedLike,
    n: int,
    radius: float = RG_RADIUS,
    max_link_failure: float = RG_MAX_LINK_FAILURE,
) -> str:
    """Shared-memory key of an RG workload: the full generator recipe."""
    return (
        f"workload:rg:{seed!r}:n={n}:r={radius!r}:f={max_link_failure!r}"
    )


def gowalla_workload_key(seed: SeedLike = None) -> str:
    """Shared-memory key of the (default-parameter) Gowalla workload."""
    if seed is None:
        seed = GOWALLA_DATASET_SEED
    return f"workload:gowalla:{seed!r}"


def workload_arrays(workload: Workload) -> Dict[str, np.ndarray]:
    """The workload's publishable array form (see :mod:`.shm`): CSR
    adjacency, integer node labels, the APSP matrix, and — when the
    generator recorded them — node positions in dense-index order.

    Materializes ``oracle.matrix`` so adopters skip the n Dijkstra sweeps.
    """
    indptr, indices, data = graph_csr(workload.graph)
    nodes = workload.graph.nodes
    arrays: Dict[str, np.ndarray] = {
        "indptr": indptr,
        "indices": indices,
        "data": data,
        "nodes": np.asarray(
            [int(label) for label in nodes], dtype=np.int64
        ),
        "matrix": workload.oracle.matrix,
    }
    if workload.positions:
        arrays["positions"] = np.asarray(
            [workload.positions[label] for label in nodes], dtype=float
        )
    return arrays


def _adopt_workload(key: str, name: str, n: Optional[int]) -> (
    Optional[Workload]
):
    """Warm-start a workload from arrays published under *key*, or
    ``None`` when nothing is published in this process.

    The rebuilt graph and adopted-matrix oracle are byte-identical to a
    from-scratch build (the CSR round trip preserves node order and edge
    lengths; the matrix was computed by the same oracle in the parent), so
    downstream sampling and solving are unaffected. The adoption is
    memoized per process — one worker handling several tasks over the same
    workload rebuilds it once, not once per task.
    """
    payload = shm.maybe_get(key)
    if payload is None:
        return None
    if n is not None and len(payload["indptr"]) - 1 != n:
        return None  # stale publication; never adopt mismatched data

    def rebuild() -> Workload:
        graph = WirelessGraph.from_adjacency_arrays(
            payload["indptr"],
            payload["indices"],
            payload["data"],
            nodes=[int(label) for label in payload["nodes"]],
        )
        oracle = DistanceOracle.with_matrix(graph, payload["matrix"])
        published = payload.get("positions")
        positions = (
            {
                label: (float(xy[0]), float(xy[1]))
                for label, xy in zip(graph.nodes, published)
            }
            if published is not None
            else None
        )
        return Workload(
            graph=graph, oracle=oracle, name=name, positions=positions
        )

    return shm.memo(("workload", key), rebuild)


def rg_workload(
    seed: SeedLike = None,
    *,
    n: int = 100,
    radius: float = RG_RADIUS,
    max_link_failure: float = RG_MAX_LINK_FAILURE,
) -> Workload:
    """The paper's Random Geometric workload (n=100 default).

    Consults the shared-memory registry first: when the exact generator
    recipe was published (see :func:`workload_arrays` and the runner's
    warm start), the graph and APSP matrix are adopted instead of
    regenerated — byte-identical output, zero Dijkstra runs.
    """
    adopted = _adopt_workload(
        rg_workload_key(seed, n, radius, max_link_failure), "rg", n
    )
    if adopted is not None:
        return adopted
    net: GeometricNetwork = random_geometric_network(
        n,
        radius=radius,
        max_link_failure=max_link_failure,
        seed=seed,
    )
    return Workload(
        graph=net.graph,
        oracle=DistanceOracle(net.graph),
        name="rg",
        positions=net.positions,
    )


def gowalla_workload(seed: SeedLike = None, **synth_kwargs) -> Workload:
    """The paper's Gowalla-Austin workload (synthetic substitute by
    default; see DESIGN.md §5).

    *seed* defaults to :data:`GOWALLA_DATASET_SEED` — the canonical
    "dataset" generation — because the paper's Gowalla network is one fixed
    graph, not a resampled model. Default-parameter builds adopt the
    shared-memory publication when present (same warm start as
    :func:`rg_workload`); custom ``synth_kwargs`` always rebuild.
    """
    if seed is None:
        seed = GOWALLA_DATASET_SEED
    if not synth_kwargs:
        adopted = _adopt_workload(
            gowalla_workload_key(seed), "gowalla", None
        )
        if adopted is not None:
            return adopted
    graph, positions = gowalla_network(seed=seed, **synth_kwargs)
    return Workload(
        graph=graph,
        oracle=DistanceOracle(graph),
        name="gowalla",
        positions=positions,
    )


def tactical_dynamic_instance(
    p_threshold: float,
    m: int,
    k: int,
    T: int,
    seed: SeedLike = None,
    *,
    n: int = 50,
    radius_meters: float = TACTICAL_RADIUS_METERS,
    max_link_failure: float = TACTICAL_MAX_LINK_FAILURE,
    config: Optional[TacticalConfig] = None,
) -> DynamicMSCInstance:
    """The paper's dynamic tactical workload (Fig. 5 scale by default).

    Generates an RPGM trace with *T* snapshots and samples *m* important
    pairs per topology among the pairs violating *p_threshold* there.
    """
    rng = ensure_rng(seed)
    if config is None:
        config = TacticalConfig(n_nodes=n, snapshots=T)
    trace = generate_tactical_trace(config, seed=spawn_rng(rng, "trace"))
    graphs = tactical_topology_series(
        trace,
        radius_meters,
        max_link_failure=max_link_failure,
    )
    instances: List[MSCInstance] = []
    pair_rng = spawn_rng(rng, "pairs")
    for graph in graphs:
        oracle = DistanceOracle(graph)
        pairs = select_important_pairs(
            graph, m, p_threshold, seed=pair_rng, oracle=oracle
        )
        instances.append(
            MSCInstance(
                graph, pairs, k, p_threshold=p_threshold, oracle=oracle
            )
        )
    return DynamicMSCInstance(instances)

"""Fig. 3: AA vs. EA vs. AEA — maintained connections as a function of k
under different p_t, on the RG graph (a) and Gowalla (b) (paper §VII-D;
r=500, l=10, δ=0.05).

As in fig2, each ``(workload, p_t)`` cell derives every seed from its own
tuple, so cells fan out across processes with byte-identical results.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.aea import AdaptiveEvolutionaryAlgorithm
from repro.core.ea import EvolutionaryAlgorithm
from repro.core.sandwich import SandwichApproximation
from repro.experiments.config import Scale, get_scale
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import (
    Workload,
    gowalla_workload,
    rg_workload,
)
from repro.util.rng import SeedLike

AEA_POOL = 10
AEA_DELTA = 0.05


def _workload_for(kind: str, seed, preset: Scale) -> Tuple[Workload, int]:
    if kind == "rg":
        return rg_workload(seed=seed, n=preset.rg_n), preset.fig3_m_rg
    return gowalla_workload(), preset.fig3_m_gw


def _sweep_cell(task) -> Tuple[List[int], List[int], List[int]]:
    """One p_t column: AA, EA and AEA σ per budget."""
    scale, seed, kind, p_t = task
    preset = get_scale(scale)
    workload, m = _workload_for(kind, seed, preset)
    budgets = list(preset.fig3_k)
    iterations = preset.fig3_iterations
    instance = workload.instance(
        p_t, m=m, k=max(budgets), seed=(seed, workload.name, p_t)
    )
    aa_values, ea_values, aea_values = [], [], []
    for k in budgets:
        aa_values.append(SandwichApproximation(instance).solve(k=k).sigma)
        ea_values.append(
            EvolutionaryAlgorithm(
                instance,
                iterations=iterations,
                seed=(seed, "ea", p_t, k),
            ).solve(k=k).sigma
        )
        aea_values.append(
            AdaptiveEvolutionaryAlgorithm(
                instance,
                iterations=iterations,
                pool_size=AEA_POOL,
                delta=AEA_DELTA,
                seed=(seed, "aea", p_t, k),
            ).solve(k=k).sigma
        )
    return aa_values, ea_values, aea_values


def _sweep(
    scale: str,
    seed,
    kind: str,
    p_values: Sequence[float],
    jobs: int,
) -> List[tuple]:
    cells = fanout(
        _sweep_cell,
        [(scale, seed, kind, p_t) for p_t in p_values],
        jobs=jobs,
    )
    series = []
    for p_t, (aa_values, ea_values, aea_values) in zip(p_values, cells):
        series.append((f"AA p_t={p_t}", aa_values))
        series.append((f"EA p_t={p_t}", ea_values))
        series.append((f"AEA p_t={p_t}", aea_values))
    return series


def run_fig3(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Fig. 3. Expected shape: σ grows with k and p_t;
    AEA ≳ AA and both clearly above EA at the paper's r=500."""
    preset: Scale = get_scale(scale)
    budgets = list(preset.fig3_k)
    result = ExperimentResult(
        name="fig3",
        title="Maintained connections: AA vs EA vs AEA over k",
        params={
            "scale": scale,
            "seed": seed,
            "k": budgets,
            "iterations": preset.fig3_iterations,
            "pool_size": AEA_POOL,
            "delta": AEA_DELTA,
            "m_rg": preset.fig3_m_rg,
            "m_gowalla": preset.fig3_m_gw,
        },
    )

    result.add_series(
        f"(a) RG graph, n={preset.rg_n}, m={preset.fig3_m_rg}",
        "k",
        budgets,
        _sweep(scale, seed, "rg", preset.fig3_rg_p, jobs),
    )
    gowalla = gowalla_workload()
    result.add_series(
        f"(b) Gowalla, n={gowalla.graph.number_of_nodes()}, "
        f"m={preset.fig3_m_gw}",
        "k",
        budgets,
        _sweep(scale, seed, "gowalla", preset.fig3_gw_p, jobs),
    )
    return result

"""Table II: data-dependent approximation ratio σ(F_ν)/ν(F_ν) on the
Gowalla-Austin network (paper §VII-B, n=134, m=63).

Columns fan out per ``p_t`` exactly as in Table I (see table1.py for the
worker/factory pattern)."""

from __future__ import annotations

from typing import List

from repro.core.ratio import RatioReport, ratio_grid
from repro.experiments.config import Scale, get_scale
from repro.experiments.parallel import fanout
from repro.experiments.results import ExperimentResult
from repro.experiments.table1 import _grid_draws
from repro.experiments.workloads import gowalla_workload
from repro.util.rng import SeedLike


def _grid_column(task) -> List[RatioReport]:
    """One p_t column of Table II (module-level, picklable)."""
    scale, seed, p_t = task
    preset = get_scale(scale)
    workload = gowalla_workload()
    budgets = list(preset.table2_k)
    max_k = max(budgets)

    def factory(p: float, draw: int):
        return workload.instance(
            p, m=preset.table2_m, k=max_k, seed=(seed, p, draw)
        )

    return ratio_grid(
        factory, [p_t], budgets, draws=_grid_draws(scale)
    )[p_t]


def run_table2(
    scale: str = "paper", seed: SeedLike = 1, jobs: int = 1
) -> ExperimentResult:
    """Regenerate Table II.

    Expected shape (paper): ratios generally larger than on the RG graph
    (0.17–0.57), again decreasing with k.
    """
    preset: Scale = get_scale(scale)
    workload = gowalla_workload()
    budgets = list(preset.table2_k)
    draws = _grid_draws(scale)
    columns = fanout(
        _grid_column,
        [(scale, seed, p_t) for p_t in preset.table2_p],
        jobs=jobs,
    )
    grid = dict(zip(preset.table2_p, columns))

    result = ExperimentResult(
        name="table2",
        title="σ(F_ν)/ν(F_ν) for Gowalla dataset (synthetic substitute)",
        params={
            "scale": scale,
            "seed": seed,
            "n": workload.graph.number_of_nodes(),
            "e": workload.graph.number_of_edges(),
            "m": preset.table2_m,
            "p_t": list(preset.table2_p),
            "k": budgets,
        },
    )
    headers = ["k"] + [f"p_t={p}" for p in preset.table2_p]
    rows = []
    for i, k in enumerate(budgets):
        rows.append([k] + [grid[p][i].ratio for p in preset.table2_p])
    result.add_table("Table II", headers, rows)
    result.params["draws"] = draws

    from repro.experiments.table1 import _trend_note

    result.notes.append(_trend_note(grid, preset.table2_p, budgets))
    return result

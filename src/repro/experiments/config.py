"""Experiment scale presets.

``paper`` reproduces each experiment at the parameters reported in §VII;
``quick`` shrinks iteration counts and grids so the full suite (and the
pytest benchmarks built on it) runs in seconds while exercising identical
code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Scale:
    """One named scale preset. Fields mirror the knobs the paper varies."""

    name: str
    # Table I (RG ratio grid)
    table1_p: Sequence[float]
    table1_k: Sequence[int]
    table1_m: int
    # Table II (Gowalla ratio grid)
    table2_p: Sequence[float]
    table2_k: Sequence[int]
    table2_m: int
    # Fig 1 (placement showcase)
    fig1_n: int
    fig1_m: int
    fig1_k: int
    fig1_p: float
    # Fig 2 (AA vs random)
    fig2_k: Sequence[int]
    fig2_rg_p: Sequence[float]
    fig2_gw_p: Sequence[float]
    fig2_m_rg: int
    fig2_m_gw: int
    fig2_trials: int
    # Fig 3 (AA vs EA vs AEA over k)
    fig3_k: Sequence[int]
    fig3_rg_p: Sequence[float]
    fig3_gw_p: Sequence[float]
    fig3_m_rg: int
    fig3_m_gw: int
    fig3_iterations: int
    # Fig 4 (iteration sweep)
    fig4_checkpoints: Sequence[int]
    fig4_k: Sequence[int]
    fig4_rg_p: float
    fig4_gw_p: float
    # Fig 5 (dynamic)
    fig5_n: int
    fig5_m: int
    fig5_T: int
    fig5_k: Sequence[int]
    fig5_p: Sequence[float]
    fig5_iterations: int
    fig5_T_sweep: Sequence[int]
    fig5_T_k: Sequence[int]
    fig5_T_p: float
    rg_n: int = 100


PAPER = Scale(
    name="paper",
    table1_p=(0.04, 0.08, 0.11, 0.14, 0.18),
    table1_k=(2, 4, 6, 8, 10),
    table1_m=17,
    table2_p=(0.23, 0.27, 0.31, 0.35),
    table2_k=(2, 4, 6, 8, 10),
    table2_m=63,
    fig1_n=50,
    fig1_m=12,
    fig1_k=3,
    fig1_p=0.08,
    fig2_k=(2, 4, 6, 8, 10),
    fig2_rg_p=(0.08, 0.14),
    fig2_gw_p=(0.23, 0.31),
    fig2_m_rg=80,
    fig2_m_gw=76,
    fig2_trials=500,
    fig3_k=(2, 4, 6, 8, 10),
    fig3_rg_p=(0.08, 0.14, 0.18),
    fig3_gw_p=(0.23, 0.27, 0.31),
    fig3_m_rg=80,
    fig3_m_gw=76,
    fig3_iterations=500,
    fig4_checkpoints=(25, 50, 100, 200, 300, 400, 500),
    fig4_k=(4, 8),
    fig4_rg_p=0.14,
    fig4_gw_p=0.23,
    fig5_n=50,
    fig5_m=30,
    fig5_T=30,
    fig5_k=(5, 10, 15, 20),
    fig5_p=(0.11, 0.12),
    fig5_iterations=500,
    fig5_T_sweep=(5, 10, 15, 20, 25, 30),
    fig5_T_k=(10, 20),
    fig5_T_p=0.12,
)

QUICK = Scale(
    name="quick",
    table1_p=(0.08, 0.14),
    table1_k=(2, 4),
    table1_m=12,
    table2_p=(0.23, 0.31),
    table2_k=(2, 4),
    table2_m=25,
    fig1_n=40,
    fig1_m=8,
    fig1_k=2,
    fig1_p=0.08,
    fig2_k=(2, 4),
    fig2_rg_p=(0.08,),
    fig2_gw_p=(0.23,),
    fig2_m_rg=25,
    fig2_m_gw=25,
    fig2_trials=60,
    fig3_k=(2, 4),
    fig3_rg_p=(0.08,),
    fig3_gw_p=(0.23,),
    fig3_m_rg=25,
    fig3_m_gw=25,
    fig3_iterations=60,
    fig4_checkpoints=(10, 20, 40, 60),
    fig4_k=(4,),
    fig4_rg_p=0.14,
    fig4_gw_p=0.23,
    fig5_n=30,
    fig5_m=10,
    fig5_T=6,
    fig5_k=(3, 6),
    fig5_p=(0.11,),
    fig5_iterations=40,
    fig5_T_sweep=(2, 4, 6),
    fig5_T_k=(4,),
    fig5_T_p=0.12,
    rg_n=60,
)

SCALES: Dict[str, Scale] = {"paper": PAPER, "quick": QUICK}


def get_scale(name: str) -> Scale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValidationError(
            f"unknown scale {name!r}; available: {', '.join(sorted(SCALES))}"
        ) from None

"""Experiment harness: one runner per table/figure of the paper (§VII),
supplementary studies, multi-seed aggregation, and markdown reporting."""

from repro.experiments.report import build_report, write_report
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import (
    EXPERIMENTS,
    SUPPLEMENTARY,
    all_experiment_names,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.stats import aggregate_results, run_with_seeds

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "SUPPLEMENTARY",
    "experiment_names",
    "all_experiment_names",
    "get_experiment",
    "run_experiment",
    "aggregate_results",
    "run_with_seeds",
    "build_report",
    "write_report",
]

"""Ablation experiments for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* the algorithms behave as they
do, at paper-adjacent scale:

* ``sandwich``: how often each of the three greedy components (μ, σ, ν)
  supplies the winning placement, and how much the sandwich gains over
  σ-greedy alone (the point of §V-B's construction).
* ``aea``: sensitivity to the exploration mix δ and the pool size l
  (Algorithm 2's two tunables).
* ``ea_mutation``: EA with the paper's ``2/(n(n-1))`` flip rate versus
  heavier mutation — validating the GSEMO parameterization.
"""

from __future__ import annotations

from collections import Counter
from repro.core.aea import (
    AdaptiveEvolutionaryAlgorithm,
    solve_aea,
    solve_aea_warmstart,
)
from repro.core.ea import EvolutionaryAlgorithm
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.sandwich import SandwichApproximation
from repro.experiments.results import ExperimentResult
from repro.experiments.workloads import gowalla_workload, rg_workload
from repro.util.rng import SeedLike

ABLATION_INSTANCES = 8


def run_ablation_sandwich(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Which sandwich component wins, and the gain over σ-greedy alone."""
    n = 100 if scale == "paper" else 50
    m = 40 if scale == "paper" else 15
    instances = ABLATION_INSTANCES if scale == "paper" else 3
    result = ExperimentResult(
        name="ablation_sandwich",
        title="Sandwich components: who wins, and vs σ-greedy alone",
        params={"scale": scale, "seed": seed, "n": n, "m": m,
                "instances": instances},
    )
    winners: Counter = Counter()
    rows = []
    for i in range(instances):
        workload = rg_workload(seed=(seed, "abl", i), n=n)
        instance = workload.instance(0.1, m=m, k=5, seed=(seed, i))
        aa = SandwichApproximation(instance)
        solved = aa.solve()
        winners[solved.extras["winner"]] += 1
        rows.append(
            [
                i,
                solved.extras["sigma_mu"],
                solved.extras["sigma_sigma"],
                solved.extras["sigma_nu"],
                solved.sigma,
                solved.extras["winner"],
            ]
        )
    result.add_table(
        "Per-instance component values",
        ["instance", "σ(F_μ)", "σ(F_σ)", "σ(F_ν)", "best", "winner"],
        rows,
    )
    result.add_table(
        "Winner counts",
        ["component", "wins"],
        [[name, count] for name, count in sorted(winners.items())],
    )
    gain = sum(r[4] - r[2] for r in rows)
    result.notes.append(
        f"sandwich gain over σ-greedy alone across instances: +{gain} pairs"
    )
    return result


def run_ablation_aea(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """AEA sensitivity to δ (exploration mix) and pool size l."""
    iterations = 300 if scale == "paper" else 40
    workload = rg_workload(seed=(seed, "aea"), n=100 if scale == "paper" else 50)
    instance = workload.instance(
        0.1, m=40 if scale == "paper" else 15, k=6, seed=(seed, "aea-pairs")
    )
    result = ExperimentResult(
        name="ablation_aea",
        title="AEA sensitivity to δ and pool size l",
        params={
            "scale": scale,
            "seed": seed,
            "iterations": iterations,
            "instance": instance.describe(),
        },
    )
    deltas = [0.0, 0.05, 0.2, 0.5, 1.0]
    delta_rows = []
    for delta in deltas:
        solved = AdaptiveEvolutionaryAlgorithm(
            instance,
            iterations=iterations,
            delta=delta,
            seed=(seed, "delta", delta),
        ).solve()
        delta_rows.append([delta, solved.sigma, solved.evaluations])
    result.add_table(
        "δ sweep (l=10)", ["delta", "sigma", "evaluations"], delta_rows
    )

    pools = [1, 5, 10, 20]
    pool_rows = []
    for pool in pools:
        solved = AdaptiveEvolutionaryAlgorithm(
            instance,
            iterations=iterations,
            pool_size=pool,
            seed=(seed, "pool", pool),
        ).solve()
        pool_rows.append([pool, solved.sigma])
    result.add_table("pool-size sweep (δ=0.05)", ["l", "sigma"], pool_rows)
    best_delta = max(delta_rows, key=lambda r: r[1])
    result.notes.append(
        f"best δ on this instance: {best_delta[0]} (σ={best_delta[1]}); "
        "the paper's δ=0.05 keeps swaps mostly greedy"
    )
    return result


def run_ablation_warmstart(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """Cold vs warm-started AEA across instances.

    Cold AEA (the paper's Algorithm 2) initializes randomly and can settle
    below AA; warm-starting the pool from the AA placement makes
    ``σ(AEA) ≥ σ(AA)`` by construction. This study measures how often the
    warm start matters and whether AEA ever improves *on top of* AA.
    """
    if scale == "paper":
        n, m, k, iterations, instances = 100, 40, 6, 300, 6
    else:
        n, m, k, iterations, instances = 40, 12, 3, 40, 2
    result = ExperimentResult(
        name="ablation_warmstart",
        title="AEA initialization: cold (paper) vs warm-started from AA",
        params={
            "scale": scale, "seed": seed, "n": n, "m": m, "k": k,
            "iterations": iterations, "instances": instances,
        },
    )
    rows = []
    cold_below_aa = warm_above_aa = 0
    for i in range(instances):
        workload = rg_workload(seed=(seed, "warm", i), n=n)
        instance = workload.instance(0.1, m=m, k=k, seed=(seed, "wp", i))
        aa = SandwichApproximation(instance).solve()
        cold = solve_aea(
            instance, seed=(seed, "cold", i), iterations=iterations
        )
        warm = solve_aea_warmstart(
            instance, seed=(seed, "warmr", i), iterations=iterations
        )
        cold_below_aa += int(cold.sigma < aa.sigma)
        warm_above_aa += int(warm.sigma > aa.sigma)
        rows.append([i, aa.sigma, cold.sigma, warm.sigma])
    result.add_table(
        "per-instance σ",
        ["instance", "AA", "cold AEA", "warm AEA"],
        rows,
    )
    result.notes.append(
        f"cold AEA fell below AA on {cold_below_aa}/{instances} instances;"
        f" warm AEA strictly improved on AA on {warm_above_aa}/{instances}"
        " (and never fell below it, by construction)"
    )
    return result


def run_ablation_ea_mutation(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """EA budget sensitivity: the paper's single-expected-flip GSEMO rate
    at several iteration budgets (mutation strength is fixed by the
    algorithm; what varies in practice is how long you run it)."""
    workload = rg_workload(seed=(seed, "ea"), n=100 if scale == "paper" else 50)
    instance = workload.instance(
        0.1, m=40 if scale == "paper" else 15, k=6, seed=(seed, "ea-pairs")
    )
    budgets = [100, 300, 1000] if scale == "paper" else [20, 60]
    rows = []
    sigma = SigmaEvaluator(instance)
    greedy_value = sigma.value(greedy_placement(sigma, instance.k))
    for r in budgets:
        # One shared seed: a run of length r replays the prefix of a longer
        # run, so the sweep samples a single trajectory (monotone by
        # construction) instead of comparing unrelated random runs.
        solved = EvolutionaryAlgorithm(
            instance, iterations=r, seed=(seed, "ea-run")
        ).solve()
        rows.append([r, solved.sigma, solved.extras["archive_size"]])
    result = ExperimentResult(
        name="ablation_ea_mutation",
        title="EA iteration budget vs achieved σ (σ-greedy reference)",
        params={
            "scale": scale,
            "seed": seed,
            "greedy_sigma": greedy_value,
            "instance": instance.describe(),
        },
    )
    result.add_table(
        "iteration sweep", ["r", "sigma", "archive_size"], rows
    )
    result.notes.append(
        f"σ-greedy reference on this instance: {greedy_value}; EA needs "
        "far more iterations to approach it (paper Fig. 4's message)"
    )
    return result

"""Supplementary experiment: MSC algorithms on general (non-geometric)
graphs.

The paper's conclusion claims the algorithms "could also provide insights
into the general shortcut edge addition problems in any graphs". This study
runs the full algorithm suite on Erdős–Rényi and Barabási–Albert networks
with i.i.d. link failures (no geometry at all) and checks that the central
orderings survive: AA and AEA above EA and random, all improving with k,
with the sandwich certificate ratio remaining informative.
"""

from __future__ import annotations

from typing import List

from repro.core.aea import AdaptiveEvolutionaryAlgorithm
from repro.core.ea import EvolutionaryAlgorithm
from repro.core.problem import MSCInstance
from repro.core.random_baseline import solve_random_baseline
from repro.core.ratio import sandwich_ratio
from repro.core.sandwich import SandwichApproximation
from repro.exceptions import InstanceError
from repro.experiments.results import ExperimentResult
from repro.graph.distances import DistanceOracle
from repro.netgen.general import barabasi_albert_network, erdos_renyi_network
from repro.netgen.pairs import select_important_pairs
from repro.util.rng import SeedLike


def run_generality(
    scale: str = "paper", seed: SeedLike = 1
) -> ExperimentResult:
    """AA / EA / AEA / random on ER and BA graphs, over budgets."""
    if scale == "paper":
        n, m, budgets, iterations, trials = 100, 40, (2, 5, 8), 300, 300
    else:
        n, m, budgets, iterations, trials = 40, 10, (2, 4), 40, 40
    p_t = 0.15

    networks = [
        (
            "erdos-renyi",
            erdos_renyi_network(
                n, 4.0 / n, failure_range=(0.02, 0.12),
                seed=(seed, "er"),
            ),
        ),
        (
            "barabasi-albert",
            barabasi_albert_network(
                n, 2, failure_range=(0.02, 0.12), seed=(seed, "ba")
            ),
        ),
    ]

    result = ExperimentResult(
        name="generality",
        title="MSC on general graphs (ER / BA)",
        params={
            "scale": scale, "seed": seed, "n": n, "m": m,
            "k": list(budgets), "p_t": p_t,
            "iterations": iterations,
        },
    )
    rows: List[List[object]] = []
    for label, graph in networks:
        oracle = DistanceOracle(graph)
        try:
            pairs = select_important_pairs(
                graph, m, p_t, seed=(seed, label), oracle=oracle
            )
        except InstanceError:
            result.notes.append(
                f"{label}: fewer than {m} violating pairs; skipped"
            )
            continue
        for k in budgets:
            instance = MSCInstance(
                graph, pairs, k, p_threshold=p_t, oracle=oracle
            )
            aa = SandwichApproximation(instance).solve()
            ea = EvolutionaryAlgorithm(
                instance, iterations=iterations, seed=(seed, "ea", label, k)
            ).solve()
            aea = AdaptiveEvolutionaryAlgorithm(
                instance, iterations=iterations,
                seed=(seed, "aea", label, k),
            ).solve()
            rnd = solve_random_baseline(
                instance, seed=(seed, "rnd", label, k), trials=trials
            )
            ratio = sandwich_ratio(instance, k).ratio
            rows.append(
                [label, k, aa.sigma, aea.sigma, ea.sigma, rnd.sigma,
                 round(ratio, 4)]
            )
    result.add_table(
        "maintained connections by algorithm",
        ["network", "k", "AA", "AEA", "EA", "random", "ratio"],
        rows,
    )
    ok = all(
        row[2] >= row[5] and row[3] >= row[4] for row in rows
    )
    result.notes.append(
        "orderings AA >= random and AEA >= EA hold on every row: "
        + ("yes" if ok else "no")
    )
    return result

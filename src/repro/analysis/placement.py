"""Post-hoc analysis of a shortcut placement.

Answers the questions an operator asks after running a solver: *what is each
(expensive) shortcut edge actually buying us, and which placed edge is each
social pair relying on?* Used by the Gowalla example to demonstrate the
paper's community effect (§VII-D) quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.types import IndexPair, NodePair, normalize_index_pair


@dataclass(frozen=True)
class EdgeContribution:
    """Value attribution for one placed shortcut edge.

    Attributes:
        edge: the shortcut edge (node pair).
        solo_sigma: pairs maintained by this edge alone, σ({f}).
        marginal_sigma: pairs lost when removing this edge from the full
            placement, σ(F) - σ(F \\ {f}) — the edge's criticality.
    """

    edge: NodePair
    solo_sigma: int
    marginal_sigma: int


def _to_index_pairs(
    instance: MSCInstance, edges: Sequence[NodePair]
) -> List[IndexPair]:
    graph = instance.graph
    return [
        normalize_index_pair(graph.node_index(u), graph.node_index(v))
        for u, v in edges
    ]


def edge_contributions(
    instance: MSCInstance,
    edges: Sequence[NodePair],
    evaluator: Optional[SigmaEvaluator] = None,
) -> List[EdgeContribution]:
    """Solo and marginal σ contribution of every edge in a placement.

    Note that marginal contributions do not sum to σ(F): edges can be
    mutually redundant (both cover the same pairs → low marginals) or
    synergistic (a chain is worth more than its links → marginals can sum
    above the total for the pairs relying on several edges at once).
    """
    sigma = evaluator if evaluator is not None else SigmaEvaluator(instance)
    index_pairs = _to_index_pairs(instance, edges)
    full = sigma.value(index_pairs)
    out = []
    for i, edge in enumerate(edges):
        reduced = index_pairs[:i] + index_pairs[i + 1 :]
        out.append(
            EdgeContribution(
                edge=(edge[0], edge[1]),
                solo_sigma=sigma.value([index_pairs[i]]),
                marginal_sigma=full - sigma.value(reduced),
            )
        )
    return out


def pair_attribution(
    instance: MSCInstance,
    edges: Sequence[NodePair],
    evaluator: Optional[SigmaEvaluator] = None,
) -> Dict[NodePair, List[NodePair]]:
    """For each maintained pair, the placed edges it depends on.

    An edge is *load-bearing* for a pair when removing it breaks the pair's
    requirement. Pairs maintained redundantly (several disjoint rescues) map
    to an empty list — no single edge is critical for them.

    Returns:
        Mapping of maintained pairs to their critical edges (possibly
        empty); unmaintained pairs are absent.
    """
    sigma = evaluator if evaluator is not None else SigmaEvaluator(instance)
    index_pairs = _to_index_pairs(instance, edges)
    full_flags = sigma.satisfied(index_pairs)
    critical: Dict[NodePair, List[NodePair]] = {
        pair: []
        for pair, flag in zip(instance.pairs, full_flags)
        if flag
    }
    for i, edge in enumerate(edges):
        reduced = index_pairs[:i] + index_pairs[i + 1 :]
        reduced_flags = sigma.satisfied(reduced)
        for pair, was, now in zip(
            instance.pairs, full_flags, reduced_flags
        ):
            if was and not now:
                critical[pair].append((edge[0], edge[1]))
    return critical

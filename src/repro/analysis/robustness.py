"""Robustness of a placement under perturbed link conditions.

The paper's §VI motivates that real link conditions fluctuate. Beyond the
topology-series model, a cheaper sanity check is perturbation analysis: jitter
every link's failure probability and ask how many of the originally
maintained pairs survive. A placement whose pairs sit exactly on the
requirement boundary is fragile; one with slack keeps maintaining them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.failure.models import MAX_FAILURE_PROBABILITY, length_to_failure
from repro.graph.graph import WirelessGraph
from repro.types import NodePair, normalize_index_pair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_nonnegative, check_positive_int


@dataclass(frozen=True)
class RobustnessReport:
    """Outcome of :func:`perturbation_analysis`.

    Attributes:
        baseline_sigma: σ on the unperturbed instance.
        trials: number of perturbed re-evaluations.
        sigma_samples: σ of the same placement on each perturbed network.
        mean_sigma: average over the samples.
        worst_sigma: minimum over the samples.
    """

    baseline_sigma: int
    trials: int
    sigma_samples: List[int]

    @property
    def mean_sigma(self) -> float:
        return sum(self.sigma_samples) / len(self.sigma_samples)

    @property
    def worst_sigma(self) -> int:
        return min(self.sigma_samples)

    @property
    def retention(self) -> float:
        """Fraction of the baseline σ retained on average (1.0 when the
        baseline is 0 — nothing to lose)."""
        if self.baseline_sigma == 0:
            return 1.0
        return self.mean_sigma / self.baseline_sigma


def perturb_graph(
    graph: WirelessGraph, noise: float, rng
) -> WirelessGraph:
    """Copy of *graph* with every link failure probability multiplied by a
    uniform factor in ``[1 - noise, 1 + noise]`` (clamped below 1).

    Shortcut edges are *not* part of the base graph, so they stay perfectly
    reliable — matching the paper's premise that satellite/UAV links do not
    degrade with the wireless environment.
    """
    noise = check_nonnegative(noise, "noise")
    perturbed = WirelessGraph()
    perturbed.add_nodes(graph.nodes)
    for u, v, length in graph.edges:
        p = length_to_failure(length)
        factor = 1.0 + rng.uniform(-noise, noise)
        p_new = min(max(p * factor, 0.0), MAX_FAILURE_PROBABILITY)
        perturbed.add_edge(u, v, failure_probability=p_new)
    return perturbed


def perturbation_analysis(
    instance: MSCInstance,
    edges: Sequence[NodePair],
    *,
    noise: float = 0.2,
    trials: int = 20,
    seed: SeedLike = None,
) -> RobustnessReport:
    """Evaluate a placement's σ across *trials* perturbed copies of the
    network.

    Args:
        instance: the original instance (defines pairs, threshold, graph).
        edges: the placement to stress, as node pairs.
        noise: relative jitter applied to each link's failure probability.
        trials: number of perturbed networks.
        seed: RNG seed.
    """
    check_positive_int(trials, "trials")
    rng = ensure_rng(seed)
    baseline_eval = SigmaEvaluator(instance)
    graph = instance.graph
    index_pairs = [
        normalize_index_pair(graph.node_index(u), graph.node_index(v))
        for u, v in edges
    ]
    baseline = baseline_eval.value(index_pairs)

    samples: List[int] = []
    for _ in range(trials):
        perturbed = perturb_graph(graph, noise, rng)
        perturbed_instance = MSCInstance(
            perturbed,
            instance.pairs,
            instance.k,
            d_threshold=instance.d_threshold,
            require_initially_unsatisfied=False,
        )
        samples.append(
            SigmaEvaluator(perturbed_instance).value(index_pairs)
        )
    return RobustnessReport(
        baseline_sigma=baseline,
        trials=trials,
        sigma_samples=samples,
    )

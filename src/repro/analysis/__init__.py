"""Placement analysis: per-edge attribution and robustness evaluation."""

from repro.analysis.planner import PlacementPlanner
from repro.analysis.placement import (
    EdgeContribution,
    edge_contributions,
    pair_attribution,
)
from repro.analysis.robustness import RobustnessReport, perturbation_analysis

__all__ = [
    "EdgeContribution",
    "edge_contributions",
    "pair_attribution",
    "PlacementPlanner",
    "RobustnessReport",
    "perturbation_analysis",
]

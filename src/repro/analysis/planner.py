"""Interactive placement planner: what-if exploration with undo.

Solvers return a finished placement; operators often want to *steer* —
"what if I add a link here? which single link helps most now? undo that."
:class:`PlacementPlanner` wraps an instance with a mutable working
placement, live σ/coverage queries, best-next-edge suggestions, and an
undo stack. The Gowalla and tactical examples show the style of session it
supports.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.substrate import PlacementRequest, Substrate
from repro.exceptions import SolverError
from repro.types import IndexPair, NodePair, normalize_index_pair


class PlacementPlanner:
    """A mutable shortcut-placement session over one MSC instance.

    All mutating operations record themselves on an undo stack. Edges are
    given as node pairs at the API surface; the instance's budget ``k`` is
    advisory — the planner warns via :attr:`over_budget` instead of
    refusing, since what-if exploration legitimately overshoots.

    The default evaluator goes through the instance's **shared**
    :class:`~repro.core.substrate.EngineCache` (it used to hold a private
    one): every :meth:`add`/:meth:`remove`/σ query refreshes distances via
    the substrate's engine LRU, so a planner session on a served substrate
    sees the same cache hits as batch solves over it — an ``add`` after a
    batch greedy run extends the batch's cached engines incrementally
    instead of rebuilding from the APSP matrix.
    """

    def __init__(
        self,
        instance: MSCInstance,
        evaluator: Optional[SigmaEvaluator] = None,
    ) -> None:
        self.instance = instance
        self.evaluator = (
            evaluator if evaluator is not None else SigmaEvaluator(instance)
        )
        self._edges: List[IndexPair] = []
        self._undo: List[Tuple[str, IndexPair]] = []

    @classmethod
    def from_parts(
        cls, substrate: Substrate, request: PlacementRequest
    ) -> "PlacementPlanner":
        """Open a what-if session on a shared substrate (service form)."""
        return cls(MSCInstance.from_parts(substrate, request))

    @property
    def engine_cache(self):
        """The engine cache serving this session (shared with the
        substrate unless a custom evaluator was injected)."""
        return self.evaluator.engine_cache

    # ------------------------------------------------------------- helpers

    def _to_index_pair(self, u, v) -> IndexPair:
        graph = self.instance.graph
        if u == v:
            raise SolverError(f"shortcut self-loop on {u!r}")
        return normalize_index_pair(
            graph.node_index(u), graph.node_index(v)
        )

    # ------------------------------------------------------------ mutation

    def add(self, u, v) -> int:
        """Place a shortcut edge between *u* and *v*; returns the new σ.

        Adding an already-placed edge is rejected (it would be a no-op that
        silently burns budget)."""
        pair = self._to_index_pair(u, v)
        if pair in self._edges:
            raise SolverError(f"edge {u!r}-{v!r} already placed")
        self._edges.append(pair)
        self._undo.append(("add", pair))
        return self.sigma

    def remove(self, u, v) -> int:
        """Remove a placed shortcut edge; returns the new σ."""
        pair = self._to_index_pair(u, v)
        if pair not in self._edges:
            raise SolverError(f"edge {u!r}-{v!r} is not placed")
        self._edges.remove(pair)
        self._undo.append(("remove", pair))
        return self.sigma

    def undo(self) -> bool:
        """Revert the most recent add/remove; False when nothing to undo."""
        if not self._undo:
            return False
        action, pair = self._undo.pop()
        if action == "add":
            self._edges.remove(pair)
        else:
            self._edges.append(pair)
        return True

    def reset(self) -> None:
        """Clear the placement and the undo history."""
        self._edges.clear()
        self._undo.clear()

    def adopt(self, edges: Sequence[NodePair]) -> None:
        """Replace the working placement (e.g. with a solver's result);
        clears the undo history."""
        index_pairs = [self._to_index_pair(u, v) for u, v in edges]
        if len(set(index_pairs)) != len(index_pairs):
            raise SolverError("duplicate edges in adopted placement")
        self._edges = index_pairs
        self._undo.clear()

    # ------------------------------------------------------------- queries

    @property
    def edges(self) -> List[NodePair]:
        """The working placement as node pairs, in placement order."""
        return self.instance.edges_to_nodes(self._edges)

    @property
    def sigma(self) -> int:
        """σ of the working placement."""
        return int(self.evaluator.value(self._edges))

    @property
    def satisfied(self) -> List[bool]:
        return self.evaluator.satisfied(self._edges)

    @property
    def unsatisfied_pairs(self) -> List[NodePair]:
        return [
            pair
            for pair, flag in zip(self.instance.pairs, self.satisfied)
            if not flag
        ]

    @property
    def remaining_budget(self) -> int:
        return self.instance.k - len(self._edges)

    @property
    def over_budget(self) -> bool:
        return len(self._edges) > self.instance.k

    # ---------------------------------------------------------- suggestions

    def suggest(self, count: int = 5) -> List[Tuple[NodePair, int]]:
        """The *count* best next edges, as ``(edge, resulting σ)`` pairs,
        best first. Ties resolve toward lexicographically smaller edges.

        Only strictly improving candidates are returned, so the list may be
        shorter than *count* (empty at a local optimum)."""
        scores = np.asarray(
            self.evaluator.add_candidates(self._edges), dtype=float
        )
        n = self.instance.n
        current = float(scores[0, 0])
        invalid = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(invalid, True)
        invalid |= np.tri(n, dtype=bool)  # keep a < b only
        for a, b in self._edges:
            invalid[a, b] = True
        masked = np.where(invalid, -math.inf, scores)
        # Stable sort on the negated scores keeps equal-value candidates in
        # row-major (lexicographic) order, matching the greedy tie-break.
        flat = np.argsort(-masked, axis=None, kind="stable")
        out: List[Tuple[NodePair, int]] = []
        for index in flat[: max(count * 3, count)]:
            a, b = divmod(int(index), n)
            value = masked[a, b]
            if not math.isfinite(value) or value <= current + 1e-9:
                break
            out.append(
                (self.instance.index_pair_to_nodes((a, b)), int(value))
            )
            if len(out) == count:
                break
        return out

    def apply_best(self) -> Optional[NodePair]:
        """Place the single best improving edge; returns it (or None at a
        local optimum)."""
        suggestions = self.suggest(count=1)
        if not suggestions:
            return None
        (u, v), _value = suggestions[0]
        self.add(u, v)
        return (u, v)

    def summary(self) -> str:
        budget = (
            f"{len(self._edges)}/{self.instance.k} edges"
            + (" (OVER BUDGET)" if self.over_budget else "")
        )
        return (
            f"planner: σ={self.sigma}/{self.instance.m} with {budget}"
        )

"""Exception hierarchy for the MSC reproduction library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at the boundary of their application.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for structural problems with a graph (unknown node, bad edge)."""


class ValidationError(ReproError):
    """Raised when user-supplied values fail validation (probabilities,
    budgets, thresholds, malformed records)."""


class InstanceError(ReproError):
    """Raised when an MSC problem instance is inconsistent (e.g. social pairs
    referencing nodes outside the graph)."""


class TraceFormatError(ReproError):
    """Raised when a mobility/check-in trace file cannot be parsed."""


class SolverError(ReproError):
    """Raised when an algorithm is invoked with unusable configuration."""

"""Exception hierarchy for the MSC reproduction library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at the boundary of their application.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for structural problems with a graph (unknown node, bad edge)."""


class ValidationError(ReproError):
    """Raised when user-supplied values fail validation (probabilities,
    budgets, thresholds, malformed records)."""


class InstanceError(ReproError):
    """Raised when an MSC problem instance is inconsistent (e.g. social pairs
    referencing nodes outside the graph)."""


class TraceFormatError(ReproError):
    """Raised when a mobility/check-in trace file cannot be parsed."""


class SolverError(ReproError):
    """Raised when an algorithm is invoked with unusable configuration."""


class TaskError(ReproError):
    """Raised when a fanned-out task fails after its retry budget.

    Unlike the bare ``BrokenProcessPool`` / worker exception it wraps, a
    ``TaskError`` always identifies *which* task died, how many attempts it
    was given, and the original traceback text — so a crashed
    ``(experiment, scale, seed)`` cell in a long campaign is diagnosable
    from the error alone.

    Attributes:
        task: the task object (or key) that failed.
        attempts: how many attempts were made before giving up.
        cause_traceback: formatted traceback string of the last failure
            (``None`` when unavailable, e.g. the worker process died).
    """

    def __init__(
        self,
        message: str,
        *,
        task=None,
        attempts: int = 1,
        cause_traceback=None,
    ) -> None:
        super().__init__(message)
        self.task = task
        self.attempts = attempts
        self.cause_traceback = cause_traceback


class TaskTimeoutError(TaskError):
    """Raised when a task exceeds its per-task timeout budget."""

"""Link-failure models and the probability <-> length transform.

Section III of the paper maps each edge's failure probability ``p`` to a
length ``l = -ln(1 - p)``, under which a path's failure probability is
``1 - exp(-sum of lengths)``. Section VII-A3 sets each edge's failure
probability "proportional to the geographical distance between the two
endpoints"; the model classes here implement that and two alternatives used in
tests and examples.
"""

from __future__ import annotations

import math
from typing import Iterable, Protocol

from repro.util.validation import check_fraction, check_nonnegative


def failure_to_length(p: float) -> float:
    """Edge length ``-ln(1 - p)`` for failure probability ``p`` in [0, 1).

    ``p = 0`` (a perfectly reliable link, e.g. a shortcut edge) maps to
    length 0, exactly as the paper requires.
    """
    p = check_fraction(p, "failure probability")
    # log1p(-p) is numerically stable for small p.
    return -math.log1p(-p)


def length_to_failure(length: float) -> float:
    """Failure probability ``1 - exp(-length)`` for a length ``>= 0``."""
    length = check_nonnegative(length, "length")
    return -math.expm1(-length)


def path_failure_probability(edge_failures: Iterable[float]) -> float:
    """Failure probability of a path, Eq. (1): ``1 - prod(1 - p_i)``."""
    survival = 1.0
    for p in edge_failures:
        survival *= 1.0 - check_fraction(p, "edge failure probability")
    return 1.0 - survival


def path_length_from_failures(edge_failures: Iterable[float]) -> float:
    """Total path length ``sum(-ln(1 - p_i))`` — Eq. (1) in length space."""
    return sum(failure_to_length(p) for p in edge_failures)


class LinkFailureModel(Protocol):
    """Maps a geographical distance to a link failure probability."""

    def failure_probability(self, distance: float) -> float:
        """Failure probability of a link spanning *distance*."""
        ...


class ConstantFailure:
    """Every link fails with the same probability, regardless of distance."""

    def __init__(self, probability: float) -> None:
        self.probability = check_fraction(probability, "probability")

    def failure_probability(self, distance: float) -> float:
        check_nonnegative(distance, "distance")
        return self.probability

    def __repr__(self) -> str:
        return f"ConstantFailure({self.probability})"


class DistanceProportionalFailure:
    """Failure probability proportional to link distance (paper §VII-A3).

    ``p = min(coefficient * distance, cap)`` where *cap* keeps the value
    inside [0, 1). With links limited to a connectivity radius ``R``,
    ``coefficient = p_max / R`` gives failure probabilities in ``[0, p_max]``.
    """

    def __init__(self, coefficient: float, cap: float = 0.999) -> None:
        self.coefficient = check_nonnegative(coefficient, "coefficient")
        self.cap = check_fraction(cap, "cap")

    @classmethod
    def for_radius(
        cls, radius: float, max_probability: float
    ) -> "DistanceProportionalFailure":
        """Model where a link at exactly *radius* fails with
        *max_probability*."""
        radius = check_nonnegative(radius, "radius")
        max_probability = check_fraction(max_probability, "max_probability")
        if radius == 0:
            raise ValueError("radius must be > 0")
        return cls(max_probability / radius, cap=max(max_probability, 0.0))

    def failure_probability(self, distance: float) -> float:
        distance = check_nonnegative(distance, "distance")
        return min(self.coefficient * distance, self.cap)

    def __repr__(self) -> str:
        return (
            f"DistanceProportionalFailure(coefficient={self.coefficient}, "
            f"cap={self.cap})"
        )


#: Largest representable failure probability strictly below 1; models clamp
#: here so derived edge lengths stay finite even at extreme distances.
MAX_FAILURE_PROBABILITY = math.nextafter(1.0, 0.0)


class ExponentialDistanceFailure:
    """Failure probability ``1 - exp(-rate * distance)``.

    Under this model the derived edge length is exactly ``rate * distance``,
    i.e. path length equals geographical route length scaled by *rate* — handy
    in tests because distances become geometrically interpretable. The value
    is clamped just below 1 so it always remains a valid edge probability.
    """

    def __init__(self, rate: float) -> None:
        self.rate = check_nonnegative(rate, "rate")

    def failure_probability(self, distance: float) -> float:
        distance = check_nonnegative(distance, "distance")
        return min(
            -math.expm1(-self.rate * distance), MAX_FAILURE_PROBABILITY
        )

    def __repr__(self) -> str:
        return f"ExponentialDistanceFailure(rate={self.rate})"

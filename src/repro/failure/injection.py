"""Fault injection: stress-test a solved placement under degraded networks.

The MSC model treats shortcut edges as perfectly reliable and the base
graph's failure probabilities as fixed. This harness asks what happens when
those assumptions degrade — the robustness question the paper's premise
(surviving link failures) raises but never measures:

* **shortcut outage** — a fraction of the placed shortcut edges goes dark
  (hardware failure, jamming, de-provisioning);
* **probability drift** — every base link's failure probability inflates
  (interference, weather, congestion), so paths certified against ``p_t``
  may silently stop meeting it;
* **node loss** — a fraction of nodes disappears entirely (battery death,
  mobility out of range), taking incident links — and possibly social-pair
  endpoints — with them.

Each perturbed scenario is measured two ways, closing the loop between the
analytic objective and the simulated network: σ via
:class:`~repro.core.evaluator.SigmaEvaluator` on the perturbed graph, and
the simulated delivery rate via
:class:`~repro.sim.delivery.DeliverySimulator`. All randomness derives from
``(seed, mode, severity)`` alone, so sweeps are reproducible and
parallelizable cell-by-cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.exceptions import ValidationError
from repro.failure.models import MAX_FAILURE_PROBABILITY, length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import Node, WirelessGraph, graph_signature
from repro.sim.delivery import DeliverySimulator
from repro.types import NodePair, normalize_index_pair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import (
    check_nonnegative,
    check_positive_int,
    check_probability,
)

#: Supported fault modes, in reporting order.
MODES = ("shortcut_outage", "probability_drift", "node_loss")


@dataclass(frozen=True)
class InjectionOutcome:
    """Measured degradation of one ``(mode, severity)`` scenario.

    Attributes:
        mode: fault mode (one of :data:`MODES`).
        severity: fault intensity in [0, 1]; 0 is the unperturbed baseline.
        sigma: pairs still maintained (σ over the perturbed network; pairs
            that lost an endpoint count as unmaintained).
        num_pairs: total pairs of the original instance (the denominator).
        delivery_rate: mean simulated delivery rate across all original
            pairs (lost pairs deliver nothing).
        pairs_meeting_requirement: pairs whose simulated rate still clears
            ``1 - p_t``.
        dropped_shortcuts: shortcut edges disabled by the fault.
        lost_nodes: nodes removed by the fault.
    """

    mode: str
    severity: float
    sigma: int
    num_pairs: int
    delivery_rate: float
    pairs_meeting_requirement: int
    dropped_shortcuts: int = 0
    lost_nodes: int = 0

    @property
    def sigma_fraction(self) -> float:
        """σ as a fraction of the pair count (1.0 for a pairless
        instance — nothing to degrade)."""
        if self.num_pairs == 0:
            return 1.0
        return self.sigma / self.num_pairs


# --------------------------------------------------------------- injectors


def drop_shortcut_edges(
    edges: Sequence[NodePair], severity: float, seed: SeedLike = None
) -> Tuple[List[NodePair], List[NodePair]]:
    """Disable ``round(severity * len(edges))`` shortcut edges uniformly.

    Returns ``(kept, dropped)``, both preserving the input order.
    """
    check_probability(severity, "severity")
    edges = list(edges)
    count = round(severity * len(edges))
    rng = ensure_rng(seed)
    dropped_idx = set(rng.sample(range(len(edges)), count))
    kept = [e for i, e in enumerate(edges) if i not in dropped_idx]
    dropped = [e for i, e in enumerate(edges) if i in dropped_idx]
    return kept, dropped


def drift_failure_probabilities(
    graph: WirelessGraph, severity: float, *, max_drift: float = 4.0
) -> WirelessGraph:
    """Copy of *graph* with every link's failure probability inflated.

    Each edge's probability is multiplied by
    ``1 + severity * (max_drift - 1)`` — severity 0 is the original graph,
    severity 1 multiplies every failure probability by *max_drift* — and
    clamped just below 1 so derived lengths stay finite. Node order (and
    therefore dense indices) is preserved.
    """
    check_probability(severity, "severity")
    check_nonnegative(max_drift, "max_drift")
    if max_drift < 1.0:
        raise ValidationError(
            f"max_drift must be >= 1, got {max_drift!r}"
        )
    factor = 1.0 + severity * (max_drift - 1.0)
    drifted = WirelessGraph()
    drifted.add_nodes(graph.nodes)
    for u, v, length in graph.edges:
        p = min(length_to_failure(length) * factor, MAX_FAILURE_PROBABILITY)
        drifted.add_edge(u, v, failure_probability=p)
    return drifted


def remove_random_nodes(
    graph: WirelessGraph,
    severity: float,
    seed: SeedLike = None,
    *,
    protected: Sequence[Node] = (),
) -> Tuple[WirelessGraph, Set[Node]]:
    """Copy of *graph* with ``round(severity * candidates)`` nodes removed
    (with their incident edges).

    *protected* nodes are never removed. Returns ``(survivor, lost)``;
    surviving nodes keep their relative insertion order (indices shift).
    """
    check_probability(severity, "severity")
    protected_set = set(protected)
    candidates = [v for v in graph.nodes if v not in protected_set]
    count = round(severity * len(candidates))
    rng = ensure_rng(seed)
    lost = set(rng.sample(candidates, count))
    survivor = WirelessGraph()
    survivor.add_nodes(v for v in graph.nodes if v not in lost)
    for u, v, length in graph.edges:
        if u not in lost and v not in lost:
            survivor.add_edge(u, v, length=length)
    return survivor, lost


# ----------------------------------------------------------------- harness


class FaultInjectionHarness:
    """Measure graceful degradation of a solved placement under faults.

    Args:
        instance: the solved MSC instance.
        shortcuts: the placement's shortcut edges, as node pairs.
        trials: Monte Carlo delivery trials per scenario.
        strategy: delivery forwarding strategy (see
            :data:`repro.sim.delivery.STRATEGIES`).
        seed: base seed; each ``(mode, severity)`` cell derives its own
            stream from ``(seed, mode, severity)``, so cells are
            order-independent and safe to fan out.
    """

    def __init__(
        self,
        instance: MSCInstance,
        shortcuts: Sequence[NodePair],
        *,
        trials: int = 200,
        strategy: str = "best_path",
        seed: SeedLike = None,
    ) -> None:
        self.instance = instance
        self.shortcuts = list(shortcuts)
        self.trials = check_positive_int(trials, "trials")
        self.strategy = strategy
        self._seed_text = repr(seed)
        # APSP memo across scenario cells, keyed by the *content* digest
        # of the perturbed graph. Cells whose graphs are copies with
        # identical content (probability drift at severity 0, node loss
        # that removed nobody) reuse one matrix; any actual perturbation
        # changes the digest and gets a fresh oracle — stale reuse is
        # structurally impossible.
        self._matrix_memo: Dict[str, np.ndarray] = {}
        self.oracle_memo_hits = 0
        self.oracle_memo_builds = 0

    def _cell_rng(self, mode: str, severity: float):
        return ensure_rng((self._seed_text, "inject", mode, severity))

    def run(self, mode: str, severity: float) -> InjectionOutcome:
        """Inject one ``(mode, severity)`` fault and measure degradation."""
        if mode == "shortcut_outage":
            return self._run_shortcut_outage(severity)
        if mode == "probability_drift":
            return self._run_probability_drift(severity)
        if mode == "node_loss":
            return self._run_node_loss(severity)
        raise ValidationError(
            f"unknown fault mode {mode!r}; available: {', '.join(MODES)}"
        )

    def sweep(
        self, mode: str, severities: Sequence[float]
    ) -> List[InjectionOutcome]:
        """Degradation profile of *mode* across *severities*."""
        return [self.run(mode, severity) for severity in severities]

    # ------------------------------------------------------------ per-mode

    def _measure(
        self,
        graph: WirelessGraph,
        pairs: Sequence[NodePair],
        shortcuts: Sequence[NodePair],
        mode: str,
        severity: float,
        *,
        dropped_shortcuts: int = 0,
        lost_nodes: int = 0,
    ) -> InjectionOutcome:
        """σ + simulated delivery of a perturbed ``(graph, shortcuts)``.

        *pairs* are the surviving pairs for σ; delivery always simulates
        the instance's full original pair list (lost pairs never deliver).
        """
        sigma = self._sigma(graph, pairs, shortcuts)
        simulator = DeliverySimulator(graph, shortcuts)
        report = simulator.simulate(
            self.instance.pairs,
            strategy=self.strategy,
            trials=self.trials,
            seed=(self._seed_text, "delivery", mode, severity),
        )
        return InjectionOutcome(
            mode=mode,
            severity=float(severity),
            sigma=sigma,
            num_pairs=self.instance.m,
            delivery_rate=report.mean_rate,
            pairs_meeting_requirement=report.meeting_requirement(
                self.instance.p_threshold
            ),
            dropped_shortcuts=dropped_shortcuts,
            lost_nodes=lost_nodes,
        )

    def _scenario_oracle(self, graph: WirelessGraph) -> DistanceOracle:
        """Oracle for a perturbed scenario graph, memoized by content.

        The memo is seeded with the base instance's own matrix (when its
        oracle is the dense tier), so a "perturbation" that left the graph
        content unchanged — drift at severity 0 — adopts the already-built
        APSP instead of recomputing it.
        """
        base = self.instance.oracle
        if isinstance(base, DistanceOracle):
            base_sig = graph_signature(self.instance.graph)
            if base_sig not in self._matrix_memo:
                self._matrix_memo[base_sig] = base.matrix
        signature = graph_signature(graph)
        matrix = self._matrix_memo.get(signature)
        if matrix is not None:
            self.oracle_memo_hits += 1
            return DistanceOracle.with_matrix(graph, matrix)
        oracle = DistanceOracle(graph)
        self._matrix_memo[signature] = oracle.matrix
        self.oracle_memo_builds += 1
        return oracle

    def _sigma(
        self,
        graph: WirelessGraph,
        pairs: Sequence[NodePair],
        shortcuts: Sequence[NodePair],
    ) -> int:
        """σ over a (possibly perturbed) graph; degenerate pair sets are
        fine — the count is simply 0."""
        if graph is self.instance.graph:
            scenario = self.instance
        else:
            scenario = MSCInstance(
                graph,
                pairs,
                self.instance.k,
                d_threshold=self.instance.d_threshold,
                require_initially_unsatisfied=False,
                allow_degenerate=True,
                oracle=self._scenario_oracle(graph),
            )
        evaluator = SigmaEvaluator(scenario)
        index_pairs = [
            normalize_index_pair(
                graph.node_index(u), graph.node_index(v)
            )
            for u, v in shortcuts
        ]
        return int(evaluator.value(index_pairs))

    def _run_shortcut_outage(self, severity: float) -> InjectionOutcome:
        kept, dropped = drop_shortcut_edges(
            self.shortcuts,
            severity,
            self._cell_rng("shortcut_outage", severity),
        )
        return self._measure(
            self.instance.graph,
            self.instance.pairs,
            kept,
            "shortcut_outage",
            severity,
            dropped_shortcuts=len(dropped),
        )

    def _run_probability_drift(self, severity: float) -> InjectionOutcome:
        drifted = drift_failure_probabilities(self.instance.graph, severity)
        return self._measure(
            drifted,
            self.instance.pairs,
            self.shortcuts,
            "probability_drift",
            severity,
        )

    def _run_node_loss(self, severity: float) -> InjectionOutcome:
        survivor, lost = remove_random_nodes(
            self.instance.graph,
            severity,
            self._cell_rng("node_loss", severity),
        )
        surviving_pairs = [
            (u, w)
            for u, w in self.instance.pairs
            if u not in lost and w not in lost
        ]
        surviving_shortcuts = [
            (u, v)
            for u, v in self.shortcuts
            if u not in lost and v not in lost
        ]
        return self._measure(
            survivor,
            surviving_pairs,
            surviving_shortcuts,
            "node_loss",
            severity,
            dropped_shortcuts=len(self.shortcuts)
            - len(surviving_shortcuts),
            lost_nodes=len(lost),
        )

"""Link failure models, probability/length transforms, and fault
injection."""

from repro.failure.models import (
    ConstantFailure,
    DistanceProportionalFailure,
    ExponentialDistanceFailure,
    failure_to_length,
    length_to_failure,
    path_failure_probability,
    path_length_from_failures,
)

__all__ = [
    "failure_to_length",
    "length_to_failure",
    "path_failure_probability",
    "path_length_from_failures",
    "ConstantFailure",
    "DistanceProportionalFailure",
    "ExponentialDistanceFailure",
    "MODES",
    "FaultInjectionHarness",
    "InjectionOutcome",
    "drift_failure_probabilities",
    "drop_shortcut_edges",
    "remove_random_nodes",
]

_INJECTION_EXPORTS = frozenset(
    {
        "MODES",
        "FaultInjectionHarness",
        "InjectionOutcome",
        "drift_failure_probabilities",
        "drop_shortcut_edges",
        "remove_random_nodes",
    }
)


def __getattr__(name):
    # repro.failure.injection needs the core evaluator, which itself imports
    # repro.failure.models — importing it eagerly here would close that
    # cycle, so its exports resolve lazily on first access.
    if name in _INJECTION_EXPORTS:
        from repro.failure import injection

        return getattr(injection, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

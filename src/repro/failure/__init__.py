"""Link failure models and probability/length transforms."""

from repro.failure.models import (
    ConstantFailure,
    DistanceProportionalFailure,
    ExponentialDistanceFailure,
    failure_to_length,
    length_to_failure,
    path_failure_probability,
    path_length_from_failures,
)

__all__ = [
    "failure_to_length",
    "length_to_failure",
    "path_failure_probability",
    "path_length_from_failures",
    "ConstantFailure",
    "DistanceProportionalFailure",
    "ExponentialDistanceFailure",
]

"""Shared value types for the MSC library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

Node = Hashable
NodePair = Tuple[Node, Node]
IndexPair = Tuple[int, int]


def normalize_index_pair(a: int, b: int) -> IndexPair:
    """Canonical (sorted) form of an undirected index pair."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a shortcut-placement algorithm run.

    Attributes:
        algorithm: short name of the algorithm that produced the placement.
        edges: the chosen shortcut edges, as node pairs.
        sigma: number of important social pairs maintained, σ(F).
        satisfied: per-pair satisfaction flags, aligned with the instance's
            pair list.
        evaluations: number of σ evaluations spent (algorithm-defined unit);
            0 when the algorithm does not track it.
        trace: best-σ-so-far after each iteration, for iteration-count plots
            (Fig. 4); empty for non-iterative algorithms.
        extras: algorithm-specific extra outputs (e.g. the sandwich
            algorithm's per-bound solutions and data-dependent ratio).
    """

    algorithm: str
    edges: List[NodePair]
    sigma: int
    satisfied: List[bool]
    evaluations: int = 0
    trace: List[int] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: maintained {self.sigma}/{len(self.satisfied)}"
            f" pairs with {self.num_edges} shortcut edge(s)"
        )

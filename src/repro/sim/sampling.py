"""Edge-failure sampling for Monte Carlo delivery trials.

One trial of the wireless network: every link independently fails with its
failure probability (the model of paper Eq. 1); shortcut edges never fail.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.graph.graph import Node, WirelessGraph
from repro.util.rng import ensure_rng

Edge = Tuple[Node, Node]


def sample_failed_edges(graph: WirelessGraph, rng) -> Set[Edge]:
    """One random trial: the set of links that failed this round.

    Edges are returned as ``(u, v)`` in the graph's canonical (index-sorted)
    orientation, matching :attr:`WirelessGraph.edges`.
    """
    rng = ensure_rng(rng)
    failed: Set[Edge] = set()
    for u, v, _length in graph.edges:
        if rng.random() < graph.failure_probability(u, v):
            failed.add((u, v))
    return failed


def surviving_graph(
    graph: WirelessGraph, failed: Set[Edge]
) -> WirelessGraph:
    """Copy of *graph* without the failed edges (nodes all kept)."""
    survivor = WirelessGraph()
    survivor.add_nodes(graph.nodes)
    for u, v, length in graph.edges:
        if (u, v) not in failed and (v, u) not in failed:
            survivor.add_edge(u, v, length=length)
    return survivor


def adjacency_after_failures(
    graph: WirelessGraph, failed: Set[Edge]
) -> List[List[int]]:
    """Index adjacency lists of the surviving topology (cheap form for
    connectivity checks; lengths are irrelevant once edges survive)."""
    n = graph.number_of_nodes()
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v, _length in graph.edges:
        if (u, v) in failed or (v, u) in failed:
            continue
        iu, iv = graph.node_index(u), graph.node_index(v)
        adjacency[iu].append(iv)
        adjacency[iv].append(iu)
    return adjacency

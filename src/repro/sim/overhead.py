"""Transmission-overhead accounting: why flooding is not a free lunch.

The delivery simulator shows flooding delivers well even without shortcut
edges; the paper's §I argument against it is *cost*: "such redundant
transmission may further degrade the communication of other social pairs".
This module quantifies that cost per delivery attempt:

* ``best_path`` / ``multipath`` — transmissions = links of the attempted
  path(s) up to (and including) the first failed link; retrying stops at
  the first surviving path for multipath.
* ``flooding`` — every node that receives the message rebroadcasts once,
  so transmissions = surviving links incident to the source's reachable
  component (each such link carries the message once).

The headline metric is transmissions **per successful delivery** — the
overhead a network engineer would weigh against placing a reliable link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.graph.graph import Node, WirelessGraph
from repro.sim.delivery import DeliverySimulator, STRATEGIES
from repro.sim.sampling import sample_failed_edges
from repro.exceptions import SolverError
from repro.types import NodePair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class OverheadReport:
    """Transmission accounting for one strategy over all pairs/trials.

    Attributes:
        strategy: forwarding strategy measured.
        trials: failure rounds simulated.
        deliveries: successful deliveries across pairs and trials.
        transmissions: total link transmissions spent.
    """

    strategy: str
    trials: int
    deliveries: int
    transmissions: int

    @property
    def per_delivery(self) -> float:
        """Transmissions per successful delivery (inf when none)."""
        if self.deliveries == 0:
            return float("inf")
        return self.transmissions / self.deliveries


def _path_transmissions(path: Sequence[Node], failed) -> Tuple[int, bool]:
    """Transmissions consumed sending along *path*: hops up to and
    including the first failed link. Returns (count, delivered)."""
    sent = 0
    for a, b in zip(path, path[1:]):
        sent += 1
        if (a, b) in failed or (b, a) in failed:
            return sent, False
    return sent, True


def _flood_transmissions(
    graph: WirelessGraph, failed, source: Node, target: Node
) -> Tuple[int, bool]:
    """Flooding: BFS over surviving links from *source*; every reached node
    broadcasts once, so each surviving link inside the reached component is
    traversed once. Returns (transmissions, target reached)."""
    failed_idx = {
        (graph.node_index(a), graph.node_index(b)) for a, b in failed
    }
    src = graph.node_index(source)
    dst = graph.node_index(target)
    seen: Set[int] = {src}
    stack = [src]
    transmissions = 0
    while stack:
        u = stack.pop()
        for v in graph.neighbors_by_index(u):
            if (u, v) in failed_idx or (v, u) in failed_idx:
                continue
            transmissions += 1  # u's broadcast crosses this surviving link
            if v not in seen:
                seen.add(v)
                stack.append(v)
    # Each link inside the component was counted from both endpoints.
    return transmissions // 2, dst in seen


def measure_overhead(
    simulator: DeliverySimulator,
    pairs: Sequence[NodePair],
    *,
    strategy: str = "flooding",
    trials: int = 200,
    seed: SeedLike = None,
    multipath_k: int = 3,
) -> OverheadReport:
    """Simulate *trials* rounds and account transmissions for *strategy*.

    Uses the simulator's augmented graph (shortcut edges included, never
    failing)."""
    check_positive_int(trials, "trials")
    if strategy not in STRATEGIES:
        raise SolverError(
            f"unknown strategy {strategy!r}; "
            f"available: {', '.join(STRATEGIES)}"
        )
    rng = ensure_rng(seed)
    graph = simulator.graph
    routes = simulator._routes(pairs, strategy, multipath_k)

    deliveries = 0
    transmissions = 0
    for _ in range(trials):
        failed = sample_failed_edges(graph, rng)
        for i, (u, w) in enumerate(pairs):
            if strategy == "flooding":
                spent, ok = _flood_transmissions(graph, failed, u, w)
                transmissions += spent
                deliveries += int(ok)
            else:
                pair_routes = routes[i]
                if pair_routes is None:
                    continue
                delivered = False
                for path in pair_routes:
                    spent, ok = _path_transmissions(path, failed)
                    transmissions += spent
                    if ok:
                        delivered = True
                        break  # stop at the first surviving path
                deliveries += int(delivered)
    return OverheadReport(
        strategy=strategy,
        trials=trials,
        deliveries=deliveries,
        transmissions=transmissions,
    )


def compare_overheads(
    graph: WirelessGraph,
    pairs: Sequence[NodePair],
    shortcuts: Sequence[NodePair] = (),
    *,
    trials: int = 200,
    seed: SeedLike = None,
) -> List[OverheadReport]:
    """Overhead reports for all three strategies on the same trials
    (independent streams per strategy, same seed base)."""
    simulator = DeliverySimulator(graph, shortcuts)
    return [
        measure_overhead(
            simulator,
            pairs,
            strategy=strategy,
            trials=trials,
            seed=(seed, strategy),
        )
        for strategy in STRATEGIES
    ]

"""Monte Carlo delivery simulation: does "maintained" mean "delivered"?

The MSC formulation promises that a maintained pair has a path failing with
probability at most ``p_t``. This simulator closes the loop end-to-end: it
samples concrete link-failure trials and measures actual delivery rates
under three forwarding strategies the paper's introduction discusses:

* ``best_path`` — source routes along the single most reliable path of the
  augmented graph; delivery succeeds iff every link on it survives. The
  analytic success probability is ``exp(-path_length)``, so the Monte Carlo
  estimate doubles as a validation of the whole probability/length model.
* ``multipath`` — the k most reliable loopless paths are tried; delivery
  succeeds iff at least one survives ("multipath routing [5]", §I).
* ``flooding`` — delivery succeeds iff the pair is connected at all in the
  surviving topology — the upper envelope of any routing scheme.

Shortcut edges are perfectly reliable and never fail (their failure
probability is 0 by construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, SolverError
from repro.graph.graph import Node, WirelessGraph
from repro.graph.kpaths import k_shortest_paths
from repro.graph.paths import shortest_path
from repro.sim.sampling import sample_failed_edges
from repro.types import NodePair
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int

STRATEGIES = ("best_path", "multipath", "flooding")


@dataclass(frozen=True)
class PairDelivery:
    """Per-pair simulation outcome.

    Attributes:
        pair: the social pair.
        successes: delivered trials.
        trials: total trials.
        analytic: analytic success probability of the best path (``None``
            when the pair is disconnected, or for strategies where the
            analytic value is only a lower bound).
    """

    pair: NodePair
    successes: int
    trials: int
    analytic: Optional[float] = None

    @property
    def rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the delivery rate."""
        if self.trials == 0:
            return (0.0, 1.0)
        n = self.trials
        p = self.rate
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = (
            z
            * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
            / denom
        )
        return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class DeliveryReport:
    """Aggregate of a simulation run."""

    strategy: str
    trials: int
    pairs: List[PairDelivery] = field(default_factory=list)

    @property
    def mean_rate(self) -> float:
        if not self.pairs:
            return 0.0
        return sum(p.rate for p in self.pairs) / len(self.pairs)

    def meeting_requirement(self, p_threshold: float) -> int:
        """Pairs whose *simulated* delivery rate meets ``1 - p_t``."""
        return sum(
            1 for p in self.pairs if p.rate >= 1.0 - p_threshold
        )


class DeliverySimulator:
    """Simulate packet delivery on a graph augmented with shortcut edges.

    Args:
        graph: the base communication graph.
        shortcuts: shortcut edges (node pairs); added with failure
            probability 0 (parallel shortcut over an existing link simply
            makes that link reliable, consistent with the MSC model).
    """

    def __init__(
        self,
        graph: WirelessGraph,
        shortcuts: Sequence[NodePair] = (),
    ) -> None:
        augmented = graph.copy()
        for u, v in shortcuts:
            augmented.add_edge(u, v, failure_probability=0.0)
        self.graph = augmented

    # ------------------------------------------------------------- analytic

    def best_path(self, u: Node, w: Node) -> Tuple[float, List[Node]]:
        """Most reliable path and its analytic success probability."""
        length, path = shortest_path(self.graph, u, w)
        return math.exp(-length), path

    # ------------------------------------------------------------- simulate

    def simulate(
        self,
        pairs: Sequence[NodePair],
        *,
        strategy: str = "best_path",
        trials: int = 1000,
        seed: SeedLike = None,
        multipath_k: int = 3,
    ) -> DeliveryReport:
        """Run *trials* failure rounds and measure per-pair delivery.

        All pairs share each trial's failure sample (one network round),
        which mirrors reality and keeps trials comparable across pairs.
        """
        check_positive_int(trials, "trials")
        if strategy not in STRATEGIES:
            raise SolverError(
                f"unknown strategy {strategy!r}; "
                f"available: {', '.join(STRATEGIES)}"
            )
        rng = ensure_rng(seed)
        routes = self._routes(pairs, strategy, multipath_k)
        pair_indices = self._pair_indices(pairs)
        successes = [0] * len(pairs)
        for _ in range(trials):
            failed = sample_failed_edges(self.graph, rng)
            if strategy == "flooding":
                reachable = _component_labels(self.graph, failed)
                for i, indices in enumerate(pair_indices):
                    if indices is None:
                        continue
                    if reachable[indices[0]] == reachable[indices[1]]:
                        successes[i] += 1
            else:
                for i, pair_routes in enumerate(routes):
                    if pair_routes is None:
                        continue
                    if any(
                        _path_survives(path, failed)
                        for path in pair_routes
                    ):
                        successes[i] += 1

        report = DeliveryReport(strategy=strategy, trials=trials)
        for i, (u, w) in enumerate(pairs):
            analytic = None
            if strategy == "best_path":
                try:
                    analytic, _path = self.best_path(u, w)
                except GraphError:
                    analytic = 0.0
            report.pairs.append(
                PairDelivery(
                    pair=(u, w),
                    successes=successes[i],
                    trials=trials,
                    analytic=analytic,
                )
            )
        return report

    def _pair_indices(
        self, pairs: Sequence[NodePair]
    ) -> List[Optional[Tuple[int, int]]]:
        """Dense index per pair; ``None`` when an endpoint is not in the
        graph (a pair that lost a node under fault injection never
        delivers, but must not abort everyone else's simulation)."""
        indices: List[Optional[Tuple[int, int]]] = []
        for u, w in pairs:
            try:
                indices.append(
                    (self.graph.node_index(u), self.graph.node_index(w))
                )
            except GraphError:
                indices.append(None)
        return indices

    def _routes(
        self,
        pairs: Sequence[NodePair],
        strategy: str,
        multipath_k: int,
    ) -> List[Optional[List[List[Node]]]]:
        """Precompute the route set per pair (None when disconnected)."""
        if strategy == "flooding":
            return [None] * len(pairs)
        check_positive_int(multipath_k, "multipath_k")
        routes: List[Optional[List[List[Node]]]] = []
        for u, w in pairs:
            try:
                if strategy == "best_path":
                    _prob, path = self.best_path(u, w)
                    routes.append([path])
                else:
                    found = k_shortest_paths(
                        self.graph, u, w, multipath_k
                    )
                    routes.append([path for _l, path in found])
            except GraphError:
                routes.append(None)
        return routes


def _path_survives(path: Sequence[Node], failed) -> bool:
    if not failed:
        return True
    for a, b in zip(path, path[1:]):
        if (a, b) in failed or (b, a) in failed:
            return False
    return True


def _component_labels(graph: WirelessGraph, failed) -> List[int]:
    """Connected-component label per dense index in the surviving graph."""
    n = graph.number_of_nodes()
    labels = [-1] * n
    current = 0
    failed_idx = {
        (graph.node_index(a), graph.node_index(b)) for a, b in failed
    }
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in graph.neighbors_by_index(u):
                if labels[v] != -1:
                    continue
                if (u, v) in failed_idx or (v, u) in failed_idx:
                    continue
                labels[v] = current
                stack.append(v)
        current += 1
    return labels

"""Monte Carlo delivery simulation over unreliable wireless links."""

from repro.sim.delivery import (
    DeliveryReport,
    DeliverySimulator,
    PairDelivery,
)
from repro.sim.overhead import OverheadReport, compare_overheads, measure_overhead
from repro.sim.sampling import sample_failed_edges, surviving_graph

__all__ = [
    "DeliverySimulator",
    "DeliveryReport",
    "PairDelivery",
    "OverheadReport",
    "measure_overhead",
    "compare_overheads",
    "sample_failed_edges",
    "surviving_graph",
]

"""Wire protocol of the planner service: JSON lines, validated strictly.

Every request is one JSON object per line with an ``op`` field; every
response is one JSON object per line echoing the request's ``id`` and
carrying either ``"ok": true`` with a ``result`` or ``"ok": false`` with a
structured ``error`` — malformed input is *answered*, never allowed to
crash the server (the graceful-degradation contract the PR-2 resilience
layer provides for batch campaigns, extended to the request plane).

The module is deliberately dependency-light (pure parsing/validation) so
both the asyncio server and the synchronous test client share it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError, TaskError, TaskTimeoutError

#: Operations the service understands.
OPS = ("place", "sigma", "whatif", "stats", "ping", "shutdown")

#: Workload kinds servable out of the box (the paper's static families).
WORKLOAD_KINDS = ("rg", "gowalla")

#: What-if session actions.
WHATIF_ACTIONS = (
    "open",
    "add",
    "remove",
    "undo",
    "reset",
    "adopt",
    "suggest",
    "apply_best",
    "summary",
    "close",
)


class ProtocolError(ReproError):
    """A request that cannot be served as asked (malformed JSON, unknown
    op/field, wrong type). Always answered with a structured error.

    ``request_id`` carries the offending request's ``id`` when parsing got
    far enough to see one, so even a rejected request gets a correlatable
    response."""

    def __init__(self, message: str, *, request_id: Any = None) -> None:
        super().__init__(message)
        self.request_id = request_id


def parse_request(line: str) -> Dict[str, Any]:
    """Parse and shallow-validate one request line.

    Raises:
        ProtocolError: on malformed JSON, a non-object payload, or an
            unknown/missing ``op``.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; available: {', '.join(OPS)}",
            request_id=payload.get("id"),
        )
    return payload


def require(payload: Dict[str, Any], field: str, types, what: str) -> Any:
    """Fetch a required typed field from *payload*."""
    value = payload.get(field)
    if value is None:
        raise ProtocolError(f"{what}: missing required field {field!r}")
    if not isinstance(value, types):
        raise ProtocolError(
            f"{what}: field {field!r} must be "
            f"{getattr(types, '__name__', types)}, "
            f"got {type(value).__name__}"
        )
    return value


def coerce_seed(value: Any) -> Any:
    """JSON form of a seed → the library's ``SeedLike`` (lists become
    tuples recursively, so ``[1, "bench"]`` round-trips as ``(1, "bench")``)."""
    if isinstance(value, list):
        return tuple(coerce_seed(v) for v in value)
    return value


def parse_pairs(value: Any, what: str) -> List[Tuple[int, int]]:
    """``[[u, w], ...]`` → list of int node-label pairs."""
    if not isinstance(value, list):
        raise ProtocolError(f"{what}: pairs must be a list of [u, w] pairs")
    pairs: List[Tuple[int, int]] = []
    for entry in value:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(x, int) for x in entry)
        ):
            raise ProtocolError(
                f"{what}: each pair must be a [u, w] pair of node labels, "
                f"got {entry!r}"
            )
        pairs.append((entry[0], entry[1]))
    return pairs


def parse_workload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and normalize a request's ``workload`` spec.

    ``{"kind": "rg", "seed": 1, "n": 100}`` (radius / max_link_failure
    optional) or ``{"kind": "gowalla", "seed": 42}``; the normalized spec
    carries every generator knob so :func:`workload_key` is a full recipe.
    """
    spec = require(payload, "workload", dict, "workload spec")
    kind = spec.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise ProtocolError(
            f"unknown workload kind {kind!r}; "
            f"available: {', '.join(WORKLOAD_KINDS)}"
        )
    if kind == "rg":
        n = spec.get("n", 100)
        if not isinstance(n, int) or n <= 0:
            raise ProtocolError(f"rg workload: n must be a positive int")
        normalized = {
            "kind": "rg",
            "seed": coerce_seed(spec.get("seed", 1)),
            "n": n,
            "radius": float(spec.get("radius", 0.2)),
            "max_link_failure": float(spec.get("max_link_failure", 0.08)),
        }
    else:
        normalized = {"kind": "gowalla", "seed": coerce_seed(spec.get("seed"))}
    return normalized


def workload_key(spec: Dict[str, Any]) -> str:
    """Canonical LRU key of a normalized workload spec."""
    return json.dumps(spec, sort_keys=True, default=repr)


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Structured error envelope for *exc*.

    ``type`` is the exception class name (``TaskTimeoutError`` for
    request-timeout kills); resilience-layer failures carry their attempt
    count so clients can see the retry budget was spent.
    """
    error: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, (TaskError, TaskTimeoutError)):
        error["attempts"] = exc.attempts
        if getattr(exc, "task", None) is not None:
            error["task"] = repr(exc.task)
    return {"id": request_id, "ok": False, "error": error}


def encode_response(response: Dict[str, Any]) -> bytes:
    """One response object → one JSONL-encoded line."""
    return (json.dumps(response, default=repr) + "\n").encode("utf-8")

"""Resident-substrate registry: an LRU of warm workload substrates.

The expensive half of every request — graph generation, APSP/label
construction, engine-cache warmup — is keyed entirely by the workload
recipe, so the service keeps one :class:`~repro.core.substrate.Substrate`
per distinct spec and evicts least-recently-used entries beyond
``maxsize``. Eviction is safe by construction: substrates are hashable by
content, a rebuilt substrate is equal to the evicted one, and placements
over it are byte-identical (covered by the serve round-trip tests).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.core.substrate import Substrate
from repro.experiments.workloads import (
    Workload,
    gowalla_workload,
    rg_workload,
)
from repro.service.protocol import ProtocolError, workload_key


class SubstrateEntry:
    """One resident substrate plus its provenance and usage counters."""

    def __init__(
        self, key: str, spec: Dict[str, Any], workload: Workload,
        build_seconds: float,
    ) -> None:
        self.key = key
        self.spec = spec
        self.workload = workload
        self.substrate: Substrate = workload.substrate()
        self.build_seconds = build_seconds
        self.requests_served = 0

    def stats(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "build_seconds": round(self.build_seconds, 4),
            "requests_served": self.requests_served,
            **self.substrate.stats(),
        }


def build_workload(spec: Dict[str, Any]) -> Workload:
    """Materialize the workload a normalized spec describes."""
    kind = spec["kind"]
    if kind == "rg":
        return rg_workload(
            seed=spec["seed"],
            n=spec["n"],
            radius=spec["radius"],
            max_link_failure=spec["max_link_failure"],
        )
    if kind == "gowalla":
        return gowalla_workload(seed=spec["seed"])
    raise ProtocolError(f"unknown workload kind {kind!r}")


class SubstrateLRU:
    """LRU of :class:`SubstrateEntry` keyed by canonical workload spec.

    Not thread-safe by itself — the service serializes access per event
    loop (builds happen in the executor, but registration and lookup stay
    on the loop thread).
    """

    def __init__(self, maxsize: int = 4) -> None:
        if maxsize < 1:
            raise ProtocolError("substrate LRU needs maxsize >= 1")
        self.maxsize = int(maxsize)
        self._store: "OrderedDict[str, SubstrateEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, spec: Dict[str, Any]) -> Optional[SubstrateEntry]:
        """The resident entry for *spec*, refreshed as most-recent, or
        ``None`` (callers build via :meth:`put`)."""
        key = workload_key(spec)
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry

    def build(self, spec: Dict[str, Any]) -> SubstrateEntry:
        """Build a fresh entry for *spec* (runs the workload generator and
        oracle construction — the cold path; call off the event loop)."""
        start = time.perf_counter()
        workload = build_workload(spec)
        return SubstrateEntry(
            workload_key(spec), spec, workload,
            time.perf_counter() - start,
        )

    def put(self, entry: SubstrateEntry) -> SubstrateEntry:
        """Register *entry*, evicting LRU entries beyond ``maxsize``.

        If an equal-keyed entry raced in first, the resident one wins (so
        concurrent cold requests converge on a single substrate).
        """
        resident = self._store.get(entry.key)
        if resident is not None:
            self._store.move_to_end(entry.key)
            return resident
        self._store[entry.key] = entry
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1
        return entry

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, spec: Dict[str, Any]) -> bool:
        return workload_key(spec) in self._store

    def stats(self) -> Dict[str, Any]:
        return {
            "maxsize": self.maxsize,
            "resident": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [
                entry.stats() for entry in self._store.values()
            ],
        }

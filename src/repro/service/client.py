"""Small synchronous JSONL client for the planner service.

Used by the serve round-trip tests and the CI smoke script; also a handy
programmatic entry point (``with ServiceClient(port=...) as c:
c.place(...)``). Responses may arrive out of order — the server answers
each request as its batch completes — so the client matches them to
requests by ``id`` and parks early arrivals until their caller asks.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import ProtocolError


class ServiceError(ProtocolError):
    """A structured error response, re-raised client-side.

    Attributes:
        error: the response's ``error`` object (``type``, ``message``, and
            for resilience-layer failures ``attempts``/``task``).
    """

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
        self.error = error


class ServiceClient:
    """One TCP connection to a running planner service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._parked: Dict[Any, Dict[str, Any]] = {}

    # ----------------------------------------------------------- transport

    def send(self, payload: Dict[str, Any]) -> Any:
        """Send one request object; returns its assigned ``id``."""
        if "id" not in payload:
            self._next_id += 1
            payload = {**payload, "id": self._next_id}
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        return payload["id"]

    def recv(self, request_id: Any) -> Dict[str, Any]:
        """The raw response for *request_id*, reading (and parking other
        requests' responses) as needed."""
        if request_id in self._parked:
            return self._parked.pop(request_id)
        while True:
            line = self._file.readline()
            if not line:
                raise ProtocolError(
                    "connection closed before response "
                    f"to request {request_id!r}"
                )
            response = json.loads(line)
            if response.get("id") == request_id:
                return response
            self._parked[response.get("id")] = response

    def request(self, op: str, **fields: Any) -> Any:
        """One round trip: send, await, unwrap.

        Raises:
            ServiceError: when the server answered with ``"ok": false``.
        """
        response = self.recv(self.send({"op": op, **fields}))
        if not response.get("ok"):
            raise ServiceError(response.get("error") or {})
        return response["result"]

    def request_many(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Send every payload before reading any response (lets the server
        admission-batch them); returns raw responses in request order."""
        ids = [self.send(payload) for payload in payloads]
        return [self.recv(request_id) for request_id in ids]

    # ---------------------------------------------------------- op helpers

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def place(self, workload: Dict[str, Any], **fields: Any) -> Dict:
        return self.request("place", workload=workload, **fields)

    def sigma(self, workload: Dict[str, Any], **fields: Any) -> Dict:
        return self.request("sigma", workload=workload, **fields)

    def whatif(self, session: str, action: str, **fields: Any) -> Dict:
        return self.request(
            "whatif", session=session, action=action, **fields
        )

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

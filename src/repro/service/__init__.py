"""Long-lived planner service: warm substrates, batched admission.

``repro serve`` keeps :class:`~repro.core.substrate.Substrate` objects
(graph + distance oracle + shared engine cache) resident in an LRU keyed
by workload spec and answers ``place`` / ``sigma`` / ``whatif`` / ``stats``
requests over JSON lines — the "millions of users" shape from the ROADMAP:
thousands of social-pair placement requests amortizing one expensive
substrate build. See ``docs/service.md`` for the wire protocol.
"""

from repro.service.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    parse_request,
    workload_key,
)
from repro.service.server import PlannerService, run_server
from repro.service.substrates import SubstrateLRU
from repro.service.client import ServiceClient

__all__ = [
    "PlannerService",
    "ProtocolError",
    "ServiceClient",
    "SubstrateLRU",
    "error_response",
    "ok_response",
    "parse_request",
    "run_server",
    "workload_key",
]

"""The asyncio planner service behind ``repro serve``.

One :class:`PlannerService` owns the resident-substrate LRU, the what-if
sessions, and a small thread executor where the CPU-bound solves run. The
request plane reuses the PR-2 resilience layer end to end: each job runs
under :func:`~repro.util.resilience.retry_call` with the server's
:class:`~repro.util.resilience.RetryPolicy` and per-request
``call_with_timeout`` bound, and every failure — malformed input, solver
error, timeout — comes back as a structured error response instead of a
dropped connection.

**Admission batching.** Requests against the same substrate that arrive
within ``batch_window`` seconds are grouped and executed as one executor
job, sequentially, against the substrate's shared
:class:`~repro.core.substrate.EngineCache` — the first request of a batch
builds (or extends) the engines the rest of the batch then hits warm, and
a per-substrate lock keeps the single-threaded cache invariant. Placements
are byte-identical to solving each request alone: batching changes *when*
work runs, never *what* it computes.
"""

from __future__ import annotations

import asyncio
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.planner import PlacementPlanner
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.registry import get_solver
from repro.core.substrate import PlacementRequest
from repro.exceptions import ReproError, TaskError
from repro.netgen.pairs import select_important_pairs
from repro.service.protocol import (
    WHATIF_ACTIONS,
    ProtocolError,
    coerce_seed,
    encode_response,
    error_response,
    ok_response,
    parse_pairs,
    parse_request,
    parse_workload,
    require,
    workload_key,
)
from repro.service.substrates import SubstrateEntry, SubstrateLRU
from repro.types import NodePair
from repro.util.resilience import policy_for_retries, retry_call
from repro.util.serialization import TaskJournal, canonical_key

#: Default admission-batch collection window, seconds. Long enough to
#: gather a burst of concurrent requests, short enough to be invisible in
#: any single request's latency.
DEFAULT_BATCH_WINDOW = 0.005


class _Batch:
    """Requests admitted against one substrate, awaiting a single flush."""

    __slots__ = ("key", "spec", "jobs")

    def __init__(self, key: str, spec: Dict[str, Any]) -> None:
        self.key = key
        self.spec = spec
        self.jobs: List[Tuple[Callable, asyncio.Future]] = []


class PlannerService:
    """Long-lived placement planner over resident substrates.

    Args:
        max_substrates: LRU capacity of the resident-substrate registry.
        jobs: executor threads. Same-substrate work is always serialized
            (the engine cache is single-threaded by design); extra threads
            only help when several *different* substrates are hot.
        retries: extra attempts per failed request (PR-2 retry policy,
            deterministic backoff).
        task_timeout: per-request wall-clock bound, seconds; a request
            exceeding it is answered with a ``TaskTimeoutError`` error.
        batch_window: admission-batch collection window, seconds.
        journal_dir: when set, every completed ``place`` is journaled
            (crash-safe :class:`TaskJournal`, keyed by the full request
            recipe) and an identical request — including after a server
            restart pointed at the same directory — is restored instead of
            re-solved.
    """

    def __init__(
        self,
        *,
        max_substrates: int = 4,
        jobs: int = 1,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        journal_dir: Optional[str] = None,
    ) -> None:
        self.substrates = SubstrateLRU(max_substrates)
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, int(jobs)),
            thread_name_prefix="repro-serve",
        )
        self.policy = policy_for_retries(retries)
        self.task_timeout = task_timeout
        self.batch_window = float(batch_window)
        self.journal = (
            TaskJournal(journal_dir) if journal_dir is not None else None
        )
        self.sessions: Dict[str, Dict[str, Any]] = {}
        self.stop_event = asyncio.Event()
        self._batches: Dict[str, _Batch] = {}
        self._substrate_locks: Dict[str, asyncio.Lock] = {}
        self.op_counts: Dict[str, int] = {}
        self.error_count = 0
        self.restored_count = 0
        self.batch_count = 0
        self.batched_requests = 0
        self.max_batch_size = 0

    # --------------------------------------------------------- entry points

    async def handle_line(self, line: str) -> Dict[str, Any]:
        """One request line → one response object (never raises)."""
        request_id = None
        try:
            payload = parse_request(line)
            request_id = payload.get("id")
            return await self.handle(payload)
        except BaseException as exc:  # answered, not propagated
            self.error_count += 1
            if request_id is None:
                request_id = getattr(exc, "request_id", None)
            return error_response(request_id, exc)

    async def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One parsed request → one response object."""
        op = payload["op"]
        request_id = payload.get("id")
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        try:
            if op == "ping":
                return ok_response(request_id, {"pong": True})
            if op == "shutdown":
                self.stop_event.set()
                return ok_response(request_id, {"stopping": True})
            if op == "stats":
                return ok_response(request_id, self.stats())
            if op == "place":
                return ok_response(request_id, await self._op_place(payload))
            if op == "sigma":
                return ok_response(request_id, await self._op_sigma(payload))
            if op == "whatif":
                return ok_response(
                    request_id, await self._op_whatif(payload)
                )
            raise ProtocolError(f"unknown op {op!r}")
        except BaseException as exc:
            self.error_count += 1
            return error_response(request_id, exc)

    # ---------------------------------------------------- admission batching

    async def _on_substrate(
        self, spec: Dict[str, Any], fn: Callable[[SubstrateEntry], Any]
    ) -> Any:
        """Run ``fn(entry)`` against the substrate *spec* describes,
        admission-batched with concurrent requests for the same spec."""
        key = workload_key(spec)
        batch = self._batches.get(key)
        if batch is None:
            batch = _Batch(key, spec)
            self._batches[key] = batch
            asyncio.get_running_loop().create_task(self._flush(batch))
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        batch.jobs.append((fn, future))
        return await future

    async def _flush(self, batch: _Batch) -> None:
        try:
            await asyncio.sleep(self.batch_window)
            # Close the admission window: later arrivals open a new batch.
            self._batches.pop(batch.key, None)
            loop = asyncio.get_running_loop()
            lock = self._substrate_locks.setdefault(
                batch.key, asyncio.Lock()
            )
            async with lock:
                entry = self.substrates.get(batch.spec)
                if entry is None:
                    built = await loop.run_in_executor(
                        self.executor, self.substrates.build, batch.spec
                    )
                    entry = self.substrates.put(built)
                fns = [fn for fn, _ in batch.jobs]
                outcomes = await loop.run_in_executor(
                    self.executor, self._run_jobs, entry, fns
                )
            self.batch_count += 1
            self.batched_requests += len(batch.jobs)
            self.max_batch_size = max(
                self.max_batch_size, len(batch.jobs)
            )
            for (_, future), (ok, value) in zip(batch.jobs, outcomes):
                if future.done():
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)
        except BaseException as exc:  # substrate build failed, etc.
            for _, future in batch.jobs:
                if not future.done():
                    future.set_exception(exc)

    def _run_jobs(
        self, entry: SubstrateEntry, fns: List[Callable]
    ) -> List[Tuple[bool, Any]]:
        """Execute one admitted batch sequentially on an executor thread.

        Each job is individually wrapped — under the server's retry policy
        and per-request timeout when configured — so one malformed request
        degrades to one error response, never to a failed batch.
        """
        outcomes: List[Tuple[bool, Any]] = []
        for index, fn in enumerate(fns):
            try:
                outcomes.append((True, self._call_resilient(entry, fn, index)))
            except BaseException as exc:
                outcomes.append((False, exc))
        entry.requests_served += len(fns)
        return outcomes

    def _call_resilient(
        self, entry: SubstrateEntry, fn: Callable, index: int
    ) -> Any:
        if self.task_timeout is None and self.policy.attempts == 1:
            return fn(entry)  # fast path: errors keep their own type
        try:
            return retry_call(
                fn,
                (entry,),
                policy=self.policy,
                key=(entry.key, index),
                timeout=self.task_timeout,
                retry_on=(Exception,),
            )
        except TaskError as exc:
            cause = exc.__cause__
            if isinstance(cause, ReproError) and not isinstance(
                cause, TaskError
            ):
                # Deterministic domain errors (bad pairs, unknown solver)
                # exhausted the retry budget by construction; surface the
                # original, more useful, error type.
                raise cause from None
            raise

    # -------------------------------------------------------------- ops

    def _build_request(
        self,
        payload: Dict[str, Any],
        entry: SubstrateEntry,
        *,
        what: str,
    ) -> Tuple[PlacementRequest, List[NodePair]]:
        """The per-request half: explicit pairs or sampled ones."""
        p_threshold = payload.get("p_threshold")
        d_threshold = payload.get("d_threshold")
        k = require(payload, "k", int, what)
        raw_pairs = payload.get("pairs")
        if raw_pairs is not None:
            pairs: List[NodePair] = parse_pairs(raw_pairs, what)
        else:
            m = require(payload, "m", int, what)
            if p_threshold is None:
                raise ProtocolError(
                    f"{what}: sampling pairs (no explicit 'pairs') "
                    "requires p_threshold"
                )
            pairs = select_important_pairs(
                entry.workload.graph,
                m,
                p_threshold,
                seed=coerce_seed(payload.get("pair_seed")),
                oracle=entry.workload.oracle,
            )
        request = PlacementRequest(
            pairs,
            k,
            p_threshold=p_threshold,
            d_threshold=d_threshold,
            require_initially_unsatisfied=bool(
                payload.get("require_initially_unsatisfied", True)
            ),
            allow_degenerate=bool(payload.get("allow_degenerate", False)),
        )
        return request, pairs

    async def _op_place(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        spec = parse_workload(payload)
        solver_name = payload.get("solver", "sandwich")
        if not isinstance(solver_name, str):
            raise ProtocolError("place: solver must be a string")
        solver = get_solver(solver_name)  # fail fast on unknown names
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("place: params must be an object")
        seed = coerce_seed(payload.get("seed"))

        journal_key = None
        if self.journal is not None:
            journal_key = self._place_journal_key(payload, spec)
            try:
                restored = self.journal.load(journal_key)
            except KeyError:
                restored = None
            if restored is not None:
                self.restored_count += 1
                return {**restored, "restored": True}

        def job(entry: SubstrateEntry) -> Dict[str, Any]:
            request, _ = self._build_request(payload, entry, what="place")
            instance = MSCInstance.from_parts(entry.substrate, request)
            result = solver(instance, seed=seed, **params)
            return {
                "algorithm": result.algorithm,
                "edges": [[int(u), int(w)] for u, w in result.edges],
                "sigma": int(result.sigma),
                "satisfied": [bool(flag) for flag in result.satisfied],
                "evaluations": int(result.evaluations),
                "num_pairs": request.m,
                "pairs": [[int(u), int(w)] for u, w in request.pairs],
                "substrate": entry.substrate.fingerprint,
            }

        result = await self._on_substrate(spec, job)
        if self.journal is not None and journal_key is not None:
            self.journal.put(journal_key, result)
        return result

    @staticmethod
    def _place_journal_key(
        payload: Dict[str, Any], spec: Dict[str, Any]
    ) -> List:
        recipe = {
            field: payload.get(field)
            for field in (
                "solver", "k", "p_threshold", "d_threshold", "pairs",
                "m", "pair_seed", "seed", "params",
                "require_initially_unsatisfied", "allow_degenerate",
            )
            if payload.get(field) is not None
        }
        return ["place", canonical_key(spec), canonical_key(recipe)]

    async def _op_sigma(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        spec = parse_workload(payload)
        edges = parse_pairs(require(payload, "edges", list, "sigma"), "sigma")
        pairs = parse_pairs(require(payload, "pairs", list, "sigma"), "sigma")
        p_threshold = payload.get("p_threshold")
        d_threshold = payload.get("d_threshold")

        def job(entry: SubstrateEntry) -> Dict[str, Any]:
            request = PlacementRequest(
                pairs,
                len(edges),
                p_threshold=p_threshold,
                d_threshold=d_threshold,
                require_initially_unsatisfied=False,
                allow_degenerate=True,
            )
            instance = MSCInstance.from_parts(entry.substrate, request)
            graph = instance.graph
            index_pairs = []
            for u, w in edges:
                if not graph.has_node(u) or not graph.has_node(w):
                    raise ProtocolError(
                        f"sigma: edge ({u!r}, {w!r}) references unknown "
                        "node(s)"
                    )
                index_pairs.append(
                    tuple(sorted((graph.node_index(u), graph.node_index(w))))
                )
            evaluator = SigmaEvaluator(instance)
            satisfied = evaluator.satisfied(index_pairs)
            return {
                "sigma": int(sum(satisfied)),
                "satisfied": [bool(flag) for flag in satisfied],
                "num_pairs": request.m,
                "substrate": entry.substrate.fingerprint,
            }

        return await self._on_substrate(spec, job)

    async def _op_whatif(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        action = payload.get("action", "summary")
        if action not in WHATIF_ACTIONS:
            raise ProtocolError(
                f"unknown whatif action {action!r}; "
                f"available: {', '.join(WHATIF_ACTIONS)}"
            )
        name = require(payload, "session", str, "whatif")

        if action == "open":
            spec = parse_workload(payload)

            def open_job(entry: SubstrateEntry) -> Dict[str, Any]:
                request, _ = self._build_request(
                    payload, entry, what="whatif open"
                )
                planner = PlacementPlanner.from_parts(
                    entry.substrate, request
                )
                self.sessions[name] = {
                    "planner": planner,
                    "spec": spec,
                    "entry": entry,  # pins the substrate across eviction
                }
                return {
                    "session": name,
                    "m": request.m,
                    "k": request.k,
                    "sigma": planner.sigma,
                }

            return await self._on_substrate(spec, open_job)

        session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(f"whatif: no open session {name!r}")
        if action == "close":
            del self.sessions[name]
            return {"session": name, "closed": True}

        planner: PlacementPlanner = session["planner"]

        def session_job(entry: SubstrateEntry) -> Dict[str, Any]:
            return self._whatif_action(planner, action, payload, name)

        # Route through the session's substrate so planner work is
        # serialized with batch solves over the same engine cache.
        return await self._on_substrate(session["spec"], session_job)

    def _whatif_action(
        self,
        planner: PlacementPlanner,
        action: str,
        payload: Dict[str, Any],
        name: str,
    ) -> Dict[str, Any]:
        def edge_args() -> Tuple[int, int]:
            u = require(payload, "u", int, f"whatif {action}")
            v = require(payload, "v", int, f"whatif {action}")
            return u, v

        if action == "add":
            sigma = planner.add(*edge_args())
        elif action == "remove":
            sigma = planner.remove(*edge_args())
        elif action == "undo":
            undone = planner.undo()
            return {
                "session": name,
                "undone": undone,
                "sigma": planner.sigma,
            }
        elif action == "reset":
            planner.reset()
            sigma = planner.sigma
        elif action == "adopt":
            planner.adopt(
                parse_pairs(
                    require(payload, "edges", list, "whatif adopt"),
                    "whatif adopt",
                )
            )
            sigma = planner.sigma
        elif action == "suggest":
            count = payload.get("count", 5)
            if not isinstance(count, int) or count < 1:
                raise ProtocolError(
                    "whatif suggest: count must be a positive int"
                )
            return {
                "session": name,
                "suggestions": [
                    {"edge": [int(u), int(v)], "sigma": int(value)}
                    for (u, v), value in planner.suggest(count=count)
                ],
            }
        elif action == "apply_best":
            edge = planner.apply_best()
            return {
                "session": name,
                "edge": None if edge is None else [int(edge[0]), int(edge[1])],
                "sigma": planner.sigma,
            }
        elif action == "summary":
            return {
                "session": name,
                "summary": planner.summary(),
                "sigma": planner.sigma,
                "edges": [
                    [int(u), int(v)] for u, v in planner.edges
                ],
                "remaining_budget": planner.remaining_budget,
                "over_budget": planner.over_budget,
            }
        else:  # pragma: no cover - guarded by WHATIF_ACTIONS
            raise ProtocolError(f"unknown whatif action {action!r}")
        return {
            "session": name,
            "sigma": int(sigma),
            "edges": [[int(u), int(v)] for u, v in planner.edges],
        }

    # ------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        return {
            "substrates": self.substrates.stats(),
            "ops": dict(self.op_counts),
            "errors": self.error_count,
            "restored": self.restored_count,
            "sessions": sorted(self.sessions),
            "batching": {
                "window_s": self.batch_window,
                "batches": self.batch_count,
                "requests": self.batched_requests,
                "max_batch_size": self.max_batch_size,
            },
            "executor_jobs": self.executor._max_workers,
            "retries": self.policy.attempts - 1,
            "task_timeout": self.task_timeout,
        }

    def close(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


# ------------------------------------------------------------- transports


async def _serve_line(
    service: PlannerService,
    line: bytes,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
) -> None:
    response = await service.handle_line(line.decode("utf-8", "replace"))
    async with write_lock:
        writer.write(encode_response(response))
        try:
            await writer.drain()
        except ConnectionError:
            pass


async def _handle_connection(
    service: PlannerService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: requests may interleave — each line is
    served as its own task so concurrent requests can admission-batch."""
    write_lock = asyncio.Lock()
    pending = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(
                _serve_line(service, line, writer, write_lock)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve_socket(
    service: PlannerService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Serve JSONL over TCP until a ``shutdown`` request arrives."""
    connections = set()

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connections.add((task, writer))
        try:
            await _handle_connection(service, reader, writer)
        finally:
            connections.discard((task, writer))

    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    print(f"repro-serve listening on {bound[0]}:{bound[1]}", flush=True)
    async with server:
        await service.stop_event.wait()
        # Drain: close transports so blocked readers see EOF and each
        # handler finishes (flushing its in-flight responses) cleanly.
        for _, writer in list(connections):
            writer.close()
        if connections:
            await asyncio.gather(
                *(task for task, _ in connections),
                return_exceptions=True,
            )
    service.close()


async def serve_stdio(service: PlannerService) -> None:
    """Serve JSONL over stdin/stdout (one-process pipelines, CI smokes)."""
    loop = asyncio.get_running_loop()
    out_lock = asyncio.Lock()
    pending = set()

    async def respond(line: str) -> None:
        response = await service.handle_line(line)
        async with out_lock:
            sys.stdout.write(
                encode_response(response).decode("utf-8")
            )
            sys.stdout.flush()

    while not service.stop_event.is_set():
        line = await loop.run_in_executor(None, sys.stdin.readline)
        if not line:
            break
        if not line.strip():
            continue
        task = asyncio.create_task(respond(line))
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    service.close()


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    **service_kwargs: Any,
) -> int:
    """Blocking entry point for the CLI ``serve`` subcommand."""
    async def main() -> None:
        service = PlannerService(**service_kwargs)
        if stdio:
            await serve_stdio(service)
        else:
            await serve_socket(service, host, port)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0

"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    msc-repro list
    msc-repro run table1 [--scale paper|quick] [--seed 1] [--json out.json]
    msc-repro run all --scale quick
    msc-repro run all --jobs 4 --resume ckpt/ --retries 2  # fault-tolerant
    msc-repro robustness --scale quick    # fault-injection degradation
    msc-repro serve --port 7571   # long-lived planner service (JSONL)
    msc-repro describe            # workload summaries

The execution-control flags (``--oracle``, ``--jobs``, ``--retries``,
``--task-timeout``, ``--resume``) are accepted uniformly by ``run``,
``robustness`` and ``serve``.

(also available as ``python -m repro.cli``)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.problem import ORACLE_POLICIES, set_default_oracle_policy
from repro.experiments.config import SCALES
from repro.experiments.runner import (
    all_experiment_names,
    experiment_names,
    run_experiment,
)
from repro.util.serialization import dump_json


def _add_oracle_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--oracle",
        default=None,
        choices=sorted(ORACLE_POLICIES),
        help="distance-oracle tier for instances built without an explicit "
        "oracle: 'dense' = full APSP matrix, 'sparse' = pair-centric row "
        "block, 'hub' = threshold-cutoff hub-label index (n>=10^4 scale), "
        "'auto' (the default policy) picks by instance size",
    )


def add_execution_args(
    parser: argparse.ArgumentParser,
    *,
    jobs_help: str = "number of parallel workers",
) -> None:
    """The execution-control flags shared by ``run``/``robustness``/``serve``.

    Every command that executes placement work accepts the same five
    knobs, with the same spellings and defaults: ``--oracle``, ``--jobs``,
    ``--retries``, ``--task-timeout`` and ``--resume``.
    """
    parser.add_argument("--jobs", type=int, default=1, help=jobs_help)
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a task that raised, crashed, or hung up to this many "
        "extra times (with exponential backoff) before reporting it failed",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock bound; a task exceeding it is terminated "
        "(and retried if --retries allows)",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint directory: completed tasks are journaled there as "
        "they finish, and a re-run (or restarted server) pointed at the "
        "same directory restores them instead of recomputing — results "
        "stay byte-identical to an uninterrupted run",
    )
    _add_oracle_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="msc-repro",
        description=(
            "Reproduction of 'Maintaining Social Connections through "
            "Direct Link Placement in Wireless Networks' (ICDCS 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (table1, table2, fig1..fig5) or 'all'",
    )
    run.add_argument(
        "--scale",
        default="paper",
        choices=sorted(SCALES),
        help="parameter preset (default: paper)",
    )
    run.add_argument("--seed", type=int, default=1, help="base RNG seed")
    run.add_argument(
        "--json",
        default=None,
        help="write results to this JSON file (list of experiment dicts)",
    )
    run.add_argument(
        "--precision",
        type=int,
        default=4,
        help="decimal places in rendered tables",
    )
    run.add_argument(
        "--charts",
        action="store_true",
        help="also render figure data as ASCII charts",
    )
    run.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="run each experiment this many times (seed, seed+1, ...) and "
        "report mean +/- std",
    )
    add_execution_args(
        run,
        jobs_help="fan experiments (and their inner sweeps/trials) out "
        "across this many worker processes; results are byte-identical to "
        "a serial run",
    )

    robustness = sub.add_parser(
        "robustness",
        help="fault-injection study: placement degradation under shortcut "
        "outages, failure-probability drift, and node loss",
    )
    robustness.add_argument(
        "--scale", default="paper", choices=sorted(SCALES),
        help="parameter preset (default: paper)",
    )
    robustness.add_argument(
        "--seed", type=int, default=1, help="base RNG seed"
    )
    robustness.add_argument(
        "--json", default=None, help="write the result to this JSON file"
    )
    robustness.add_argument(
        "--precision", type=int, default=4,
        help="decimal places in rendered tables",
    )
    robustness.add_argument(
        "--charts", action="store_true",
        help="also render degradation curves as ASCII charts",
    )
    add_execution_args(
        robustness,
        jobs_help="fan (mode, severity) cells out across worker processes",
    )

    serve = sub.add_parser(
        "serve",
        help="long-lived planner service: warm substrates answer place/"
        "sigma/whatif requests over JSON lines (TCP or stdio)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (TCP mode)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 (the default) picks an ephemeral port and "
        "prints it on startup",
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSONL over stdin/stdout instead of TCP (one-process "
        "pipelines, CI smokes)",
    )
    serve.add_argument(
        "--max-substrates",
        type=int,
        default=4,
        help="how many workload substrates stay resident (LRU beyond this)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission-batch collection window: concurrent requests for "
        "the same substrate arriving within it run as one batch over the "
        "shared engine cache (default 0.005)",
    )
    add_execution_args(
        serve,
        jobs_help="executor threads; same-substrate requests are always "
        "serialized, extra threads help when several substrates are hot",
    )

    sub.add_parser(
        "describe", help="print the generated workloads' summary statistics"
    )

    report = sub.add_parser(
        "report", help="combine saved --json results into a markdown report"
    )
    report.add_argument("json_files", nargs="+", help="result JSON files")
    report.add_argument(
        "--output", "-o", required=True, help="markdown file to write"
    )
    report.add_argument(
        "--title", default="MSC reproduction report", help="report heading"
    )
    return parser


def _cmd_list() -> int:
    paper = set(experiment_names())
    for name in all_experiment_names():
        tag = "" if name in paper else "  (supplementary)"
        print(f"{name}{tag}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = args.experiments
    if len(names) == 1 and names[0].lower() == "all":
        names = experiment_names()
    jobs = args.jobs
    results = []
    fault_tolerant = (
        args.resume is not None
        or args.retries > 0
        or args.task_timeout is not None
    )
    if args.seeds == 1 and (
        fault_tolerant or (jobs > 1 and len(names) > 1)
    ):
        # Fan whole experiments out; each carries its own wall-clock so the
        # summary can report the speedup over an equivalent serial run.
        # Failures (after the retry budget) are reported per task instead
        # of aborting the campaign; completed work is kept — and, with
        # --resume, journaled for the next invocation.
        from repro.experiments.runner import run_all_report

        wall_start = time.perf_counter()
        report = run_all_report(
            scale=args.scale,
            seed=args.seed,
            names=names,
            jobs=jobs,
            checkpoint_dir=args.resume,
            retries=args.retries,
            task_timeout=args.task_timeout,
        )
        wall = time.perf_counter() - wall_start
        timed = [entry for entry in report.results if entry is not None]
        for result, elapsed in timed:
            print(
                result.render(precision=args.precision, charts=args.charts)
            )
            print(f"[{result.name} finished in {elapsed:.1f}s]")
            print()
            results.append(result.to_json())
        serial_equivalent = sum(elapsed for _, elapsed in timed)
        speedup = serial_equivalent / wall if wall > 0 else float("inf")
        restored = (
            f"; {report.restored} restored from {args.resume}"
            if report.restored
            else ""
        )
        retried = (
            f"; {report.retried} attempt(s) retried" if report.retried else ""
        )
        print(
            f"[{len(timed)}/{len(names)} experiments in {wall:.1f}s wall "
            f"with --jobs {jobs}; serial-equivalent "
            f"{serial_equivalent:.1f}s; speedup {speedup:.1f}x"
            f"{restored}{retried}]"
        )
        print()
        if report.failures:
            for error in report.failures:
                print(f"FAILED: {error}", file=sys.stderr)
                if error.cause_traceback:
                    last = error.cause_traceback.strip().splitlines()[-1]
                    print(f"  cause: {last}", file=sys.stderr)
            hint = (
                f" re-run with --resume {args.resume} to retry only the "
                "failed experiment(s)."
                if args.resume
                else " pass --resume DIR to checkpoint completed work."
            )
            print(
                f"{len(report.failures)} experiment(s) failed; "
                f"{len(timed)} completed result(s) were kept.{hint}",
                file=sys.stderr,
            )
            if args.json and results:
                dump_json(results, args.json)
                print(f"wrote {args.json} (completed experiments only)")
            return 1
    else:
        for name in names:
            start = time.perf_counter()
            if args.seeds > 1:
                from repro.exceptions import ValidationError
                from repro.experiments.stats import run_with_seeds

                try:
                    result = run_with_seeds(
                        name,
                        seeds=range(args.seed, args.seed + args.seeds),
                        scale=args.scale,
                        jobs=jobs,
                    )
                except ValidationError as exc:
                    print(
                        f"[{name}: not aggregatable across seeds ({exc}); "
                        "falling back to a single run]"
                    )
                    result = run_experiment(
                        name, scale=args.scale, seed=args.seed, jobs=jobs
                    )
            else:
                result = run_experiment(
                    name, scale=args.scale, seed=args.seed, jobs=jobs
                )
            elapsed = time.perf_counter() - start
            print(
                result.render(precision=args.precision, charts=args.charts)
            )
            print(f"[{name} finished in {elapsed:.1f}s]")
            print()
            results.append(result.to_json())
    if args.json:
        dump_json(results, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    fault_tolerant = (
        args.resume is not None
        or args.retries > 0
        or args.task_timeout is not None
    )
    start = time.perf_counter()
    if fault_tolerant:
        from repro.experiments.runner import run_all_report

        report = run_all_report(
            scale=args.scale,
            seed=args.seed,
            names=["robustness"],
            jobs=args.jobs,
            checkpoint_dir=args.resume,
            retries=args.retries,
            task_timeout=args.task_timeout,
        )
        if report.failures:
            for error in report.failures:
                print(f"FAILED: {error}", file=sys.stderr)
            return 1
        result, _ = next(
            entry for entry in report.results if entry is not None
        )
    else:
        result = run_experiment(
            "robustness", scale=args.scale, seed=args.seed, jobs=args.jobs
        )
    elapsed = time.perf_counter() - start
    print(result.render(precision=args.precision, charts=args.charts))
    print(f"[robustness finished in {elapsed:.1f}s]")
    if args.json:
        dump_json([result.to_json()], args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import DEFAULT_BATCH_WINDOW, run_server

    return run_server(
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        max_substrates=args.max_substrates,
        jobs=args.jobs,
        retries=args.retries,
        task_timeout=args.task_timeout,
        batch_window=(
            args.batch_window
            if args.batch_window is not None
            else DEFAULT_BATCH_WINDOW
        ),
        journal_dir=args.resume,
    )


def _cmd_describe() -> int:
    from repro.experiments.workloads import gowalla_workload, rg_workload
    from repro.graph.metrics import graph_stats

    rg = rg_workload(seed=1)
    print(f"RG workload:      {graph_stats(rg.graph)}")
    gowalla = gowalla_workload()
    print(f"Gowalla workload: {graph_stats(gowalla.graph)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "oracle", None):
        set_default_oracle_policy(args.oracle)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "describe":
        return _cmd_describe()
    if args.command == "report":
        from repro.experiments.report import write_report

        write_report(args.json_files, args.output, title=args.title)
        print(f"wrote {args.output}")
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())

"""Plain-text table rendering for experiment reports.

The experiment harness prints tables shaped like the paper's Tables I/II and
series shaped like its figures; this module owns the formatting so runners
stay focused on the science.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object, precision: int = 4) -> str:
    """Format one table cell: floats get fixed precision, rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["k", "ratio"], [[2, 0.5], [4, 0.25]], title="T"))
    T
    k | ratio
    --+-------
    2 | 0.5000
    4 | 0.2500
    """
    str_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(separator)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render figure-style data: one x column plus one column per series.

    *series* is a sequence of ``(name, values)`` tuples; every value list must
    align with *x_values*.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name, values in series:
            if len(values) != len(x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} values, "
                    f"expected {len(x_values)}"
                )
            row.append(values[i])
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)

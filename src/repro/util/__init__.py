"""Shared utilities: RNG handling, union-find, validation, table rendering."""

from repro.util.rng import ensure_rng, spawn_rng
from repro.util.unionfind import UnionFind
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "UnionFind",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]

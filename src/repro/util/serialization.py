"""JSON serialization helpers for experiment results.

Results are plain dictionaries of primitives, lists and tuples; tuples are
converted to lists on write and restored by the reader only as lists (JSON has
no tuple type), so code that round-trips results should not rely on tupleness.

All writes are **atomic**: the payload goes to a temporary file in the target
directory and is moved into place with :func:`os.replace`, so a reader (or a
concurrent ``--jobs`` worker, or a process killed mid-write) can never observe
a truncated file — it sees either the old content or the new, complete one.
:class:`TaskJournal` builds on that to checkpoint completed tasks of a
long-running campaign crash-safely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Tuple, Union

PathLike = Union[str, Path]

#: Suffix of in-flight temporary files; readers skip them.
TMP_SUFFIX = ".tmp"


def _default(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def dump_json(data: Any, path: PathLike, indent: int = 2) -> None:
    """Write *data* to *path* as pretty-printed JSON, creating parents.

    The write is atomic (temp file + :func:`os.replace` in the same
    directory): concurrent readers and killed writers never see a partial
    file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = (
        json.dumps(data, indent=indent, sort_keys=True, default=_default)
        + "\n"
    )
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_json(path: PathLike) -> Any:
    """Read JSON from *path*."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def canonical_key(key: Any) -> str:
    """Canonical JSON text of a task key (tuples and lists coincide)."""
    return json.dumps(key, sort_keys=True, default=_default)


class TaskJournal:
    """Crash-safe directory journal of ``key -> payload`` records.

    One JSON file per completed task, written atomically, so a campaign
    killed at any instant leaves only complete records behind; a resumed
    run skips exactly the tasks whose records exist. Keys are arbitrary
    JSON-serializable values compared by their canonical JSON text (so the
    tuple ``("fig1", "quick", 1)`` and the list form round-tripped through
    JSON are the same key).
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: Any) -> Path:
        digest = hashlib.sha256(
            canonical_key(key).encode("utf-8")
        ).hexdigest()[:32]
        return self.directory / f"task-{digest}.json"

    def has(self, key: Any) -> bool:
        return self._path(key).exists()

    def put(self, key: Any, payload: Any) -> None:
        """Record *payload* for *key* (atomic; overwrites silently)."""
        dump_json({"key": key, "payload": payload}, self._path(key))

    def load(self, key: Any) -> Any:
        """Payload recorded for *key*.

        Raises:
            KeyError: when no (readable, complete) record exists. A
                corrupt record — possible only if written by something
                other than :meth:`put` — is treated as missing.
        """
        path = self._path(key)
        try:
            record = load_json(path)
            if canonical_key(record["key"]) != canonical_key(key):
                raise KeyError(key)  # hash collision or foreign file
            return record["payload"]
        except FileNotFoundError:
            raise KeyError(key) from None
        except (json.JSONDecodeError, TypeError, KeyError):
            raise KeyError(key) from None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All complete ``(key, payload)`` records, unordered; corrupt or
        in-flight files are skipped."""
        for path in sorted(self.directory.glob("task-*.json")):
            try:
                record = load_json(path)
                yield record["key"], record["payload"]
            except (json.JSONDecodeError, TypeError, KeyError, OSError):
                continue

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

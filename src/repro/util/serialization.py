"""JSON serialization helpers for experiment results.

Results are plain dictionaries of primitives, lists and tuples; tuples are
converted to lists on write and restored by the reader only as lists (JSON has
no tuple type), so code that round-trips results should not rely on tupleness.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def _default(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def dump_json(data: Any, path: PathLike, indent: int = 2) -> None:
    """Write *data* to *path* as pretty-printed JSON, creating parents."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(data, indent=indent, sort_keys=True, default=_default)
        + "\n",
        encoding="utf-8",
    )


def load_json(path: PathLike) -> Any:
    """Read JSON from *path*."""
    return json.loads(Path(path).read_text(encoding="utf-8"))

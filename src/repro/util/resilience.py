"""Retry, backoff and timeout primitives for fault-tolerant execution.

The experiment layer fans independent tasks across worker processes; a
crashed or hung worker must not take the campaign down with it. This module
provides the building blocks the hardened fan-out
(:func:`repro.experiments.parallel.fanout`) is assembled from:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **deterministic** jitter. The jitter for attempt ``a`` of task ``key`` is
  drawn from an RNG derived via :func:`~repro.util.rng.ensure_rng` /
  :func:`~repro.util.rng.spawn_rng` from ``(key, a)`` alone, so two runs of
  the same campaign back off identically — reproducibility extends to the
  failure path.
* :func:`retry_call` — run a callable under a policy, wrapping the final
  failure in :class:`~repro.exceptions.TaskError` with the task identity,
  attempt count and original traceback.
* :func:`call_with_timeout` — bound a single call's wall-clock. The callable
  runs on a daemon thread; on timeout a
  :class:`~repro.exceptions.TaskTimeoutError` is raised and the thread is
  abandoned (it cannot be killed — process-level timeouts, where the worker
  *can* be killed, are handled by the process fan-out).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro.exceptions import TaskError, TaskTimeoutError, ValidationError
from repro.util.rng import ensure_rng, spawn_rng
from repro.util.validation import (
    check_nonnegative,
    check_positive_int,
    check_probability,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with exponential backoff and deterministic
    jitter.

    Attributes:
        attempts: total attempts per task (1 = no retry).
        base_delay: delay before the first retry, seconds.
        factor: multiplicative backoff per further retry.
        max_delay: cap on the un-jittered delay.
        jitter: fraction of the delay randomized symmetrically around it
            (0.25 means the actual delay is within ±25% of nominal). The
            randomness is a pure function of ``(key, attempt)``, never of
            shared mutable state.
    """

    attempts: int = 1
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        check_positive_int(self.attempts, "attempts")
        check_nonnegative(self.base_delay, "base_delay")
        if self.factor < 1.0:
            raise ValidationError(
                f"factor must be >= 1, got {self.factor!r}"
            )
        check_nonnegative(self.max_delay, "max_delay")
        check_probability(self.jitter, "jitter")

    def delay(self, attempt: int, key: Any = None) -> float:
        """Backoff delay after failed attempt number *attempt* (1-based)."""
        check_positive_int(attempt, "attempt")
        nominal = min(
            self.base_delay * self.factor ** (attempt - 1), self.max_delay
        )
        if self.jitter == 0.0 or nominal == 0.0:
            return nominal
        # Deterministic jitter: derive a child stream from (key, attempt)
        # alone so the schedule is reproducible across runs and processes.
        rng = spawn_rng(ensure_rng((repr(key), attempt)), "retry-jitter")
        return nominal * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def delays(self, key: Any = None) -> Iterator[float]:
        """The full backoff schedule (one delay per possible retry)."""
        for attempt in range(1, self.attempts):
            yield self.delay(attempt, key)


#: Policy used when callers ask for "n retries" without tuning knobs.
def policy_for_retries(retries: int) -> RetryPolicy:
    """A :class:`RetryPolicy` granting *retries* extra attempts."""
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries!r}")
    return RetryPolicy(attempts=retries + 1)


def call_with_timeout(
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[dict] = None,
    timeout: Optional[float] = None,
    *,
    task: Any = None,
) -> Any:
    """Run ``fn(*args, **kwargs)``, raising :class:`TaskTimeoutError` if it
    does not finish within *timeout* seconds.

    The call runs on a daemon thread; a timed-out call keeps running in the
    background until the interpreter exits (threads cannot be killed).
    Callers that need the hung work actually reclaimed should run tasks in
    worker *processes* (see ``fanout``), where a hung worker is terminated.
    """
    if timeout is None:
        return fn(*args, **(kwargs or {}))
    check_nonnegative(float(timeout), "timeout")

    outcome: list = []

    def _run() -> None:
        try:
            outcome.append((True, fn(*args, **(kwargs or {}))))
        except BaseException as exc:  # delivered to the caller below
            outcome.append((False, exc))

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TaskTimeoutError(
            f"task {task!r} exceeded its {timeout}s timeout",
            task=task,
            attempts=1,
        )
    ok, payload = outcome[0]
    if ok:
        return payload
    raise payload


def retry_call(
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[dict] = None,
    *,
    policy: Optional[RetryPolicy] = None,
    key: Any = None,
    timeout: Optional[float] = None,
    retry_on: Tuple[type, ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_failure: Optional[Callable[[int, BaseException], None]] = None,
) -> Any:
    """Run ``fn(*args, **kwargs)`` under *policy*, retrying failures.

    Args:
        policy: retry schedule (default: a single attempt).
        key: task identity — reported in the terminal
            :class:`~repro.exceptions.TaskError` and mixed into the
            deterministic jitter.
        timeout: optional per-attempt wall-clock bound (thread-based; see
            :func:`call_with_timeout`).
        retry_on: exception types that consume an attempt; anything else
            propagates immediately.
        sleep: injectable sleep for tests.
        on_failure: observer called with ``(attempt, exception)`` after
            each failed attempt.

    Raises:
        TaskError: when every attempt failed; carries *key*, the attempt
            count and the last traceback. :class:`TaskTimeoutError` (a
            subclass) when the last failure was a timeout.
    """
    policy = policy or RetryPolicy()
    last_traceback = None
    last_exc: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return call_with_timeout(
                fn, args, kwargs, timeout, task=key
            )
        except retry_on as exc:
            last_exc = exc
            last_traceback = traceback.format_exc()
            if on_failure is not None:
                on_failure(attempt, exc)
            if attempt < policy.attempts:
                sleep(policy.delay(attempt, key))
    error_cls = (
        TaskTimeoutError if isinstance(last_exc, TaskTimeoutError)
        else TaskError
    )
    raise error_cls(
        f"task {key!r} failed after {policy.attempts} attempt(s): "
        f"{last_exc!r}",
        task=key,
        attempts=policy.attempts,
        cause_traceback=last_traceback,
    ) from last_exc

"""Small validation helpers used across the library.

They raise :class:`repro.exceptions.ValidationError` with a message that names
the offending parameter, so errors surface near the user's call site instead
of deep inside an algorithm.
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import ValidationError


def _require_real(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    if math.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    return float(value)


def check_probability(value: Any, name: str = "probability") -> float:
    """Validate a probability in [0, 1]; return it as float."""
    v = _require_real(value, name)
    if not 0.0 <= v <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_fraction(value: Any, name: str = "fraction") -> float:
    """Validate a value in the open-closed sense used for failure thresholds:
    [0, 1)."""
    v = _require_real(value, name)
    if not 0.0 <= v < 1.0:
        raise ValidationError(f"{name} must be in [0, 1), got {value!r}")
    return v


def check_nonnegative(value: Any, name: str = "value") -> float:
    """Validate a finite, non-negative real; return it as float."""
    v = _require_real(value, name)
    if math.isinf(v) or v < 0:
        raise ValidationError(f"{name} must be finite and >= 0, got {value!r}")
    return v


def check_positive(value: Any, name: str = "value") -> float:
    """Validate a finite, strictly positive real; return it as float."""
    v = check_nonnegative(value, name)
    if v == 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return v


def check_positive_int(value: Any, name: str = "value") -> int:
    """Validate a strictly positive integer; return it as int."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative_int(value: Any, name: str = "value") -> int:
    """Validate a non-negative integer; return it as int."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value

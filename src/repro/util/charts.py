"""ASCII line charts for figure-shaped experiment data.

The experiment runners emit series data (x values + named series); this
module renders them as terminal plots so a CLI run of ``fig2``–``fig5``
shows the *shape* of the figure, not just a table of numbers.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

#: Marker characters assigned to series in order.
MARKERS = "ox*+#@%&"


def _scale(
    value: float, lo: float, hi: float, size: int
) -> int:
    """Map *value* in [lo, hi] onto a row/column index in [0, size-1]."""
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def render_chart(
    x_values: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render series as an ASCII scatter/line chart.

    Args:
        x_values: shared x coordinates (numeric).
        series: ``(name, y values)`` tuples; y lists must match *x_values*.
        width / height: plot area size in characters.
        title: optional heading.

    Non-finite y values are skipped. Returns a multi-line string with a
    y-axis (min/max labels), the plot grid, an x-axis, and a legend mapping
    markers to series names.
    """
    xs = [float(x) for x in x_values]
    if not xs:
        raise ValueError("x_values must be non-empty")
    cleaned: List[Tuple[str, List[float]]] = []
    ys_all: List[float] = []
    for name, ys in series:
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} values, expected {len(xs)}"
            )
        ys = [float(y) for y in ys]
        cleaned.append((name, ys))
        ys_all.extend(y for y in ys if math.isfinite(y))
    if not ys_all:
        raise ValueError("no finite y values to plot")

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_lo == y_hi:
        y_lo -= 1.0
        y_hi += 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(cleaned):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            if not math.isfinite(y):
                continue
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            # Overlapping points: show the later series' marker.
            grid[row][col] = marker

    y_hi_label = f"{y_hi:g}"
    y_lo_label = f"{y_lo:g}"
    margin = max(len(y_hi_label), len(y_lo_label))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_hi_label.rjust(margin)
        elif row_index == height - 1:
            label = y_lo_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * margin + "  " + x_axis)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, (name, _ys) in enumerate(cleaned)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)

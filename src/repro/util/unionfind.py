"""Union-find (disjoint-set) with path compression and union by size.

Used by the shortcut-distance engine to contract the endpoints of zero-length
shortcut edges into supernodes (see ``repro.graph.shortcuts``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are registered lazily: :meth:`find` and :meth:`union` accept any
    hashable and create a singleton set on first sight.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set if not already present."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of registered elements (not number of sets)."""
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if *a* and *b* are currently in the same set."""
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        """Number of disjoint sets among the registered elements."""
        return sum(1 for e in self._parent if self._parent[e] == e)

    def components(self) -> List[List[Hashable]]:
        """Return the sets as lists, grouped by representative."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), []).append(element)
        return list(groups.values())

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`random.Random` instance (shared stream). :func:`ensure_rng` normalizes
all three into a ``random.Random``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple, Union

SeedLike = Union[None, int, str, Tuple, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` for the given seed specification.

    Passing an existing ``random.Random`` returns it unchanged, which lets a
    caller share one stream across several components. Composite seeds
    (tuples/lists, e.g. ``(base_seed, "fig3", p_t)``) are hashed with SHA-256
    so they are deterministic across processes — unlike built-in ``hash``,
    which is salted for strings.
    """
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, (tuple, list)):
        digest = hashlib.sha256(repr(seed).encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))
    return random.Random(seed)


def spawn_rng(rng: random.Random, label: str = "") -> random.Random:
    """Derive an independent child generator from *rng*.

    The child is seeded from the parent stream (plus an optional *label* so
    different subsystems fork differently), keeping experiment runs
    reproducible while isolating each component's consumption pattern. The
    label is mixed in via SHA-256, not built-in ``hash`` — string hashing
    is salted per process (PYTHONHASHSEED), which would make spawned
    streams differ between interpreter launches.
    """
    base = rng.getrandbits(64)
    if label:
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        base ^= int.from_bytes(digest[:8], "big")
    return random.Random(base)


def ensure_seed(seed: SeedLike, fallback: int) -> SeedLike:
    """Return *seed* unless it is ``None``, in which case *fallback*."""
    return fallback if seed is None else seed

"""Benchmark: regenerate Fig. 3 (AA vs EA vs AEA over k)."""

from repro.experiments.fig3 import run_fig3


def test_fig3(once):
    result = once(run_fig3, scale="quick", seed=1)
    print()
    print(result.render())
    for fig in result.series:
        series = dict(fig["series"])
        for name, values in series.items():
            if name.startswith("EA"):
                aa = series[name.replace("EA", "AA")]
                assert sum(aa) >= sum(values)

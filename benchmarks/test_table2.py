"""Benchmark: regenerate Table II (sandwich ratio grid, Gowalla)."""

from repro.experiments.table2 import run_table2


def test_table2(once):
    result = once(run_table2, scale="quick", seed=1)
    print()
    print(result.render())
    for row in result.tables[0]["rows"]:
        assert all(0.0 <= r <= 1.0 + 1e-9 for r in row[1:])

"""Benchmark: regenerate Fig. 2 (AA vs random over k)."""

from repro.experiments.fig2 import run_fig2


def test_fig2(once):
    result = once(run_fig2, scale="quick", seed=1)
    print()
    print(result.render())
    for fig in result.series:
        series = dict(fig["series"])
        for name, values in series.items():
            if name.startswith("AA"):
                random_name = name.replace("AA", "random")
                assert all(
                    a >= r for a, r in zip(values, series[random_name])
                )

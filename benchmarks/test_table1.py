"""Benchmark: regenerate Table I (sandwich ratio grid, RG graph)."""

from repro.experiments.table1 import run_table1


def test_table1(once):
    result = once(run_table1, scale="quick", seed=1)
    print()
    print(result.render())
    # Shape assertions (paper §VII-B): valid ratios everywhere.
    for row in result.tables[0]["rows"]:
        assert all(0.0 <= r <= 1.0 + 1e-9 for r in row[1:])

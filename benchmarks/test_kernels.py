"""Microbenchmarks of the design-critical kernels (DESIGN.md §4):

* σ point evaluation (supernode contraction over the APSP matrix),
* the vectorized greedy candidate scan (``add_candidates``),
* APSP matrix construction,
* one full AEA iteration (greedy swap).

These are the operations every algorithm's runtime reduces to; tracking
them catches performance regressions independent of experiment wiring.
"""

import pytest

from repro.core.aea import AdaptiveEvolutionaryAlgorithm
from repro.core.bounds import MuFunction, NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.experiments.workloads import rg_workload
from repro.graph.paths import all_pairs_distance_matrix


@pytest.fixture(scope="module")
def instance():
    workload = rg_workload(seed=5, n=100)
    return workload.instance(0.1, m=40, k=6, seed=6)


@pytest.fixture(scope="module")
def edges():
    return [(0, 50), (10, 60), (20, 70), (30, 80)]


def test_apsp_matrix(benchmark, instance):
    result = benchmark(
        all_pairs_distance_matrix, instance.graph
    )
    assert result.shape[0] == instance.n


def test_sigma_point_evaluation(benchmark, instance, edges):
    evaluator = SigmaEvaluator(instance)
    value = benchmark(evaluator.value, edges)
    assert 0 <= value <= instance.m


def test_sigma_candidate_scan(benchmark, instance, edges):
    evaluator = SigmaEvaluator(instance)
    scores = benchmark(evaluator.add_candidates, edges)
    assert scores.shape == (instance.n, instance.n)


def test_mu_candidate_scan(benchmark, instance, edges):
    mu = MuFunction(instance)
    scores = benchmark(mu.add_candidates, edges)
    assert scores.shape == (instance.n, instance.n)


def test_nu_candidate_scan(benchmark, instance, edges):
    nu = NuFunction(instance)
    scores = benchmark(nu.add_candidates, edges)
    assert scores.shape == (instance.n, instance.n)


def test_aea_greedy_swap(benchmark, instance):
    aea = AdaptiveEvolutionaryAlgorithm(instance, iterations=1, seed=7)
    placement = aea._random_placement(instance.k)
    new_edges, value, _cost = benchmark(aea._greedy_swap, placement)
    assert len(new_edges) == instance.k
    assert value >= 0


def test_weighted_sigma_candidate_scan(benchmark, instance, edges):
    from repro.core.weighted import WeightedSigmaEvaluator

    weighted = WeightedSigmaEvaluator(
        instance, [1.0 + (i % 3) for i in range(instance.m)]
    )
    scores = benchmark(weighted.add_candidates, edges)
    assert scores.shape == (instance.n, instance.n)


def test_k_shortest_paths(benchmark, instance):
    from repro.graph.kpaths import k_shortest_paths

    u, w = instance.pairs[0]
    paths = benchmark(k_shortest_paths, instance.graph, u, w, 5)
    assert 1 <= len(paths) <= 5


def test_delivery_trial_round(benchmark, instance):
    from repro.sim.delivery import DeliverySimulator

    simulator = DeliverySimulator(instance.graph)
    report = benchmark(
        simulator.simulate,
        instance.pairs[:10],
        trials=20,
        seed=3,
    )
    assert report.trials == 20


def test_shortcut_engine_build(benchmark, instance, edges):
    from repro.graph.shortcuts import ShortcutDistanceEngine

    engine = benchmark(
        ShortcutDistanceEngine.from_index_pairs,
        instance.oracle,
        edges,
    )
    assert engine.component_indices

"""Benchmark: regenerate Fig. 1 (placement showcase, AA vs random)."""

from repro.experiments.fig1 import run_fig1


def test_fig1(once):
    result = once(run_fig1, scale="quick", seed=1)
    print()
    print(result.render())
    rows = {r[0]: r[1] for r in result.tables[0]["rows"]}
    assert rows["sandwich"] >= rows["random"]

"""Benchmark: regenerate Fig. 4 (maintained connections vs iterations r)."""

from repro.experiments.fig4 import run_fig4


def test_fig4(once):
    result = once(run_fig4, scale="quick", seed=1)
    print()
    print(result.render())
    for fig in result.series:
        for name, values in fig["series"]:
            assert all(a <= b for a, b in zip(values, values[1:])), name

"""Benchmark-regression gate — compares a fresh run against the committed
``BENCH_perf.json`` baseline.

Raw wall-clock times are machine-dependent, so the gate compares the
*relative* speedups measured on the same machine in the same process:

* fig1 greedy path: the fast-vs-legacy speedup at the headline size and at
  the quick size must not fall more than ``--tolerance`` (default 25%)
  below the committed baseline's. A drop means the optimized path itself
  regressed — both numbers divide out the machine.
* ``--memory``: additionally runs the sparse-vs-dense oracle tier at
  n=2000 and asserts the sparse peak stays within the memory budget
  (≤ 25% of the dense peak for the same workload) with placements
  identical to the dense tier.
* ``--large-n``: additionally runs the hub-vs-sparse tier at n=10^4 and
  asserts the hub solve is ≥ 3× faster with a lower tracemalloc peak and
  an identical placement (the hub tier's acceptance floors).
* ``--serve``: additionally runs the serve warm-cache bench and asserts a
  warm (resident-substrate) request is ≥ 5× faster than a cold
  rebuild-per-request, with identical placements.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--baseline BENCH_perf.json] [--tolerance 0.25] [--memory] \
        [--large-n] [--serve]

Exit status 0 = no regression; 1 = regression (messages on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

try:
    from benchmarks.perf_harness import (
        bench_greedy_path,
        bench_hub_tier,
        bench_oracle_tiers,
        bench_serve_warm_cache,
    )
except ImportError:  # invoked as `python benchmarks/check_regression.py`
    from perf_harness import (
        bench_greedy_path,
        bench_hub_tier,
        bench_oracle_tiers,
        bench_serve_warm_cache,
    )

#: Memory-gate workload: n=2000 with p_t=0.03 keeps a comfortable margin
#: below the 0.25 budget (the committed BENCH_perf.json carries the
#: tighter p_t=0.04 point, which sits right at the budget).
MEMORY_GATE_SIZES = [(2000, 0.03, 60, 5, True)]
MEMORY_BUDGET_RATIO = 0.25

#: Large-n gate: the smallest hub-scale size (the full 10^5 series lives
#: in BENCH_perf.json; one point keeps the gate fast). Floors are the
#: tentpole's acceptance criteria, machine-relative because speedup and
#: mem_ratio divide out the hardware.
LARGE_N_GATE_SIZES = [(10_000, 0.03, 60, 5)]
LARGE_N_SPEEDUP_FLOOR = 3.0

#: Serve gate: a warm (resident-substrate) request must be at least this
#: many times faster than a cold rebuild-per-request — the acceptance
#: floor of the planner-service work, machine-relative by construction.
SERVE_WARM_SPEEDUP_FLOOR = 5.0


def check_greedy_speedups(baseline: dict, tolerance: float) -> list:
    """Compare fresh fig1 greedy-path speedups against *baseline*."""
    failures = []
    base = baseline["fig1_greedy_path"]
    current = bench_greedy_path()
    for label, key in (("headline", "speedup"), ("quick", "quick_speedup")):
        base_speedup = float(base[key])
        now_speedup = float(current[key])
        floor = base_speedup * (1.0 - tolerance)
        status = "ok" if now_speedup >= floor else "REGRESSION"
        print(
            f"fig1 {label} speedup: baseline {base_speedup:.3f}, "
            f"current {now_speedup:.3f} (floor {floor:.3f}) [{status}]"
        )
        if now_speedup < floor:
            failures.append(
                f"fig1 {label} speedup {now_speedup:.3f} fell more than "
                f"{tolerance:.0%} below baseline {base_speedup:.3f}"
            )
    return failures


def check_memory_budget() -> list:
    """Run the sparse-vs-dense tier and enforce the peak-memory budget."""
    failures = []
    entry = bench_oracle_tiers(sizes=MEMORY_GATE_SIZES)["sizes"][0]
    ratio = float(entry["mem_ratio"])
    status = "ok" if ratio <= MEMORY_BUDGET_RATIO else "REGRESSION"
    print(
        f"oracle tier n={entry['n']} p_t={entry['p_t']}: sparse peak "
        f"{entry['sparse_peak_mb']}MB vs dense {entry['dense_peak_mb']}MB "
        f"-> ratio {ratio:.3f} (budget {MEMORY_BUDGET_RATIO}) [{status}]"
    )
    if ratio > MEMORY_BUDGET_RATIO:
        failures.append(
            f"sparse peak is {ratio:.3f} of dense (budget "
            f"{MEMORY_BUDGET_RATIO}) at n={entry['n']}"
        )
    if not entry.get("placements_identical"):
        failures.append("sparse placements diverged from dense")
    return failures


def check_large_n() -> list:
    """Run the hub-vs-sparse tier at hub scale and enforce the floors."""
    failures = []
    entry = bench_hub_tier(sizes=LARGE_N_GATE_SIZES)["sizes"][0]
    speedup = float(entry["speedup"])
    mem_ratio = float(entry["mem_ratio"])
    status = (
        "ok"
        if speedup >= LARGE_N_SPEEDUP_FLOOR and mem_ratio < 1.0
        else "REGRESSION"
    )
    print(
        f"hub tier n={entry['n']}: solve {entry['hub_s']}s vs sparse "
        f"{entry['sparse_s']}s -> speedup {speedup:.3f} (floor "
        f"{LARGE_N_SPEEDUP_FLOOR}), mem ratio {mem_ratio:.3f} "
        f"(budget < 1.0) [{status}]"
    )
    if speedup < LARGE_N_SPEEDUP_FLOOR:
        failures.append(
            f"hub-tier speedup {speedup:.3f} below floor "
            f"{LARGE_N_SPEEDUP_FLOOR} at n={entry['n']}"
        )
    if mem_ratio >= 1.0:
        failures.append(
            f"hub-tier peak memory is {mem_ratio:.3f} of sparse "
            f"(must be < 1.0) at n={entry['n']}"
        )
    if not entry.get("placements_identical"):
        failures.append("hub placements diverged from sparse")
    return failures


def check_serve_warm_cache() -> list:
    """Run the serve warm-vs-cold bench and enforce the speedup floor."""
    failures = []
    entry = bench_serve_warm_cache()
    speedup = float(entry["speedup"])
    status = (
        "ok" if speedup >= SERVE_WARM_SPEEDUP_FLOOR else "REGRESSION"
    )
    print(
        f"serve warm cache n={entry['n']}: cold "
        f"{entry['cold_s_per_request']}s/req vs warm "
        f"{entry['warm_s_per_request']}s/req -> speedup {speedup:.3f} "
        f"(floor {SERVE_WARM_SPEEDUP_FLOOR}) [{status}]"
    )
    if speedup < SERVE_WARM_SPEEDUP_FLOOR:
        failures.append(
            f"serve warm-cache speedup {speedup:.3f} below floor "
            f"{SERVE_WARM_SPEEDUP_FLOOR} at n={entry['n']}"
        )
    if not entry.get("placements_identical"):
        failures.append("warm placements diverged from cold")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_perf.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative speedup drop before failing (default 0.25)",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also enforce the sparse-tier peak-memory budget at n=2000",
    )
    parser.add_argument(
        "--large-n",
        action="store_true",
        help="also enforce the hub-tier speedup/memory floors at n=10^4",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also enforce the serve warm-cache speedup floor (warm "
        "resident-substrate requests >= 5x faster than cold rebuilds)",
    )
    args = parser.parse_args()

    with open(args.baseline) as handle:
        baseline = json.load(handle)

    failures = check_greedy_speedups(baseline, args.tolerance)
    if args.memory:
        failures.extend(check_memory_budget())
    if args.large_n:
        failures.extend(check_large_n())
    if args.serve:
        failures.extend(check_serve_warm_cache())

    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

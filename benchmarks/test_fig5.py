"""Benchmark: regenerate Fig. 5 (dynamic networks, tactical traces)."""

from repro.experiments.fig5 import run_fig5


def test_fig5(once):
    result = once(run_fig5, scale="quick", seed=1)
    print()
    print(result.render())
    totals_vs_T = next(
        fig for fig in result.series
        if "vs T" in fig["title"] and "average" not in fig["title"]
    )
    for name, values in totals_vs_T["series"]:
        assert all(a <= b for a, b in zip(values, values[1:])), name

"""Serve smoke — a live ``repro serve`` process vs offline solves.

Starts the real CLI server as a subprocess, fires a batch of mixed
requests (places across two workloads and several solvers, a sigma audit,
a what-if session) from concurrent client threads, and requires every
served placement to be **byte-identical** to the offline library solve of
the same request. Exercises the full stack the way CI can't from inside a
unit test: process boundary, TCP transport, admission batching under real
concurrency, graceful shutdown.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py [--requests 12]

Exit status 0 = every response matched; non-zero otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.registry import solve  # noqa: E402
from repro.experiments.workloads import rg_workload  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

P_T = 0.1
WORKLOADS = [
    {"kind": "rg", "seed": 1, "n": 80},
    {"kind": "rg", "seed": 2, "n": 80},
]
SOLVERS = ["sandwich", "ea", "aea", "random"]


def offline_place(spec, solver, k, m, pair_seed, seed):
    workload = rg_workload(seed=spec["seed"], n=spec["n"])
    instance = workload.instance(P_T, m=m, k=k, seed=pair_seed)
    result = solve(solver, instance, seed=seed)
    return {
        "edges": [[int(u), int(w)] for u, w in result.edges],
        "sigma": int(result.sigma),
        "satisfied": [bool(flag) for flag in result.satisfied],
        "pairs": [[int(u), int(w)] for u, w in instance.pairs],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=12)
    args = parser.parse_args()

    env = dict(os.environ, PYTHONPATH="src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--max-substrates", "2", "--jobs", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", banner)
        assert match, f"no listening banner, got {banner!r}"
        port = int(match.group(1))
        print(f"server up on port {port}")

        jobs = []
        for index in range(args.requests):
            jobs.append(
                (
                    WORKLOADS[index % len(WORKLOADS)],
                    SOLVERS[index % len(SOLVERS)],
                    2 + index % 2,          # k
                    8 + 2 * (index % 2),    # m
                    index % 3,              # pair_seed
                    11,                     # solver seed
                )
            )

        def served(job):
            spec, solver_name, k, m, pair_seed, seed = job
            with ServiceClient(port=port) as client:
                return client.place(
                    spec, solver=solver_name, k=k, m=m,
                    p_threshold=P_T, pair_seed=pair_seed, seed=seed,
                )

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(served, jobs))

        mismatches = 0
        for job, response in zip(jobs, responses):
            expected = offline_place(*job)
            got = {field: response[field] for field in expected}
            if json.dumps(got, sort_keys=True) != json.dumps(
                expected, sort_keys=True
            ):
                mismatches += 1
                print(f"MISMATCH for {job}:\n  {got}\n  vs {expected}")
        print(
            f"{len(jobs) - mismatches}/{len(jobs)} placements "
            "byte-identical to offline"
        )

        with ServiceClient(port=port) as client:
            placed = client.place(
                WORKLOADS[0], solver="sandwich", k=3, m=10,
                p_threshold=P_T, pair_seed=7, seed=11,
            )
            audited = client.sigma(
                WORKLOADS[0], pairs=placed["pairs"],
                edges=placed["edges"], p_threshold=P_T,
            )
            assert audited["sigma"] == placed["sigma"], "sigma audit"
            client.whatif(
                "smoke", "open", workload=WORKLOADS[0], k=3, m=10,
                p_threshold=P_T, pair_seed=7,
            )
            adopted = client.whatif("smoke", "adopt", edges=placed["edges"])
            assert adopted["sigma"] == placed["sigma"], "whatif adopt"
            client.whatif("smoke", "close")
            stats = client.stats()
            print(
                "stats: "
                + json.dumps(
                    {
                        "ops": stats["ops"],
                        "batching": stats["batching"],
                        "substrates": {
                            key: stats["substrates"][key]
                            for key in ("hits", "misses", "evictions")
                        },
                    }
                )
            )
            client.shutdown()
        server.wait(timeout=30)
        assert server.returncode == 0, (
            f"server exited {server.returncode}"
        )
        print("server shut down cleanly")
        return 1 if mismatches else 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark ablation: CELF lazy greedy vs plain vectorized greedy on the
submodular ν bound — wall time and point evaluations (DESIGN.md §4 calls
the vectorized scan the design-critical choice; this measures the
alternative)."""

import pytest

from repro.core.bounds import NuFunction
from repro.core.greedy import greedy_placement
from repro.core.lazy_greedy import lazy_greedy_placement
from repro.experiments.workloads import rg_workload


@pytest.fixture(scope="module")
def nu():
    workload = rg_workload(seed=11, n=100)
    instance = workload.instance(0.1, m=40, k=6, seed=12)
    return NuFunction(instance)


def test_plain_greedy_nu(benchmark, nu):
    placement = benchmark(greedy_placement, nu, 6)
    assert len(placement) <= 6


def test_celf_greedy_nu(benchmark, nu):
    placement, evaluations = benchmark(lazy_greedy_placement, nu, 6)
    assert len(placement) <= 6
    # CELF's entire point: far fewer evaluations than 6 full scans.
    full_scans = 7 * nu.n * (nu.n - 1) // 2
    print(f"\nCELF point evaluations: {evaluations} "
          f"(vs {full_scans} for full rescans)")
    assert evaluations < full_scans


def test_celf_matches_plain_value(once, nu):
    def both():
        plain = greedy_placement(nu, 6)
        lazy, _ = lazy_greedy_placement(nu, 6)
        return plain, lazy

    plain, lazy = once(both)
    assert nu.value(lazy) == pytest.approx(nu.value(plain))

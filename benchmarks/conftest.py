"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures at ``quick``
scale (identical code paths to the paper-scale run, reduced grids) and
prints the regenerated rows once, so a benchmark run doubles as a smoke
reproduction. Use ``repro.cli run <exp> --scale paper`` for the full-size
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_and_print(runner, name: str, **kwargs):
    """Run an experiment callable and print its rendered output once."""
    result = runner(**kwargs)
    print()
    print(result.render())
    return result


@pytest.fixture
def once(benchmark):
    """A pedantic single-round benchmark: experiment runners are seconds-
    long and deterministic, so one round measures them fine and keeps the
    suite fast."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run

"""Wall-clock performance harness — writes ``BENCH_perf.json``.

Measures the three performance claims of the incremental-engine /
pruned-scan / parallel-runner work:

1. **Greedy path** (the fig1 Approximation-Algorithm path: σ-greedy inside
   the sandwich): the incremental engine + pruned candidate scan against
   the legacy configuration (``pruned=False, engine_cache_size=0``, i.e.
   dense per-pair masks and a from-scratch engine per evaluation), on the
   fig1 RG-workload family at the quick size (n=40) and scaled sizes where
   compute, not numpy call overhead, dominates. Placements are asserted
   identical before timing.
2. **Per-experiment wall-clock** of every quick-scale experiment.
3. **``run_all`` scaling**: a balanced (experiment × seed) task grid run
   serially and with ``--jobs``-style fan-out, with byte-identity of the
   results verified. Speedup requires actual cores — ``cpu_count`` is
   recorded so a 1-core container's numbers are interpretable.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py \
        [--jobs 4] [--output BENCH_perf.json] [--skip-scaling]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone

from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.experiments.parallel import fanout
from repro.experiments.runner import (
    _timed_experiment_task,
    experiment_names,
    run_all_timed,
)
from repro.experiments.workloads import rg_workload

#: (n, m, k) points of the fig1-style greedy-path benchmark. The first is
#: the quick-scale fig1 configuration itself; the larger sizes are the same
#: workload family scaled until kernel work dominates per-call overhead.
GREEDY_SIZES = [(40, 8, 2), (100, 30, 3), (200, 60, 4), (300, 80, 5)]
FIG1_QUICK_P = 0.08


def _greedy_instance(n: int, m: int, k: int):
    workload = rg_workload(seed=1, n=n)
    return workload.instance(FIG1_QUICK_P, m=m, k=k, seed=(1, "bench"))


def _time_greedy(evaluator, k: int, repeats: int):
    best = float("inf")
    placement = None
    for _ in range(repeats):
        evaluator.engine_cache = type(evaluator.engine_cache)(
            evaluator.instance.oracle,
            evaluator.engine_cache._maxsize,
        )
        start = time.perf_counter()
        placement = greedy_placement(evaluator, k)
        best = min(best, time.perf_counter() - start)
    return best, placement


def bench_greedy_path() -> dict:
    sizes = []
    for n, m, k in GREEDY_SIZES:
        instance = _greedy_instance(n, m, k)
        repeats = 5 if n <= 100 else 3
        fast = SigmaEvaluator(instance)
        legacy = SigmaEvaluator(instance, pruned=False, engine_cache_size=0)
        fast_s, fast_placement = _time_greedy(fast, k, repeats)
        legacy_s, legacy_placement = _time_greedy(legacy, k, repeats)
        assert fast_placement == legacy_placement, (
            f"fast/legacy greedy disagree at n={n}"
        )
        sizes.append(
            {
                "n": n,
                "m": m,
                "k": k,
                "legacy_s": round(legacy_s, 6),
                "fast_s": round(fast_s, 6),
                "speedup": round(legacy_s / fast_s, 3),
            }
        )
    headline = sizes[-1]
    return {
        "description": (
            "fig1 AA greedy path (sigma-greedy), incremental engine + "
            "pruned scan vs legacy dense scan with from-scratch engines; "
            "identical placements verified. Headline speedup is the "
            "largest size, where kernel work dominates call overhead."
        ),
        "sizes": sizes,
        "quick_n": sizes[0]["n"],
        "quick_speedup": sizes[0]["speedup"],
        "n": headline["n"],
        "speedup": headline["speedup"],
    }


def bench_quick_experiments() -> dict:
    timed = run_all_timed(scale="quick", seed=1)
    return {
        result.name: round(elapsed, 4) for result, elapsed in timed
    }


def bench_run_all_scaling(jobs: int) -> dict:
    names = experiment_names()
    tasks = [
        (name, "quick", seed) for seed in (1, 2, 3, 4) for name in names
    ]
    start = time.perf_counter()
    serial = fanout(_timed_experiment_task, tasks, jobs=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = fanout(_timed_experiment_task, tasks, jobs=jobs)
    parallel_s = time.perf_counter() - start
    identical = json.dumps(
        [r.to_json() for r, _ in serial], sort_keys=True
    ) == json.dumps([r.to_json() for r, _ in parallel], sort_keys=True)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    return {
        "description": (
            "run_all-style fan-out over a balanced (experiment x seed) "
            "grid; byte_identical compares serial vs parallel JSON. "
            "Wall-clock speedup requires real cores (see cpu_count)."
        ),
        "jobs": jobs,
        "tasks": len(tasks),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / jobs, 3),
        "byte_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default="BENCH_perf.json")
    parser.add_argument(
        "--skip-scaling",
        action="store_true",
        help="skip the run_all scaling grid (the slowest section)",
    )
    args = parser.parse_args()

    report = {
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "fig1_greedy_path": bench_greedy_path(),
        "quick_experiments_s": bench_quick_experiments(),
    }
    if not args.skip_scaling:
        report["run_all_scaling"] = bench_run_all_scaling(args.jobs)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Wall-clock performance harness — writes ``BENCH_perf.json``.

Measures the three performance claims of the incremental-engine /
pruned-scan / parallel-runner work:

1. **Greedy path** (the fig1 Approximation-Algorithm path: σ-greedy inside
   the sandwich): the incremental engine + pruned candidate scan against
   the legacy configuration (``pruned=False, engine_cache_size=0``, i.e.
   dense per-pair masks and a from-scratch engine per evaluation), on the
   fig1 RG-workload family at the quick size (n=40) and scaled sizes where
   compute, not numpy call overhead, dominates. Placements are asserted
   identical before timing.
2. **Serve warm cache** (the ``repro serve`` request path): per-request
   latency against a resident substrate vs a cold rebuild per request,
   identical placements asserted (acceptance: warm ≥ 5×).
3. **Per-experiment wall-clock** of every quick-scale experiment.
4. **``run_all`` scaling**: a balanced (experiment × seed) task grid run
   serially and with ``--jobs``-style fan-out, with byte-identity of the
   results verified. Speedup requires actual cores — ``cpu_count`` is
   recorded so a 1-core container's numbers are interpretable.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py \
        [--jobs 4] [--output BENCH_perf.json] [--skip-scaling]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import resource
import time
import tracemalloc
from datetime import datetime, timezone

from repro.core.evaluator import (
    CANDIDATE_RESTRICT_MIN_N,
    ENGINE_CACHE_MIN_N,
    PRUNED_SCAN_MIN_N,
    SigmaEvaluator,
)
from repro.core.greedy import greedy_placement
from repro.core.problem import MSCInstance, SPARSE_ORACLE_MIN_N
from repro.experiments.parallel import fanout
from repro.experiments.runner import (
    _timed_experiment_task,
    experiment_names,
    run_all_timed,
    shared_workload_payload,
)
from repro.experiments.workloads import rg_workload
from repro.netgen.geometric import random_geometric_network
from repro.netgen.pairs import sample_important_pairs

#: (n, m, k) points of the fig1-style greedy-path benchmark. The first is
#: the quick-scale fig1 configuration itself; the larger sizes are the same
#: workload family scaled until kernel work dominates per-call overhead.
GREEDY_SIZES = [(40, 8, 2), (100, 30, 3), (200, 60, 4), (300, 80, 5)]
FIG1_QUICK_P = 0.08

#: (n, p_t, m, k, compare_dense) points of the oracle-tier benchmark.
#: The RG radius shrinks as 0.2 * sqrt(100 / n) so average degree stays
#: roughly constant as n grows (the paper's RG family, scaled up). Dense
#: comparison stops at n=3000 — beyond that the full APSP matrix alone
#: (n² float64) is the point the sparse tier exists to avoid, so larger
#: sizes run sparse-only against the *computed* dense footprint.
ORACLE_TIER_SIZES = [
    (2000, 0.04, 60, 5, True),
    (2000, 0.03, 60, 5, True),
    (3000, 0.03, 60, 5, True),
    (5000, 0.03, 60, 5, False),
]

#: (n, p_t, m, k) points of the hub-label large-n series: the same scaled
#: RG family at the sizes the hub tier exists for. Sparse remains the
#: comparison baseline — dense would need an n² matrix (80GB at n=10⁵).
HUB_TIER_SIZES = [
    (10_000, 0.03, 60, 5),
    (50_000, 0.03, 60, 5),
    (100_000, 0.03, 60, 5),
]

#: Point-distance queries per throughput measurement.
HUB_QUERY_COUNT = 20_000

#: The serve warm-cache workload: dense enough that the substrate build
#: (graph generation + APSP) dominates one request's solve, the regime the
#: resident-substrate LRU exists for. m/k are deliberately small — a
#: service request is one user's pairs, not a batch campaign.
SERVE_WARM_SPEC = {
    "n": 800,
    "radius": 0.15,
    "m": 5,
    "k": 1,
    "p_t": 0.03,
    "requests": 4,
}


def _greedy_instance(n: int, m: int, k: int):
    workload = rg_workload(seed=1, n=n)
    return workload.instance(FIG1_QUICK_P, m=m, k=k, seed=(1, "bench"))


def _time_greedy(evaluator, k: int, repeats: int):
    best = float("inf")
    placement = None
    # One untimed pass first: at the sub-millisecond sizes the first call
    # pays one-off allocator/import costs that would otherwise dominate
    # the min-of-repeats.
    for timed in [False] + [True] * repeats:
        evaluator.engine_cache = type(evaluator.engine_cache)(
            evaluator.instance.oracle,
            evaluator.engine_cache._maxsize,
        )
        start = time.perf_counter()
        placement = greedy_placement(evaluator, k)
        if timed:
            best = min(best, time.perf_counter() - start)
    return best, placement


def bench_greedy_path() -> dict:
    sizes = []
    for n, m, k in GREEDY_SIZES:
        instance = _greedy_instance(n, m, k)
        # Sub-millisecond sizes need many repeats before min-of-k stops
        # reflecting scheduler jitter instead of the code path.
        repeats = 300 if n <= 50 else (25 if n <= 100 else 3)
        fast = SigmaEvaluator(instance)
        legacy = SigmaEvaluator(
            instance,
            pruned=False,
            engine_cache_size=0,
            restrict_candidates=False,
        )
        fast_s, fast_placement = _time_greedy(fast, k, repeats)
        legacy_s, legacy_placement = _time_greedy(legacy, k, repeats)
        assert fast_placement == legacy_placement, (
            f"fast/legacy greedy disagree at n={n}"
        )
        sizes.append(
            {
                "n": n,
                "m": m,
                "k": k,
                "legacy_s": round(legacy_s, 6),
                "fast_s": round(fast_s, 6),
                "speedup": round(legacy_s / fast_s, 3),
            }
        )
    headline = sizes[-1]
    return {
        "description": (
            "fig1 AA greedy path (sigma-greedy), incremental engine + "
            "pruned scan vs legacy dense scan with from-scratch engines; "
            "identical placements verified. Headline speedup is the "
            "largest size, where kernel work dominates call overhead."
        ),
        "sizes": sizes,
        "quick_n": sizes[0]["n"],
        "quick_speedup": sizes[0]["speedup"],
        "n": headline["n"],
        "speedup": headline["speedup"],
        # Below these sizes the corresponding optimization auto-disables
        # (the quick_speedup guard: tiny instances must not regress).
        "cutovers": {
            "engine_cache_min_n": ENGINE_CACHE_MIN_N,
            "candidate_restrict_min_n": CANDIDATE_RESTRICT_MIN_N,
            "pruned_scan_min_n": PRUNED_SCAN_MIN_N,
            "sparse_oracle_min_n": SPARSE_ORACLE_MIN_N,
        },
    }


def _oracle_tier_workload(n: int, p_t: float, m: int):
    radius = 0.2 * math.sqrt(100 / n)
    network = random_geometric_network(
        n, radius=radius, max_link_failure=0.08, seed=1
    )
    pairs = sample_important_pairs(
        network.graph, m, p_t, seed=(1, "bench")
    )
    return network.graph, pairs


def _run_tier(graph, pairs, k: int, p_t: float, oracle: str):
    """One timed greedy solve; returns placement, seconds, tracemalloc
    peak bytes, and the post-run ru_maxrss high-water (KiB)."""
    tracemalloc.start()
    start = time.perf_counter()
    instance = MSCInstance(
        graph, pairs, k=k, p_threshold=p_t, oracle=oracle
    )
    evaluator = SigmaEvaluator(instance)
    placement = greedy_placement(evaluator, k)
    elapsed = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return placement, elapsed, peak, rss_kb


def bench_oracle_tiers(sizes=None) -> dict:
    """Sparse vs dense oracle tier on the scaled RG family.

    The sparse tier must solve each size with the *identical* placement at
    a fraction of the dense peak. ``ru_maxrss`` is a process-wide
    high-water mark (it never decreases), so the sparse run goes first and
    each entry records the mark observed right after it.
    """
    entries = []
    for n, p_t, m, k, compare_dense in sizes or ORACLE_TIER_SIZES:
        graph, pairs = _oracle_tier_workload(n, p_t, m)
        sparse_placed, sparse_s, sparse_peak, sparse_rss = _run_tier(
            graph, pairs, k, p_t, "sparse"
        )
        entry = {
            "n": graph.number_of_nodes(),
            "p_t": p_t,
            "m": m,
            "k": k,
            "sparse_s": round(sparse_s, 4),
            "sparse_peak_mb": round(sparse_peak / 1e6, 2),
            "sparse_rss_kb": sparse_rss,
            "dense_matrix_mb": round(n * n * 8 / 1e6, 2),
        }
        if compare_dense:
            dense_placed, dense_s, dense_peak, dense_rss = _run_tier(
                graph, pairs, k, p_t, "dense"
            )
            assert sparse_placed == dense_placed, (
                f"sparse/dense placements disagree at n={n}, p_t={p_t}"
            )
            entry.update(
                {
                    "dense_s": round(dense_s, 4),
                    "dense_peak_mb": round(dense_peak / 1e6, 2),
                    "dense_rss_kb": dense_rss,
                    "placements_identical": True,
                    "speedup": round(dense_s / sparse_s, 3),
                    "mem_ratio": round(sparse_peak / dense_peak, 3),
                }
            )
        else:
            entry["mem_ratio_vs_matrix"] = round(
                sparse_peak / (n * n * 8), 3
            )
        entries.append(entry)
    return {
        "description": (
            "greedy solve per oracle tier on the scaled RG family "
            "(radius 0.2*sqrt(100/n)); mem_ratio is sparse tracemalloc "
            "peak / dense tracemalloc peak for the same workload "
            "(acceptance: <= 0.25). Sparse-only sizes report the peak "
            "against the dense n^2 float64 matrix the tier avoids."
        ),
        "sizes": entries,
    }


def _solve_tier(graph, pairs, k: int, p_t: float, oracle: str):
    """One greedy solve; returns ``(placement, seconds)``."""
    start = time.perf_counter()
    instance = MSCInstance(
        graph, pairs, k=k, p_threshold=p_t, oracle=oracle
    )
    evaluator = SigmaEvaluator(instance)
    placement = greedy_placement(evaluator, k)
    return placement, time.perf_counter() - start


def _traced_peak(fn) -> int:
    """tracemalloc peak bytes of ``fn()`` (run separately from timing:
    tracing taxes pure-Python allocation far more than scipy's C paths,
    so a traced wall-clock would bias the tier comparison)."""
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def bench_hub_tier(sizes=None) -> dict:
    """Hub-label vs sparse tier on the scaled RG family at n >= 10^4.

    Per size: full greedy solve per tier (identical placements asserted),
    hub index build time / label stats, and point-query throughput over
    uniformly random node pairs. Timing and tracemalloc peaks come from
    separate runs (see :func:`_traced_peak`).
    """
    import numpy as np

    from repro.core.problem import HUB_ORACLE_MIN_N
    from repro.failure.models import failure_to_length
    from repro.graph.hub_labels import HubLabelOracle, threshold_cutoff

    entries = []
    for n, p_t, m, k in sizes or HUB_TIER_SIZES:
        start = time.perf_counter()
        graph, pairs = _oracle_tier_workload(n, p_t, m)
        generate_s = time.perf_counter() - start
        n_nodes = graph.number_of_nodes()

        d_t = failure_to_length(p_t)
        start = time.perf_counter()
        oracle = HubLabelOracle(graph, cutoff=threshold_cutoff(d_t))
        build_s = time.perf_counter() - start
        labels = oracle.label_count()

        rng = np.random.default_rng(1)
        queries = rng.integers(0, n_nodes, size=(HUB_QUERY_COUNT, 2))
        start = time.perf_counter()
        for iu, iv in queries:
            oracle.distance_by_index(int(iu), int(iv))
        query_s = time.perf_counter() - start

        hub_placed, hub_s = _solve_tier(graph, pairs, k, p_t, "hub")
        sparse_placed, sparse_s = _solve_tier(
            graph, pairs, k, p_t, "sparse"
        )
        assert hub_placed == sparse_placed, (
            f"hub/sparse placements disagree at n={n}, p_t={p_t}"
        )
        hub_peak = _traced_peak(
            lambda: _solve_tier(graph, pairs, k, p_t, "hub")
        )
        sparse_peak = _traced_peak(
            lambda: _solve_tier(graph, pairs, k, p_t, "sparse")
        )
        entries.append(
            {
                "n": n_nodes,
                "p_t": p_t,
                "m": m,
                "k": k,
                "generate_s": round(generate_s, 4),
                "hub_build_s": round(build_s, 4),
                "labels_per_node": round(labels / n_nodes, 3),
                "point_queries_per_s": round(
                    HUB_QUERY_COUNT / query_s, 1
                ),
                "hub_s": round(hub_s, 4),
                "sparse_s": round(sparse_s, 4),
                "speedup": round(sparse_s / hub_s, 3),
                "hub_peak_mb": round(hub_peak / 1e6, 2),
                "sparse_peak_mb": round(sparse_peak / 1e6, 2),
                "mem_ratio": round(hub_peak / sparse_peak, 3),
                "placements_identical": True,
            }
        )
    return {
        "description": (
            "hub-label vs sparse oracle tier, full greedy solve on the "
            "scaled RG family at hub scale (auto cutover at n >= "
            f"{HUB_ORACLE_MIN_N}); identical placements asserted. "
            "mem_ratio is hub tracemalloc peak / sparse tracemalloc peak "
            "for the same solve, measured untimed (acceptance: speedup "
            ">= 3 and mem_ratio < 1 at every size)."
        ),
        "sizes": entries,
    }


def bench_serve_warm_cache(spec: dict = None) -> dict:
    """Warm (resident substrate) vs cold (rebuild per request) latency of
    the ``repro serve`` request path.

    Each request carries an explicit pair set (the service request shape);
    the cold path pays what an LRU miss costs — workload generation, APSP,
    substrate assembly — before the identical solve. Placements are
    asserted identical request by request, so the warm path's speedup is
    pure amortization, not a different computation.
    """
    from repro.core.registry import solve
    from repro.core.substrate import PlacementRequest
    from repro.netgen.pairs import select_important_pairs
    from repro.service.substrates import SubstrateLRU

    spec = dict(SERVE_WARM_SPEC, **(spec or {}))
    n, m, k, p_t = spec["n"], spec["m"], spec["k"], spec["p_t"]
    workload_spec = {
        "kind": "rg",
        "seed": 1,
        "n": n,
        "radius": spec["radius"],
        "max_link_failure": 0.08,
    }
    lru = SubstrateLRU(maxsize=2)
    build_start = time.perf_counter()
    entry = lru.put(lru.build(workload_spec))
    _ = entry.workload.oracle.matrix  # resident build includes the APSP
    build_s = time.perf_counter() - build_start
    pair_sets = [
        select_important_pairs(
            entry.workload.graph, m, p_t,
            seed=(i, "serve-bench"), oracle=entry.workload.oracle,
        )
        for i in range(spec["requests"])
    ]
    requests = [
        PlacementRequest(pairs, k, p_threshold=p_t) for pairs in pair_sets
    ]
    # Untimed prime: first-call allocator/import costs belong to neither
    # side of the comparison.
    solve(
        "sandwich",
        MSCInstance.from_parts(entry.substrate, requests[0]),
        seed=11,
    )
    cold_total = warm_total = 0.0
    for request in requests:
        start = time.perf_counter()
        fresh = lru.build(workload_spec)  # what an LRU miss costs
        cold_result = solve(
            "sandwich",
            MSCInstance.from_parts(fresh.substrate, request),
            seed=11,
        )
        cold_total += time.perf_counter() - start
        start = time.perf_counter()
        warm_result = solve(
            "sandwich",
            MSCInstance.from_parts(entry.substrate, request),
            seed=11,
        )
        warm_total += time.perf_counter() - start
        assert cold_result.edges == warm_result.edges, (
            "warm/cold placements disagree"
        )
        assert cold_result.sigma == warm_result.sigma
    count = spec["requests"]
    return {
        "description": (
            "repro-serve request path: resident-substrate (warm) vs "
            "rebuild-per-request (cold) latency on an RG workload whose "
            "substrate build dominates one solve; explicit pair sets, "
            "identical placements asserted per request (acceptance: "
            "warm >= 5x faster than cold)."
        ),
        "n": n,
        "radius": spec["radius"],
        "m": m,
        "k": k,
        "p_t": p_t,
        "requests": count,
        "substrate_build_s": round(build_s, 4),
        "cold_s_per_request": round(cold_total / count, 4),
        "warm_s_per_request": round(warm_total / count, 4),
        "speedup": round(cold_total / warm_total, 3),
        "placements_identical": True,
    }


def bench_quick_experiments() -> dict:
    timed = run_all_timed(scale="quick", seed=1)
    return {
        result.name: round(elapsed, 4) for result, elapsed in timed
    }


def bench_run_all_scaling(jobs: int) -> dict:
    names = experiment_names()
    seeds = (1, 2, 3, 4)
    tasks = [
        (name, "quick", seed) for seed in seeds for name in names
    ]
    # Warm start: build each shared workload (Gowalla, per-seed RG) once
    # and publish it, so workers adopt the graph + APSP instead of
    # rebuilding them per task — the same payload run_all itself uses.
    shared = {}
    for seed in seeds:
        shared.update(shared_workload_payload(names, "quick", seed))
    start = time.perf_counter()
    serial = fanout(_timed_experiment_task, tasks, jobs=1, shared=shared)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = fanout(
        _timed_experiment_task, tasks, jobs=jobs, shared=shared
    )
    parallel_s = time.perf_counter() - start
    identical = json.dumps(
        [r.to_json() for r, _ in serial], sort_keys=True
    ) == json.dumps([r.to_json() for r, _ in parallel], sort_keys=True)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    # Efficiency is speedup per *usable* worker: --jobs above the core
    # count cannot add throughput, so normalizing by raw jobs on a small
    # container under-reports the fan-out (a 1-core box would read as 25%
    # efficient at --jobs 4 even when the pool overhead is negligible).
    effective_jobs = max(1, min(jobs, os.cpu_count() or 1))
    return {
        "description": (
            "run_all-style fan-out over a balanced (experiment x seed) "
            "grid with shm-published workloads (warm start); "
            "byte_identical compares serial vs parallel JSON. Efficiency "
            "normalizes speedup by min(jobs, cpu_count) — wall-clock "
            "speedup requires real cores."
        ),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "effective_jobs": effective_jobs,
        "warm_start": True,
        "tasks": len(tasks),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / effective_jobs, 3),
        "byte_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default="BENCH_perf.json")
    parser.add_argument(
        "--skip-scaling",
        action="store_true",
        help="skip the run_all scaling grid (the slowest section)",
    )
    parser.add_argument(
        "--skip-large-n",
        action="store_true",
        help="skip the hub-label large-n series (n up to 10^5)",
    )
    args = parser.parse_args()

    report = {
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "fig1_greedy_path": bench_greedy_path(),
        "oracle_tiers": bench_oracle_tiers(),
        "serve_warm_cache": bench_serve_warm_cache(),
        "quick_experiments_s": bench_quick_experiments(),
    }
    if not args.skip_large_n:
        report["hub_tier_large_n"] = bench_hub_tier()
    if not args.skip_scaling:
        report["run_all_scaling"] = bench_run_all_scaling(args.jobs)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

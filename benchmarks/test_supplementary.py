"""Benchmarks for the supplementary experiments (ablations, MSC-CN,
delivery validation, prediction, generality) at quick scale."""

from repro.experiments.ablations import (
    run_ablation_aea,
    run_ablation_sandwich,
)
from repro.experiments.delivery_exp import run_delivery
from repro.experiments.generality_exp import run_generality
from repro.experiments.msc_cn_exp import run_msc_cn
from repro.experiments.prediction_exp import run_prediction


def test_msc_cn(once):
    result = once(run_msc_cn, scale="quick", seed=1)
    print()
    print(result.render())
    assert "yes" in result.notes[0]


def test_delivery(once):
    result = once(run_delivery, scale="quick", seed=1)
    print()
    print(result.render())
    assert any("0 (expected 0)" in note for note in result.notes)


def test_prediction(once):
    result = once(run_prediction, scale="quick", seed=1)
    print()
    print(result.render())
    rows = result.tables[0]["rows"]
    oracle = rows[0][2]
    assert all(row[2] <= oracle for row in rows[1:])


def test_generality(once):
    result = once(run_generality, scale="quick", seed=1)
    print()
    print(result.render())
    assert "yes" in result.notes[-1]


def test_ablation_sandwich(once):
    result = once(run_ablation_sandwich, scale="quick", seed=1)
    print()
    print(result.render())


def test_ablation_aea(once):
    result = once(run_ablation_aea, scale="quick", seed=1)
    print()
    print(result.render())

"""Beyond the paper: importance-weighted pairs and heterogeneous link costs.

The paper treats every important pair and every shortcut edge as equal.
Real deployments rarely are: the commander-to-squad-leader links matter more
than lateral chatter, and a continent-spanning satellite link costs more
than a short UAV relay. This example exercises both generalizations the
library adds on top of the paper:

* ``weighted_sandwich`` — the sandwich Approximation Algorithm over an
  importance-weighted objective (guarantees carry over; see
  ``repro.core.weighted``);
* ``budgeted_greedy_placement`` — a monetary budget with per-edge costs
  proportional to link distance, instead of an edge-count budget.

Run:  python examples/weighted_budgeted.py
"""

from repro import (
    MSCInstance,
    SigmaEvaluator,
    budgeted_greedy_placement,
    distance_cost_matrix,
    placement_cost,
    random_geometric_network,
    select_important_pairs,
    weighted_sandwich,
)


def main() -> None:
    p_t = 0.1
    net = random_geometric_network(
        90, radius=0.2, max_link_failure=0.08, seed=23
    )
    pairs = select_important_pairs(
        net.graph, m=24, p_threshold=p_t, seed=24
    )
    instance = MSCInstance(net.graph, pairs, k=5, p_threshold=p_t)

    # --- 1. importance weights: the first six pairs are command links ---
    weights = [5.0] * 6 + [1.0] * (len(pairs) - 6)
    weighted = weighted_sandwich(instance, weights)
    result = weighted.solve()
    command_links_kept = sum(
        1 for flag, w in zip(result.satisfied, weights)
        if flag and w == 5.0
    )
    print("weighted sandwich:")
    print(f"  weighted sigma = {result.sigma} "
          f"(max {sum(weights):.0f})")
    print(f"  command links maintained: {command_links_kept}/6")
    print(f"  data-dependent ratio: {result.extras['ratio']:.3f}")

    # --- 2. monetary budget: cost = 1 + 10 x link distance --------------
    costs = distance_cost_matrix(
        net.positions, net.graph, base_cost=1.0, per_unit=10.0
    )
    sigma = SigmaEvaluator(instance)
    for budget in (5.0, 10.0, 20.0):
        placement = budgeted_greedy_placement(sigma, costs, budget)
        spent = placement_cost(placement, costs)
        print(
            f"\nbudget {budget:5.1f}: {len(placement)} edges, "
            f"cost {spent:.2f}, sigma = {sigma.value(placement)}"
            f"/{instance.m}"
        )
        for a, b in placement:
            u = net.graph.index_node(a)
            v = net.graph.index_node(b)
            print(f"    link {u}-{v} (cost {costs[a, b]:.2f})")


if __name__ == "__main__":
    main()

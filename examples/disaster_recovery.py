"""Disaster recovery: keep the control center connected to rescue teams.

The paper's motivating scenario (§I): "during disaster recovery, it is
critical to maintain the social connections between the control center and
the rescue team". Every important pair shares the control center, which is
exactly the MSC-CN special case (§IV) — provably submodular, so greedy
placement of satellite uplinks carries the (1 - 1/e) guarantee.

This example builds the scenario, solves it with the dedicated MSC-CN
max-coverage solver, and shows that the general algorithms agree.

Run:  python examples/disaster_recovery.py
"""

from repro import (
    MSCInstance,
    SandwichApproximation,
    is_common_node_instance,
    random_geometric_network,
    select_common_node_pairs,
    solve_msc_cn,
)


def main() -> None:
    # The disaster area: a degraded wireless mesh. Links fail with
    # probability proportional to distance — up to 8% per hop.
    net = random_geometric_network(
        80, radius=0.22, max_link_failure=0.08, seed=3
    )
    graph = net.graph

    # The control center: pick a node near the area's corner so many rescue
    # teams are far from it (several unreliable hops away).
    control_center = min(
        net.positions, key=lambda v: sum(net.positions[v])
    )
    print(f"control center: node {control_center} at "
          f"{tuple(round(c, 2) for c in net.positions[control_center])}")

    # Rescue teams: 25 nodes whose connection to the control center
    # currently fails with probability > 12%.
    p_t = 0.12
    pairs = select_common_node_pairs(
        graph, control_center, m=25, p_threshold=p_t, seed=5
    )
    instance = MSCInstance(graph, pairs, k=4, p_threshold=p_t)
    assert is_common_node_instance(instance)
    print(f"{instance.m} rescue teams need a reliable channel "
          f"(budget: {instance.k} satellite uplinks)\n")

    # MSC-CN greedy: equivalent to maximum coverage (paper Theorem 1),
    # with the (1 - 1/e) guarantee of Theorem 5.
    cn = solve_msc_cn(instance)
    print(cn.summary())
    for u, v in cn.edges:
        print(f"  satellite uplink: control center {u} <-> relay {v}")

    # Cross-check with the general sandwich algorithm — on a common-node
    # instance it should do at least as well.
    aa = SandwichApproximation(instance).solve()
    print(f"\ngeneral AA on the same instance: {aa.summary()}")

    maintained = sum(cn.satisfied)
    print(f"\nresult: {maintained}/{instance.m} rescue teams reachable "
          f"with failure probability <= {p_t}")


if __name__ == "__main__":
    main()

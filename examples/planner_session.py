"""Interactive placement planning: steer, inspect, undo.

Solvers return finished placements; a network operator usually works
iteratively — place a link, see what it buys, ask for suggestions, undo a
bad idea. This example drives :class:`repro.analysis.planner
.PlacementPlanner` through such a session, then compares the hand-steered
result with the Approximation Algorithm and stress-tests it with the
robustness analyzer.

Run:  python examples/planner_session.py
"""

from repro import (
    MSCInstance,
    PlacementPlanner,
    SandwichApproximation,
    perturbation_analysis,
    random_geometric_network,
    select_important_pairs,
)


def main() -> None:
    p_t = 0.1
    net = random_geometric_network(
        70, radius=0.21, max_link_failure=0.08, seed=29
    )
    pairs = select_important_pairs(
        net.graph, m=18, p_threshold=p_t, seed=30
    )
    instance = MSCInstance(net.graph, pairs, k=4, p_threshold=p_t)
    planner = PlacementPlanner(instance)
    print(planner.summary())

    # Ask for the top suggestions before placing anything.
    print("\ntop suggestions (edge -> resulting σ):")
    for edge, value in planner.suggest(3):
        print(f"  {edge[0]}-{edge[1]} -> σ={value}")

    # Take the best one, then deliberately try a bad idea and undo it.
    best = planner.apply_best()
    print(f"\nplaced {best[0]}-{best[1]}: {planner.summary()}")
    u, w = planner.unsatisfied_pairs[0]
    sigma_before = planner.sigma
    planner.add(u, w)  # directly wire one unhappy pair
    print(f"direct link {u}-{w}: σ {sigma_before} -> {planner.sigma}")
    planner.undo()
    print(f"undo: back to σ={planner.sigma}")

    # Let the greedy suggestions finish the budget.
    while planner.remaining_budget > 0 and planner.apply_best():
        pass
    print(f"\nafter filling the budget: {planner.summary()}")

    # Compare with the sandwich algorithm on the same instance.
    aa = SandwichApproximation(instance).solve()
    print(f"AA reference: σ={aa.sigma}")

    # Stress the hand-built placement: jitter every link's failure
    # probability by up to 30% and re-measure.
    report = perturbation_analysis(
        instance, planner.edges, noise=0.3, trials=25, seed=31
    )
    print(
        f"\nrobustness under ±30% link-failure jitter: "
        f"mean σ {report.mean_sigma:.1f} / baseline {report.baseline_sigma}"
        f" (retention {report.retention:.0%}, worst {report.worst_sigma})"
    )


if __name__ == "__main__":
    main()

"""Gowalla-Austin analysis: why few shortcut edges maintain many pairs.

Reproduces the paper's observation (§VII-D) that on the location-based
social network "groups of people may share the same location ... then
connecting a shortcut edge between two groups of people can simultaneously
maintain several important social connections": shortcut endpoints land in
venue clusters, and each edge rescues whole bundles of pairs at once.

Run:  python examples/gowalla_analysis.py
"""

from collections import Counter

from repro import (
    MSCInstance,
    SandwichApproximation,
    edge_contributions,
    pair_attribution,
    select_important_pairs,
)
from repro.core.ratio import sandwich_ratio
from repro.netgen.gowalla import gowalla_network, synthesize_gowalla_austin


def main() -> None:
    # 1. The synthetic Gowalla-Austin evening: venue-clustered check-ins,
    #    200 m proximity rule (see DESIGN.md §5 for the substitution).
    data = synthesize_gowalla_austin(seed=9)
    graph, _positions = gowalla_network(seed=9)
    print(f"network: {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} proximity links, "
          f"{len(data.venue_centers)} venues")

    # 2. Important pairs at the paper's p_t = 0.27.
    p_t = 0.27
    pairs = select_important_pairs(graph, m=60, p_threshold=p_t, seed=10)
    instance = MSCInstance(graph, pairs, k=5, p_threshold=p_t)

    # 3. Solve with the Approximation Algorithm and report the
    #    data-dependent guarantee (the quantity of paper Tables I/II).
    aa = SandwichApproximation(instance).solve()
    report = sandwich_ratio(instance)
    print(f"\n{aa.summary()}")
    print(f"sigma(F_nu)/nu(F_nu) = {report.ratio:.3f} "
          f"(overall guarantee factor {report.guarantee:.3f})")

    # 4. The community effect: map each shortcut endpoint to its venue and
    #    show what each edge buys — alone, and marginally within the full
    #    placement (repro.analysis).
    print("\nplaced shortcut edges (venue -> venue):")
    for contribution in edge_contributions(instance, aa.edges):
        u, v = contribution.edge
        venue_u = data.user_home_venue.get(u, "?")
        venue_v = data.user_home_venue.get(v, "?")
        print(f"  user {u} (venue {venue_u}) <-> user {v} "
              f"(venue {venue_v}): rescues {contribution.solo_sigma} pairs "
              f"alone, {contribution.marginal_sigma} critically")

    # 4b. Which pairs lean on which edge?
    attribution = pair_attribution(instance, aa.edges)
    redundant = sum(1 for edges in attribution.values() if not edges)
    print(f"\n{len(attribution)} pairs maintained; {redundant} of them "
          "redundantly (no single edge is critical for them)")

    # 5. How concentrated are the important pairs across venues?
    venue_of_pair = Counter()
    for u, w in instance.pairs:
        venue_of_pair[
            (data.user_home_venue.get(u), data.user_home_venue.get(w))
        ] += 1
    top = venue_of_pair.most_common(5)
    print("\nbusiest venue-to-venue demand (pairs):")
    for (vu, vw), count in top:
        print(f"  venue {vu} <-> venue {vw}: {count} important pairs")


if __name__ == "__main__":
    main()

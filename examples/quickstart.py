"""Quickstart: place shortcut edges to maintain important social connections.

Builds a random geometric wireless network, selects important social pairs
that currently violate the reliability requirement, and compares every
algorithm from the paper on the same instance.

Run:  python examples/quickstart.py
"""

from repro import (
    MSCInstance,
    SandwichApproximation,
    random_geometric_network,
    select_important_pairs,
    solve_aea,
    solve_ea,
    solve_random_baseline,
)


def main() -> None:
    # 1. The wireless network: 100 nodes in a unit square, links between
    #    nodes closer than 0.2, link failure probability proportional to
    #    link distance (up to 5% at the connection radius).
    net = random_geometric_network(
        100, radius=0.2, max_link_failure=0.05, seed=7
    )
    graph = net.graph
    print(f"network: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} links")

    # 2. Important social pairs: 40 random pairs whose most reliable path
    #    currently fails with probability > p_t = 0.10.
    p_t = 0.10
    pairs = select_important_pairs(graph, m=40, p_threshold=p_t, seed=11)
    print(f"selected {len(pairs)} important pairs violating p_t={p_t}")

    # 3. The MSC instance: place at most k = 6 perfectly reliable shortcut
    #    edges (satellite/UAV links) to maximize the number of maintained
    #    pairs.
    instance = MSCInstance(graph, pairs, k=6, p_threshold=p_t)
    print(instance.describe())

    # 4a. The paper's Approximation Algorithm (sandwich over the submodular
    #     bounds mu <= sigma <= nu).
    aa = SandwichApproximation(instance).solve()
    print(f"\n{aa.summary()}")
    print(f"  winning greedy: {aa.extras['winner']}")
    print(f"  data-dependent ratio sigma(F_nu)/nu(F_nu): "
          f"{aa.extras['ratio']:.3f}")
    print(f"  placed edges: {aa.edges}")

    # 4b. The evolutionary algorithms (Algorithm 1 and 2 of the paper).
    ea = solve_ea(instance, seed=13, iterations=300)
    print(ea.summary())
    aea = solve_aea(instance, seed=13, iterations=300)
    print(aea.summary())

    # 4c. Baseline: best of 500 random placements.
    baseline = solve_random_baseline(instance, seed=13, trials=500)
    print(baseline.summary())

    best = max((aa, ea, aea, baseline), key=lambda r: r.sigma)
    print(f"\nbest algorithm on this instance: {best.algorithm} "
          f"({best.sigma}/{instance.m} pairs maintained)")


if __name__ == "__main__":
    main()

"""Delivery validation: from probability model to simulated packets.

The MSC problem is stated in a probability model — a pair is "maintained"
when its most reliable path fails with probability at most p_t. This example
closes the loop: it places shortcut edges with the Approximation Algorithm,
then *simulates* link failures round by round and measures how often packets
actually get through, under the three forwarding strategies the paper's
introduction discusses (single best path, multipath, flooding).

Run:  python examples/delivery_validation.py
"""

from repro import (
    MSCInstance,
    SandwichApproximation,
    random_geometric_network,
    select_important_pairs,
)
from repro.sim.delivery import DeliverySimulator


def main() -> None:
    p_t = 0.1
    net = random_geometric_network(
        80, radius=0.2, max_link_failure=0.08, seed=17
    )
    pairs = select_important_pairs(
        net.graph, m=25, p_threshold=p_t, seed=18
    )
    instance = MSCInstance(net.graph, pairs, k=5, p_threshold=p_t)

    placement = SandwichApproximation(instance).solve()
    print(placement.summary())
    requirement = 1.0 - p_t

    for label, shortcuts in (("WITHOUT", []), ("WITH", placement.edges)):
        print(f"\n--- {label} shortcut edges ---")
        simulator = DeliverySimulator(instance.graph, shortcuts)
        for strategy in ("best_path", "multipath", "flooding"):
            report = simulator.simulate(
                pairs, strategy=strategy, trials=1500, seed=19
            )
            ok = report.meeting_requirement(p_t)
            print(
                f"{strategy:>10}: mean delivery "
                f"{report.mean_rate:.3f}, {ok}/{len(pairs)} pairs "
                f">= {requirement}"
            )

    # Per-pair: the model's promise, checked against the simulation.
    simulator = DeliverySimulator(instance.graph, placement.edges)
    report = simulator.simulate(pairs, trials=1500, seed=20)
    print("\nmaintained pairs, analytic vs simulated best-path delivery:")
    shown = 0
    for delivered, maintained in zip(report.pairs, placement.satisfied):
        if maintained and shown < 8:
            u, w = delivered.pair
            print(
                f"  {u}-{w}: analytic {delivered.analytic:.3f}, "
                f"simulated {delivered.rate:.3f}"
            )
            shown += 1
    print("  (every maintained pair must clear "
          f"{requirement} within Monte Carlo noise)")


if __name__ == "__main__":
    main()

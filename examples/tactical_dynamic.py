"""Tactical battlefield network: one placement serving a moving operation.

The paper's other motivating scenario (§I): a platoon commander must stay
connected to squad leaders while everyone moves. Topologies change over
time, so a single shortcut placement must work across the whole operation —
the dynamic MSC problem of §VI, where the objective sums the maintained
connections over all predicted topologies.

This example generates a reference-point-group-mobility trace (the stand-in
for the ARL tactical traces, see DESIGN.md §5), round-trips it through the
trace file format, builds the dynamic instance, and compares AA and AEA on
the summed objective.

Run:  python examples/tactical_dynamic.py
"""

import tempfile
from pathlib import Path

from repro import TacticalConfig, generate_tactical_trace
from repro.experiments.workloads import tactical_dynamic_instance
from repro.netgen.traces import load_trace, save_trace


def main() -> None:
    # 1. The operation: 50 nodes in 7 squads moving through a 2 km area,
    #    10 predicted topology snapshots.
    config = TacticalConfig(n_nodes=50, n_groups=7, snapshots=10)
    trace = generate_tactical_trace(config, seed=21)
    print(f"trace: {trace.n_nodes} nodes / {len(set(trace.groups.values()))} "
          f"squads / {trace.snapshots} snapshots")

    # 2. Traces persist to a simple CSV format (like the periodic location
    #    updates the paper's ARL dataset records).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "operation.trace"
        save_trace(trace, path)
        trace = load_trace(path)
        print(f"round-tripped trace through {path.name}")

    # 3. The dynamic MSC instance: 20 important pairs per snapshot that
    #    violate p_t = 0.11, with a budget of 8 satellite links shared
    #    across the whole operation.
    dyn = tactical_dynamic_instance(
        p_threshold=0.11, m=20, k=8, T=10, seed=21, n=50
    )
    print(f"dynamic instance: T={dyn.T}, {dyn.total_pairs} pair-instances, "
          f"k={dyn.k}\n")

    # 4. Solve on the summed objective (all static algorithms reapply).
    aa = dyn.solve_sandwich()
    print(f"AA : {aa.sigma}/{dyn.total_pairs} connection-instances "
          f"maintained")
    aea = dyn.solve_aea(iterations=150, seed=22)
    print(f"AEA: {aea.sigma}/{dyn.total_pairs} connection-instances "
          f"maintained")

    # 5. Per-snapshot breakdown for the better placement.
    best = max((aa, aea), key=lambda r: r.sigma)
    edges = dyn.edges_to_index_pairs(best.edges)
    per_topology = dyn.sigma_per_topology(edges)
    print(f"\nbest placement ({best.algorithm}): {best.edges}")
    for t, value in enumerate(per_topology):
        bar = "#" * value
        print(f"  t={t:2d}: {value:2d}/{dyn.instances[t].m} {bar}")


if __name__ == "__main__":
    main()

"""Tests for repro.graph.hub_labels — the hub-label tier must agree with
the dense DistanceOracle on every query it serves (exact distances up to
summation noise, identical infinities), because the solver treats all
three oracle tiers as interchangeable."""

import math
import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import (
    HUB_ORACLE_MIN_N,
    MSCInstance,
    resolve_oracle,
)
from repro.exceptions import GraphError
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.hub_labels import HubLabelOracle, threshold_cutoff
from tests.conftest import grid_graph, path_graph, random_graph

#: Hub distances are min-over-hubs of two-leg sums, so a value can differ
#: from the dense matrix's single-path sum by accumulated rounding; the
#: solver's own comparisons tolerate exactly this much relative noise.
REL_TOL = 1e-9

#: The dense scipy backend bumps exact-zero edge lengths to 1e-300, so a
#: zero-length path reads as ~1e-300 there while the hub index reports a
#: true 0.0. This absolute slack is astronomically above any epsilon
#: accumulation (n * 1e-300) and below every real distance.
ZERO_TOL = 1e-240


def assert_rows_agree(hub_row, dense_row):
    """Rowwise agreement: identical infinities, ULP-close finites."""
    hub_row = np.asarray(hub_row, dtype=float)
    dense_row = np.asarray(dense_row, dtype=float)
    assert np.array_equal(np.isinf(hub_row), np.isinf(dense_row))
    finite = ~np.isinf(dense_row)
    assert np.allclose(
        hub_row[finite], dense_row[finite], rtol=REL_TOL, atol=ZERO_TOL
    )


class TestAgreementWithDense:
    def test_grid_rows_match_dense_matrix(self):
        g = grid_graph(4, 4)
        dense = DistanceOracle(g)
        hub = HubLabelOracle(g)
        for i in range(g.number_of_nodes()):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])

    def test_point_queries_match_rows(self):
        g = grid_graph(3, 5)
        hub = HubLabelOracle(g)
        n = g.number_of_nodes()
        for iu in range(n):
            row = hub.row_by_index(iu)
            for iv in range(n):
                assert hub.distance_by_index(iu, iv) == row[iv]

    def test_disconnected_components_are_inf(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(2, 3, length=1.0)  # separate component
        dense = DistanceOracle(g)
        hub = HubLabelOracle(g)
        assert math.isinf(hub.distance_by_index(0, 2))
        for i in range(4):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])

    def test_zero_length_edges_agree(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.0)
        g.add_edge(1, 2, length=1.0)
        g.add_edge(2, 3, length=0.0)
        dense = DistanceOracle(g)
        hub = HubLabelOracle(g)
        for i in range(4):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])

    def test_rg_workload_rows_agree(self):
        from repro.experiments.workloads import rg_workload

        workload = rg_workload(seed=5, n=100)
        hub = HubLabelOracle(workload.graph)
        dense = workload.oracle
        for i in range(0, 100, 7):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])

    def test_gowalla_workload_rows_agree(self):
        from repro.experiments.workloads import gowalla_workload

        workload = gowalla_workload()
        hub = HubLabelOracle(workload.graph)
        dense = workload.oracle
        for i in range(0, workload.graph.number_of_nodes(), 11):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])

    def test_rows_and_rows_to_match_row_by_index(self):
        g = grid_graph(4, 5)
        hub = HubLabelOracle(g)
        indices = [0, 7, 19]
        stacked = hub.rows(indices)
        for slot, i in enumerate(indices):
            assert np.array_equal(stacked[slot], hub.row_by_index(i))
        columns = np.array([1, 4, 18], dtype=np.intp)
        block = hub.rows_to(indices, columns)
        for slot, i in enumerate(indices):
            assert np.array_equal(
                block[slot], hub.row_by_index(i)[columns]
            )

    def test_matrix_property_agrees_with_dense(self):
        g = grid_graph(3, 3)
        dense = DistanceOracle(g)
        hub = HubLabelOracle(g)
        for i in range(g.number_of_nodes()):
            assert_rows_agree(hub.matrix[i], dense.matrix[i])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        edge_prob=st.floats(min_value=0.05, max_value=0.5),
    )
    def test_random_graphs_agree_everywhere(self, seed, edge_prob):
        rng = random.Random(seed)
        g = random_graph(12, edge_prob, rng)  # may be disconnected
        if rng.random() < 0.5:  # exercise exact-zero edge lengths too
            u, v = rng.sample(range(12), 2)
            if not g.has_edge(u, v):
                g.add_edge(u, v, length=0.0)
        dense = DistanceOracle(g)
        hub = HubLabelOracle(g)
        for i in range(12):
            assert_rows_agree(hub.row_by_index(i), dense.matrix[i])


class TestCutoffMode:
    def test_exact_below_cutoff_never_under_above(self):
        rng = random.Random(3)
        g = random_graph(14, 0.3, rng)
        dense = DistanceOracle(g)
        cutoff = 1.5
        hub = HubLabelOracle(g, cutoff=cutoff)
        for iu in range(14):
            for iv in range(14):
                true = float(dense.matrix[iu, iv])
                got = hub.distance_by_index(iu, iv)
                if true <= cutoff:
                    assert math.isclose(
                        got, true, rel_tol=REL_TOL, abs_tol=ZERO_TOL
                    )
                else:
                    # Every label entry is a real path, so a cutoff
                    # index may only over-report beyond the cutoff.
                    assert got >= true or math.isclose(
                        got, true, rel_tol=REL_TOL, abs_tol=ZERO_TOL
                    )

    def test_threshold_cutoff_covers_solver_limit(self):
        d_t = 0.37
        tol = 1e-12 + 1e-9 * d_t
        assert threshold_cutoff(d_t) >= d_t + tol

    def test_matrix_property_raises_in_cutoff_mode(self):
        g = grid_graph(3, 3)
        hub = HubLabelOracle(g, cutoff=1.0)
        with pytest.raises(GraphError):
            hub.matrix

    def test_negative_cutoff_rejected(self):
        with pytest.raises(GraphError):
            HubLabelOracle(grid_graph(2, 2), cutoff=-1.0)


class TestAdoptionAndBuildCount:
    def test_with_arrays_round_trip(self):
        g = grid_graph(4, 4)
        original = HubLabelOracle(g, cutoff=2.5)
        adopted = HubLabelOracle.with_arrays(g, original.index_arrays())
        assert adopted.cutoff == original.cutoff
        for i in range(g.number_of_nodes()):
            assert np.array_equal(
                adopted.row_by_index(i), original.row_by_index(i)
            )

    def test_build_counter_counts_real_builds_only(self):
        g = path_graph([1.0, 1.0])
        before = HubLabelOracle.build_count
        original = HubLabelOracle(g)
        assert HubLabelOracle.build_count == before + 1
        adopted = HubLabelOracle.with_arrays(g, original.index_arrays())
        adopted.row_by_index(0)
        adopted.rows_to([0], np.array([2], dtype=np.intp))
        assert HubLabelOracle.build_count == before + 1

    def test_with_arrays_shape_mismatch_rejected(self):
        g = path_graph([1.0, 1.0])
        arrays = HubLabelOracle(g).index_arrays()
        bad = dict(arrays)
        bad["label_indptr"] = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError):
            HubLabelOracle.with_arrays(g, bad)


class TestOraclePolicy:
    def test_explicit_hub_policy(self):
        g = grid_graph(3, 3)
        oracle = resolve_oracle(g, [(0, 8)], 2.0, "hub")
        assert isinstance(oracle, HubLabelOracle)
        assert oracle.cutoff == threshold_cutoff(2.0)

    def test_instance_accepts_hub_policy(self):
        g = grid_graph(3, 3)
        inst = MSCInstance(
            g, [(0, 8)], k=1, d_threshold=2.0, oracle="hub"
        )
        assert inst.oracle_kind == "hub"

    def test_auto_picks_hub_at_scale(self):
        # A long path at the hub cutover: auto must choose the label
        # index without measuring the ball (which would dominate).
        n = HUB_ORACLE_MIN_N
        g = path_graph([1.0] * (n - 1))
        oracle = resolve_oracle(g, [(0, 4)], 2.0, "auto")
        assert isinstance(oracle, HubLabelOracle)


class TestPlacementIdentity:
    @pytest.mark.slow
    def test_three_tiers_identical_placements_n2000(self):
        """The tentpole guarantee: dense, sparse, and hub tiers produce
        the *identical* greedy placement on the scaled RG family."""
        from repro.core.evaluator import SigmaEvaluator
        from repro.core.greedy import greedy_placement
        from repro.netgen.geometric import random_geometric_network
        from repro.netgen.pairs import sample_important_pairs

        n, p_t, m, k = 2000, 0.03, 60, 5
        radius = 0.2 * math.sqrt(100 / n)
        net = random_geometric_network(
            n, radius=radius, max_link_failure=0.08, seed=1
        )
        pairs = sample_important_pairs(
            net.graph, m, p_t, seed=(1, "bench")
        )
        placements = {}
        for tier in ("dense", "sparse", "hub"):
            inst = MSCInstance(
                net.graph, pairs, k=k, p_threshold=p_t, oracle=tier
            )
            placements[tier] = greedy_placement(SigmaEvaluator(inst), k)
        assert placements["dense"] == placements["sparse"]
        assert placements["dense"] == placements["hub"]

    @pytest.mark.slow
    @pytest.mark.skipif(
        not os.environ.get("RUN_LARGE_N"),
        reason="large-n smoke runs only with RUN_LARGE_N=1 (CI job)",
    )
    def test_hub_smoke_n_10k(self):
        """fig1-family solve at n=10^4 through the auto policy: the hub
        tier must be selected and complete the solve."""
        from repro.core.evaluator import SigmaEvaluator
        from repro.core.greedy import greedy_placement
        from repro.netgen.geometric import random_geometric_network
        from repro.netgen.pairs import sample_important_pairs

        # The generator may drop a node on a position collision, so ask
        # for a margin above the cutover rather than exactly n = min-n.
        n, p_t, m, k = HUB_ORACLE_MIN_N + 500, 0.03, 60, 5
        radius = 0.2 * math.sqrt(100 / n)
        net = random_geometric_network(
            n, radius=radius, max_link_failure=0.08, seed=1
        )
        assert net.graph.number_of_nodes() >= HUB_ORACLE_MIN_N
        pairs = sample_important_pairs(
            net.graph, m, p_t, seed=(1, "bench")
        )
        inst = MSCInstance(
            net.graph, pairs, k=k, p_threshold=p_t, oracle="auto"
        )
        assert inst.oracle_kind == "hub"
        placement = greedy_placement(SigmaEvaluator(inst), k)
        assert len(placement) == k

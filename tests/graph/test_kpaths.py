"""Tests for repro.graph.kpaths (Yen's k shortest loopless paths)."""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.graph import WirelessGraph
from repro.graph.kpaths import k_shortest_paths
from tests.conftest import grid_graph, path_graph, random_graph


def diamond_graph():
    """Two parallel 2-hop routes plus one 3-hop route 0 -> 3."""
    g = WirelessGraph()
    g.add_edge(0, 1, length=1.0)
    g.add_edge(1, 3, length=1.0)
    g.add_edge(0, 2, length=1.5)
    g.add_edge(2, 3, length=1.5)
    g.add_edge(1, 2, length=0.2)
    return g


class TestBasics:
    def test_first_path_is_shortest(self):
        g = diamond_graph()
        paths = k_shortest_paths(g, 0, 3, 1)
        assert paths[0] == (2.0, [0, 1, 3])

    def test_orders_by_length(self):
        g = diamond_graph()
        paths = k_shortest_paths(g, 0, 3, 4)
        lengths = [l for l, _p in paths]
        assert lengths == sorted(lengths)

    def test_paths_are_distinct_and_loopless(self):
        g = diamond_graph()
        paths = k_shortest_paths(g, 0, 3, 4)
        as_tuples = [tuple(p) for _l, p in paths]
        assert len(set(as_tuples)) == len(as_tuples)
        for path in as_tuples:
            assert len(set(path)) == len(path)

    def test_fewer_paths_than_k(self):
        g = path_graph([1.0, 1.0])  # single route
        paths = k_shortest_paths(g, 0, 2, 5)
        assert len(paths) == 1

    def test_unreachable_raises(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_node(2)
        with pytest.raises(GraphError):
            k_shortest_paths(g, 0, 2, 2)

    def test_same_endpoints_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(GraphError, match="differ"):
            k_shortest_paths(g, 0, 0, 2)

    def test_path_endpoints_correct(self):
        g = grid_graph(3, 3)
        for _l, path in k_shortest_paths(g, 0, 8, 5):
            assert path[0] == 0 and path[-1] == 8

    def test_lengths_match_edge_sums(self):
        g = grid_graph(3, 3)
        for length, path in k_shortest_paths(g, 0, 8, 5):
            total = sum(g.length(a, b) for a, b in zip(path, path[1:]))
            assert total == pytest.approx(length)


class TestAgainstNetworkx:
    @given(
        n=st.integers(4, 10),
        k=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_simple_paths(self, n, k, seed):
        """Our k shortest paths must equal the k cheapest entries of the
        full loopless path enumeration."""
        rng = random.Random(seed)
        g = random_graph(n, 0.5, rng)
        nxg = g.to_networkx()
        try:
            all_paths = list(nx.all_simple_paths(nxg, 0, n - 1))
        except nx.NodeNotFound:
            return
        if not all_paths:
            return
        ref = sorted(
            sum(
                nxg[a][b]["length"] for a, b in zip(path, path[1:])
            )
            for path in all_paths
        )[:k]
        ours = [l for l, _p in k_shortest_paths(g, 0, n - 1, k)]
        assert len(ours) == len(ref)
        for mine, expected in zip(ours, ref):
            assert mine == pytest.approx(expected)

"""Tests for repro.graph.sparse_oracle — the SparseRowOracle must agree
*exactly* with the dense DistanceOracle on every query it serves, because
the greedy/evaluator hot paths treat the two tiers as interchangeable."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import (
    MSCInstance,
    SPARSE_ORACLE_MIN_N,
    default_oracle_policy,
    resolve_oracle,
    set_default_oracle_policy,
)
from repro.exceptions import GraphError, InstanceError
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.sparse_oracle import (
    SparseRowOracle,
    relevant_source_indices,
)
from tests.conftest import grid_graph, path_graph, random_graph


class TestAgreementWithDense:
    def test_block_rows_match_dense_matrix(self):
        g = grid_graph(4, 4)
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, [0, 5, 15], radius=2.0)
        for src in sparse.source_indices:
            assert np.array_equal(
                sparse.row_by_index(int(src)), dense.matrix[int(src)]
            )

    def test_straggler_rows_match_dense_matrix(self):
        g = grid_graph(4, 4)
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, [0], radius=1.0)
        outside = [
            i
            for i in range(g.number_of_nodes())
            if i not in set(int(s) for s in sparse.source_indices)
        ]
        assert outside, "need at least one row outside the block"
        for src in outside:
            assert np.array_equal(
                sparse.row_by_index(src), dense.matrix[src]
            )

    def test_unreachable_distances_are_inf_like_dense(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(2, 3, length=1.0)  # separate component
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, [0], radius=5.0)
        assert math.isinf(sparse.distance_by_index(0, 2))
        assert np.array_equal(sparse.row_by_index(0), dense.matrix[0])
        # A straggler row from the other component agrees too.
        assert np.array_equal(sparse.row_by_index(2), dense.matrix[2])

    def test_zero_length_edges_agree(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.0)
        g.add_edge(1, 2, length=1.0)
        g.add_edge(2, 3, length=0.0)
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, [0], radius=0.5)
        for i in range(4):
            assert np.array_equal(sparse.row_by_index(i), dense.matrix[i])

    def test_full_matrix_property_matches_dense(self):
        g = grid_graph(3, 3)
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, [0], radius=1.0)
        assert np.array_equal(sparse.matrix, dense.matrix)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        edge_prob=st.floats(min_value=0.05, max_value=0.5),
        radius=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_random_graphs_agree_everywhere(
        self, seed, edge_prob, radius
    ):
        rng = random.Random(seed)
        g = random_graph(12, edge_prob, rng)  # may be disconnected
        if rng.random() < 0.5:  # exercise exact-zero edge lengths too
            u, v = rng.sample(range(12), 2)
            if not g.has_edge(u, v):
                g.add_edge(u, v, length=0.0)
        seeds = rng.sample(range(12), 3)
        dense = DistanceOracle(g)
        sparse = SparseRowOracle(g, seeds, radius=radius)
        for i in range(12):
            assert np.array_equal(sparse.row_by_index(i), dense.matrix[i])
        for _ in range(10):
            iu, iv = rng.randrange(12), rng.randrange(12)
            d_sparse = sparse.distance_by_index(iu, iv)
            d_dense = float(dense.matrix[iu, iv])
            if math.isinf(d_dense):
                assert math.isinf(d_sparse)
            else:
                # distance_by_index may serve the symmetric query from
                # the other endpoint's row — a different Dijkstra
                # summation order, so allow ULP-level noise (rows from
                # the same source are compared bit-exactly above).
                assert math.isclose(
                    d_sparse, d_dense, rel_tol=1e-9, abs_tol=0.0
                )

    def test_backends_agree(self):
        g = grid_graph(3, 4)
        a = SparseRowOracle(g, [0, 11], radius=2.0, use_scipy=False)
        b = SparseRowOracle(g, [0, 11], radius=2.0, use_scipy=True)
        assert np.array_equal(a.block, b.block)


class TestBlockAndLaziness:
    def test_sources_cover_seeds_and_ball(self):
        g = path_graph([1.0, 1.0, 1.0, 1.0])
        sources = relevant_source_indices(g, [0], 2.0)
        assert list(sources) == [0, 1, 2]

    def test_lazy_fill_counted_once(self):
        g = path_graph([1.0, 1.0, 1.0])
        sparse = SparseRowOracle(g, [0], radius=0.5)
        assert sparse.lazy_fills == 0
        sparse.row_by_index(3)
        assert sparse.lazy_fills == 1
        sparse.row_by_index(3)  # cached now
        assert sparse.lazy_fills == 1

    def test_block_rows_are_not_lazy_fills(self):
        g = path_graph([1.0, 1.0])
        sparse = SparseRowOracle(g, [0, 1, 2])
        sparse.rows([0, 1, 2])
        assert sparse.lazy_fills == 0

    def test_build_counter_counts_real_builds_only(self):
        g = path_graph([1.0, 1.0])
        before = SparseRowOracle.build_count
        sparse = SparseRowOracle(g, [0])
        sparse.block  # first access builds
        sparse.block  # cached
        assert SparseRowOracle.build_count == before + 1
        adopted = SparseRowOracle.with_block(
            g, list(sparse.source_indices), np.array(sparse.block)
        )
        adopted.row_by_index(0)
        assert SparseRowOracle.build_count == before + 1

    def test_adopted_block_and_lazy_fills_never_bump_build_count(self):
        # with_block consistency: neither touching .block on an adopted
        # oracle nor serving straggler rows may count as a build —
        # build_count meters real row-block computations only, so the
        # shm fan-out's per-worker adoptions stay invisible to it.
        g = path_graph([1.0, 1.0, 1.0])
        original = SparseRowOracle(g, [0], radius=0.5)
        original.block  # real build
        before = SparseRowOracle.build_count
        adopted = SparseRowOracle.with_block(
            g, list(original.source_indices), np.array(original.block)
        )
        adopted.block
        adopted.block
        adopted.row_by_index(3)  # straggler -> lazy fill, not a build
        assert SparseRowOracle.build_count == before
        assert adopted.lazy_fills == 1

    def test_with_block_serves_adopted_rows(self):
        g = path_graph([1.0, 2.0])
        original = SparseRowOracle(g, [0, 1])
        adopted = SparseRowOracle.with_block(
            g, list(original.source_indices), np.array(original.block)
        )
        assert np.array_equal(
            adopted.row_by_index(0), original.row_by_index(0)
        )
        assert not adopted.block.flags.writeable

    def test_with_block_shape_mismatch_rejected(self):
        g = path_graph([1.0, 1.0])
        with pytest.raises(ValueError):
            SparseRowOracle.with_block(g, [0], np.zeros((2, 3)))

    def test_out_of_range_sources_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(GraphError):
            SparseRowOracle(g, sources=[5])

    def test_block_nbytes_counts_block_only(self):
        g = path_graph([1.0, 1.0, 1.0])
        sparse = SparseRowOracle(g, [0], radius=1.0)
        assert sparse.block_nbytes() == sparse.source_indices.size * 4 * 8


class TestOraclePolicy:
    def test_auto_picks_dense_below_min_n(self):
        g = grid_graph(3, 3)
        oracle = resolve_oracle(g, [(0, 8)], 2.0, "auto")
        assert isinstance(oracle, DistanceOracle)

    def test_explicit_sparse_on_small_graph(self):
        g = grid_graph(3, 3)
        oracle = resolve_oracle(g, [(0, 8)], 2.0, "sparse")
        assert isinstance(oracle, SparseRowOracle)

    def test_auto_picks_sparse_on_large_sparse_ball(self):
        # A long path: n >= SPARSE_ORACLE_MIN_N but the d_t-ball around
        # the single pair stays tiny, so auto should choose the row block.
        n = SPARSE_ORACLE_MIN_N + 1
        g = path_graph([1.0] * (n - 1))
        oracle = resolve_oracle(g, [(0, 4)], 2.0, "auto")
        assert isinstance(oracle, SparseRowOracle)

    def test_auto_falls_back_when_ball_covers_graph(self):
        n = SPARSE_ORACLE_MIN_N + 1
        g = path_graph([1.0] * (n - 1))
        # radius spanning the whole path -> relevant fraction ~1 -> dense
        oracle = resolve_oracle(g, [(0, n - 1)], float(n), "auto")
        assert isinstance(oracle, DistanceOracle)

    def test_unknown_policy_rejected(self):
        g = grid_graph(2, 2)
        with pytest.raises(InstanceError):
            resolve_oracle(g, [(0, 3)], 1.0, "fancy")

    def test_instance_accepts_policy_string(self):
        g = grid_graph(3, 3)
        inst = MSCInstance(
            g, [(0, 8)], k=1, d_threshold=2.0, oracle="sparse"
        )
        assert inst.oracle_kind == "sparse"
        dense_inst = MSCInstance(g, [(0, 8)], k=1, d_threshold=2.0)
        assert dense_inst.oracle_kind == "dense"

    def test_default_policy_round_trip(self):
        assert default_oracle_policy() == "auto"
        set_default_oracle_policy("dense")
        try:
            assert default_oracle_policy() == "dense"
            with pytest.raises(InstanceError):
                set_default_oracle_policy("bogus")
        finally:
            set_default_oracle_policy("auto")

    def test_sigma_identical_across_tiers(self):
        # The end-to-end guarantee: same instance, same sigma, same
        # greedy placement whichever tier serves the distances.
        from repro.core.evaluator import SigmaEvaluator
        from repro.core.greedy import greedy_placement

        rng = random.Random(7)
        g = random_graph(16, 0.25, rng)
        pairs = [(0, 15), (3, 12), (1, 9)]
        placements = {}
        for tier in ("dense", "sparse"):
            inst = MSCInstance(
                g,
                pairs,
                k=2,
                d_threshold=1.5,
                oracle=tier,
                require_initially_unsatisfied=False,
            )
            placements[tier] = greedy_placement(
                SigmaEvaluator(inst), inst.k
            )
        assert placements["dense"] == placements["sparse"]

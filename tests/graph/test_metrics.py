"""Tests for repro.graph.metrics."""

import pytest

from repro.graph.graph import WirelessGraph
from repro.graph.metrics import (
    connected_components,
    graph_stats,
    induced_subgraph,
    is_connected,
    largest_component,
)
from tests.conftest import grid_graph, path_graph


def two_component_graph():
    g = WirelessGraph()
    g.add_edge(0, 1, length=1.0)
    g.add_edge(1, 2, length=1.0)
    g.add_edge(3, 4, length=1.0)
    return g


class TestComponents:
    def test_connected_graph_single_component(self):
        assert len(connected_components(grid_graph(3, 3))) == 1

    def test_two_components(self):
        comps = connected_components(two_component_graph())
        assert sorted(sorted(c) for c in comps) == [[0, 1, 2], [3, 4]]

    def test_isolated_nodes_are_components(self):
        g = WirelessGraph()
        g.add_nodes([0, 1, 2])
        assert len(connected_components(g)) == 3

    def test_is_connected(self):
        assert is_connected(path_graph([1.0]))
        assert not is_connected(two_component_graph())

    def test_empty_graph_not_connected(self):
        assert not is_connected(WirelessGraph())

    def test_largest_component(self):
        assert sorted(largest_component(two_component_graph())) == [0, 1, 2]

    def test_largest_component_empty(self):
        assert largest_component(WirelessGraph()) == []


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = two_component_graph()
        sub = induced_subgraph(g, [0, 1, 3])
        assert sub.has_edge(0, 1)
        assert not sub.has_node(2)
        assert sub.has_node(3)
        assert sub.number_of_edges() == 1

    def test_preserves_lengths(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=2.5)
        sub = induced_subgraph(g, [0, 1])
        assert sub.length(0, 1) == 2.5


class TestGraphStats:
    def test_counts(self):
        stats = graph_stats(two_component_graph())
        assert stats.nodes == 5
        assert stats.edges == 3
        assert stats.components == 2
        assert stats.average_degree == pytest.approx(6 / 5)

    def test_weighted_diameter_finite_pairs_only(self):
        stats = graph_stats(two_component_graph())
        assert stats.weighted_diameter == pytest.approx(2.0)

    def test_empty_graph(self):
        stats = graph_stats(WirelessGraph())
        assert stats.nodes == 0
        assert stats.average_degree == 0.0

    def test_str_contains_fields(self):
        text = str(graph_stats(path_graph([1.0])))
        assert "n=2" in text and "e=1" in text

"""Tests for repro.graph.paths — including equivalence with networkx and
between the scipy and pure-Python APSP backends."""

import math
import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.graph import WirelessGraph
from repro.graph.paths import (
    all_pairs_distance_matrix,
    dijkstra,
    shortest_path,
    shortest_path_length,
)
from tests.conftest import grid_graph, path_graph, random_graph


class TestDijkstra:
    def test_path_graph_distances(self):
        g = path_graph([1.0, 2.0, 3.0])
        dist = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_unreachable_nodes_absent(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_node(2)
        assert 2 not in dijkstra(g, 0)

    def test_cutoff_prunes(self):
        g = path_graph([1.0, 1.0, 1.0])
        dist = dijkstra(g, 0, cutoff=1.5)
        assert dist == {0: 0.0, 1: 1.0}

    def test_cutoff_keeps_exact_boundary(self):
        g = path_graph([1.0, 1.0])
        dist = dijkstra(g, 0, cutoff=2.0)
        assert dist[2] == 2.0

    def test_zero_length_edges(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.0)
        g.add_edge(1, 2, length=1.0)
        assert dijkstra(g, 0)[2] == 1.0

    def test_takes_shorter_route(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=10.0)
        g.add_edge(0, 2, length=1.0)
        g.add_edge(2, 1, length=1.0)
        assert dijkstra(g, 0)[1] == 2.0

    def test_unknown_source_raises(self):
        g = path_graph([1.0])
        with pytest.raises(GraphError):
            dijkstra(g, 99)


class TestShortestPath:
    def test_returns_length_and_nodes(self):
        g = path_graph([1.0, 2.0])
        length, nodes = shortest_path(g, 0, 2)
        assert length == 3.0
        assert nodes == [0, 1, 2]

    def test_source_equals_target(self):
        g = path_graph([1.0])
        length, nodes = shortest_path(g, 0, 0)
        assert length == 0.0
        assert nodes == [0]

    def test_unreachable_raises(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_node(2)
        with pytest.raises(GraphError, match="unreachable"):
            shortest_path(g, 0, 2)

    def test_path_edges_exist_and_sum(self):
        g = grid_graph(3, 3)
        length, nodes = shortest_path(g, 0, 8)
        total = sum(
            g.length(a, b) for a, b in zip(nodes, nodes[1:])
        )
        assert total == pytest.approx(length)
        assert length == pytest.approx(shortest_path_length(g, 0, 8))


class TestAllPairs:
    def test_matches_single_source(self):
        g = grid_graph(3, 4)
        matrix = all_pairs_distance_matrix(g)
        for src in range(g.number_of_nodes()):
            dist = dijkstra(g, src)
            for dst, d in dist.items():
                assert matrix[src, g.node_index(dst)] == pytest.approx(d)

    def test_disconnected_is_inf(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_node(2)
        matrix = all_pairs_distance_matrix(g)
        assert math.isinf(matrix[0, 2])

    def test_symmetric_zero_diagonal(self):
        g = grid_graph(2, 3)
        matrix = all_pairs_distance_matrix(g)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_scipy_and_python_backends_agree(self):
        rng = random.Random(3)
        for _ in range(5):
            g = random_graph(12, 0.3, rng)
            a = all_pairs_distance_matrix(g, use_scipy=True)
            b = all_pairs_distance_matrix(g, use_scipy=False)
            assert np.allclose(a, b, equal_nan=False)

    def test_zero_length_edges_scipy_backend(self):
        """scipy csgraph drops explicit zeros; the backend must not."""
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.0)
        g.add_edge(1, 2, length=1.0)
        matrix = all_pairs_distance_matrix(g, use_scipy=True)
        assert matrix[0, 2] == pytest.approx(1.0, abs=1e-12)
        assert matrix[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_empty_graph(self):
        g = WirelessGraph()
        assert all_pairs_distance_matrix(g).shape == (0, 0)


class TestAgainstNetworkx:
    @given(
        n=st.integers(2, 14),
        edge_prob=st.floats(0.1, 0.9),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_apsp_matches_networkx(self, n, edge_prob, seed):
        g = random_graph(n, edge_prob, random.Random(seed))
        matrix = all_pairs_distance_matrix(g)
        nxg = g.to_networkx()
        for src in range(n):
            ref = nx.single_source_dijkstra_path_length(
                nxg, src, weight="length"
            )
            for dst in range(n):
                expected = ref.get(dst, math.inf)
                got = matrix[src, dst]
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected)


class TestZeroLengthEdgeBackends:
    """Regression for the scipy zero-length workaround: csgraph drops
    explicit zeros from sparse matrices, so ``_apsp_scipy`` bumps them to
    1e-300. Both backends must agree on graphs with exact-zero edges."""

    def _assert_backends_agree(self, g):
        pytest.importorskip("scipy")
        via_scipy = all_pairs_distance_matrix(g, use_scipy=True)
        via_python = all_pairs_distance_matrix(g, use_scipy=False)
        assert via_scipy.shape == via_python.shape
        finite = np.isfinite(via_python)
        assert np.array_equal(finite, np.isfinite(via_scipy))
        # The 1e-300 bump is the only permissible deviation; anything
        # visible at 1e-200 means the workaround broke.
        assert np.all(
            np.abs(via_scipy[finite] - via_python[finite]) < 1e-200
        )

    def test_exact_zero_edge_on_path(self):
        g = path_graph([1.0, 0.0, 2.0])
        self._assert_backends_agree(g)
        matrix = all_pairs_distance_matrix(g, use_scipy=False)
        assert matrix[1, 2] == 0.0
        assert matrix[0, 3] == pytest.approx(3.0)

    def test_all_zero_component(self):
        g = WirelessGraph()
        g.add_nodes(range(4))
        g.add_edge(0, 1, length=0.0)
        g.add_edge(1, 2, length=0.0)
        g.add_edge(2, 0, length=0.0)  # zero triangle, node 3 disconnected
        self._assert_backends_agree(g)
        matrix = all_pairs_distance_matrix(g, use_scipy=True)
        assert matrix[0, 2] < 1e-200
        assert math.isinf(matrix[0, 3])

    @given(
        n=st.integers(2, 12),
        zero_prob=st.floats(0.1, 0.9),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_with_zero_edges(self, n, zero_prob, seed):
        rng = random.Random(seed)
        g = WirelessGraph()
        g.add_nodes(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.5:
                    length = (
                        0.0
                        if rng.random() < zero_prob
                        else rng.uniform(0.0, 3.0)
                    )
                    g.add_edge(i, j, length=length)
        self._assert_backends_agree(g)

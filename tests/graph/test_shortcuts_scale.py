"""Scale sanity: the shortcut engine stays exact on a larger instance than
the unit tests use (n=300, many shortcuts), cross-checked against networkx.
"""

import math
import random

import networkx as nx
import pytest

from repro.graph.distances import DistanceOracle
from repro.graph.shortcuts import ShortcutDistanceEngine
from tests.conftest import random_graph

pytestmark = pytest.mark.slow


def test_engine_exact_at_n300():
    rng = random.Random(99)
    graph = random_graph(300, 0.02, rng)
    shortcuts = []
    for _ in range(25):
        a, b = rng.sample(range(300), 2)
        shortcuts.append((a, b))
    engine = ShortcutDistanceEngine(DistanceOracle(graph), shortcuts)

    nxg = graph.to_networkx()
    for a, b in shortcuts:
        if nxg.has_edge(a, b):
            nxg[a][b]["length"] = 0.0
        else:
            nxg.add_edge(a, b, length=0.0)

    for source in rng.sample(range(300), 5):
        ref = nx.single_source_dijkstra_path_length(
            nxg, source, weight="length"
        )
        mine = engine.distances_from_index(source)
        for v in range(300):
            expected = ref.get(v, math.inf)
            if math.isinf(expected):
                assert math.isinf(mine[v])
            else:
                assert mine[v] == pytest.approx(expected, abs=1e-9)


def test_batched_queries_match_single_at_scale():
    rng = random.Random(100)
    graph = random_graph(200, 0.03, rng)
    shortcuts = [tuple(rng.sample(range(200), 2)) for _ in range(15)]
    engine = ShortcutDistanceEngine(DistanceOracle(graph), shortcuts)
    sources = rng.sample(range(200), 40)
    batched = engine.distances_from_indices(sources)
    for row, source in zip(batched, sources):
        single = engine.distances_from_index(source)
        assert all(
            (math.isinf(a) and math.isinf(b)) or a == pytest.approx(b)
            for a, b in zip(row, single)
        )

"""Tests for repro.graph.shortcuts — the supernode-contraction distance
engine must be *exactly* equivalent to running Dijkstra on the augmented
graph. This is the correctness keystone of the whole library."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.graph.shortcuts import ShortcutDistanceEngine
from tests.conftest import grid_graph, path_graph, random_graph


def reference_distances(graph, shortcuts, source):
    """Ground truth: networkx Dijkstra on the augmented graph."""
    nxg = graph.to_networkx()
    for a, b in shortcuts:
        # A shortcut may parallel an existing edge; keep the minimum.
        if nxg.has_edge(a, b):
            nxg[a][b]["length"] = 0.0
        else:
            nxg.add_edge(a, b, length=0.0)
    return nx.single_source_dijkstra_path_length(
        nxg, source, weight="length"
    )


class TestNoShortcuts:
    def test_identity_on_base_distances(self):
        g = grid_graph(3, 3)
        oracle = DistanceOracle(g)
        engine = ShortcutDistanceEngine(oracle, [])
        assert list(engine.distances_from(0)) == pytest.approx(
            list(oracle.row(0))
        )

    def test_distance_scalar(self):
        g = path_graph([1.0, 2.0])
        engine = ShortcutDistanceEngine(DistanceOracle(g), [])
        assert engine.distance(0, 2) == pytest.approx(3.0)


class TestSingleShortcut:
    def test_bridges_far_nodes(self):
        g = path_graph([1.0] * 5)  # 0..5
        engine = ShortcutDistanceEngine(DistanceOracle(g), [(0, 5)])
        assert engine.distance(0, 5) == 0.0
        assert engine.distance(1, 5) == pytest.approx(1.0)
        assert engine.distance(1, 4) == pytest.approx(2.0)

    def test_parallel_to_existing_edge(self):
        g = path_graph([1.0, 1.0])
        engine = ShortcutDistanceEngine(DistanceOracle(g), [(0, 1)])
        assert engine.distance(0, 2) == pytest.approx(1.0)

    def test_self_loop_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(GraphError, match="self-loop"):
            ShortcutDistanceEngine(DistanceOracle(g), [(0, 0)])

    def test_out_of_range_index_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(GraphError, match="out of range"):
            ShortcutDistanceEngine.from_index_pairs(
                DistanceOracle(g), [(0, 5)]
            )


class TestChainedShortcuts:
    def test_shortcut_chain_collapses(self):
        """Shortcuts (a,b) and (b,c) make a, b, c mutually distance 0."""
        g = path_graph([1.0] * 6)
        engine = ShortcutDistanceEngine(
            DistanceOracle(g), [(0, 3), (3, 6)]
        )
        assert engine.distance(0, 6) == 0.0

    def test_two_disjoint_components_chain_through_base(self):
        """Path through supernode A, some base edges, then supernode B."""
        g = path_graph([1.0] * 9)  # 0..9
        engine = ShortcutDistanceEngine(
            DistanceOracle(g), [(0, 4), (5, 9)]
        )
        # 0 ->(shortcut) 4 ->(base) 5 ->(shortcut) 9
        assert engine.distance(0, 9) == pytest.approx(1.0)

    def test_connects_disconnected_components(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(2, 3, length=1.0)
        oracle = DistanceOracle(g)
        assert math.isinf(oracle.distance(0, 3))
        engine = ShortcutDistanceEngine(oracle, [(1, 2)])
        assert engine.distance(0, 3) == pytest.approx(2.0)


class TestIntrospection:
    def test_component_indices(self):
        g = path_graph([1.0] * 4)
        engine = ShortcutDistanceEngine(
            DistanceOracle(g), [(0, 2), (2, 4), (1, 3)]
        )
        comps = sorted(sorted(c) for c in engine.component_indices)
        assert comps == [[0, 2, 4], [1, 3]]

    def test_chained_components_merge(self):
        g = path_graph([1.0] * 4)
        engine = ShortcutDistanceEngine(
            DistanceOracle(g), [(0, 2), (2, 4), (4, 1), (1, 3)]
        )
        comps = engine.component_indices
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2, 3, 4]

    def test_shortcut_indices_preserved(self):
        g = path_graph([1.0] * 3)
        engine = ShortcutDistanceEngine(DistanceOracle(g), [(3, 0)])
        assert engine.shortcut_indices == [(3, 0)]


class TestSatisfiedPairs:
    def test_threshold_check(self):
        g = path_graph([1.0] * 4)
        oracle = DistanceOracle(g)
        engine = ShortcutDistanceEngine(oracle, [(0, 4)])
        flags = engine.satisfied_pairs([(0, 4), (1, 3)], threshold=1.0)
        assert flags == [True, False]

    def test_exact_boundary_counts(self):
        g = path_graph([0.5, 0.5])
        engine = ShortcutDistanceEngine(DistanceOracle(g), [])
        assert engine.satisfied_pairs([(0, 2)], threshold=1.0) == [True]


class TestAgainstNetworkx:
    @given(
        n=st.integers(3, 14),
        edge_prob=st.floats(0.1, 0.7),
        n_shortcuts=st.integers(0, 6),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_distances_match_augmented_dijkstra(
        self, n, edge_prob, n_shortcuts, seed
    ):
        rng = random.Random(seed)
        g = random_graph(n, edge_prob, rng)
        shortcuts = []
        for _ in range(n_shortcuts):
            a, b = rng.sample(range(n), 2)
            shortcuts.append((a, b))
        engine = ShortcutDistanceEngine(DistanceOracle(g), shortcuts)
        source = rng.randrange(n)
        ref = reference_distances(g, shortcuts, source)
        mine = engine.distances_from(source)
        for v in range(n):
            expected = ref.get(v, math.inf)
            if math.isinf(expected):
                assert math.isinf(mine[v])
            else:
                assert mine[v] == pytest.approx(expected, abs=1e-9)

    @given(
        n=st.integers(4, 12),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_with_zero_length_base_edges(self, n, seed):
        """Perfectly reliable *base* links (p=0, length 0) must interoperate
        with shortcut contraction — scipy's zero-handling and the supernode
        algebra both get exercised."""
        rng = random.Random(seed)
        g = WirelessGraph()
        g.add_nodes(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.4:
                    length = 0.0 if rng.random() < 0.3 else rng.uniform(0, 2)
                    g.add_edge(i, j, length=length)
        shortcuts = [
            tuple(rng.sample(range(n), 2))
            for _ in range(rng.randrange(0, 4))
        ]
        engine = ShortcutDistanceEngine(DistanceOracle(g), shortcuts)
        source = rng.randrange(n)
        ref = reference_distances(g, shortcuts, source)
        mine = engine.distances_from_index(source)
        for v in range(n):
            expected = ref.get(v, math.inf)
            if math.isinf(expected):
                assert math.isinf(mine[v])
            else:
                assert mine[v] == pytest.approx(expected, abs=1e-9)

    @given(
        n=st.integers(3, 10),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_scalar_matches_vector_query(self, n, seed):
        rng = random.Random(seed)
        g = random_graph(n, 0.4, rng)
        shortcuts = [tuple(rng.sample(range(n), 2)) for _ in range(3)]
        engine = ShortcutDistanceEngine(DistanceOracle(g), shortcuts)
        u, v = rng.sample(range(n), 2)
        row = engine.distances_from(u)
        scalar = engine.distance(u, v)
        if math.isinf(scalar):
            assert math.isinf(row[v])
        else:
            assert scalar == pytest.approx(float(row[v]))


class TestExtended:
    """extended()/extended_by_index() must be indistinguishable from
    building the engine for the larger set from scratch."""

    @staticmethod
    def _assert_same_engine(incremental, scratch, n):
        assert sorted(map(tuple, incremental.component_indices)) == sorted(
            map(tuple, scratch.component_indices)
        )
        sources = list(range(n))
        a = incremental.distances_from_indices(sources)
        b = scratch.distances_from_indices(sources)
        assert a == pytest.approx(b, abs=1e-9)

    @given(
        n=st.integers(4, 14),
        edge_prob=st.floats(0.2, 0.7),
        n_shortcuts=st.integers(0, 6),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_extension_matches_scratch(
        self, n, edge_prob, n_shortcuts, seed
    ):
        rng = random.Random(seed)
        g = random_graph(n, edge_prob, rng)
        oracle = DistanceOracle(g)
        pairs = [
            tuple(rng.sample(range(n), 2)) for _ in range(n_shortcuts + 1)
        ]
        parent = ShortcutDistanceEngine.from_index_pairs(oracle, pairs[:-1])
        incremental = parent.extended_by_index(*pairs[-1])
        scratch = ShortcutDistanceEngine.from_index_pairs(oracle, pairs)
        self._assert_same_engine(incremental, scratch, n)
        assert incremental.shortcut_indices == pairs

    @given(
        n=st.integers(4, 12),
        n_shortcuts=st.integers(1, 8),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_extension_chain_matches_scratch(self, n, n_shortcuts, seed):
        """Growing one edge at a time (the greedy hot path) must agree with
        the scratch build at every prefix."""
        rng = random.Random(seed)
        g = random_graph(n, 0.4, rng)
        oracle = DistanceOracle(g)
        engine = ShortcutDistanceEngine.from_index_pairs(oracle, [])
        pairs = []
        for _ in range(n_shortcuts):
            pair = tuple(rng.sample(range(n), 2))
            pairs.append(pair)
            engine = engine.extended_by_index(*pair)
            scratch = ShortcutDistanceEngine.from_index_pairs(oracle, pairs)
            self._assert_same_engine(engine, scratch, n)

    def test_node_keyed_extended(self):
        g = path_graph([1.0, 1.0, 1.0, 1.0])
        oracle = DistanceOracle(g)
        engine = ShortcutDistanceEngine(oracle, [(0, 2)])
        extended = engine.extended((2, 4))
        scratch = ShortcutDistanceEngine(oracle, [(0, 2), (2, 4)])
        assert extended.distances_from(0) == pytest.approx(
            scratch.distances_from(0)
        )

    def test_redundant_edge_shares_tables(self):
        """An edge inside an existing supernode changes nothing; the child
        may share the immutable parent tables outright."""
        g = path_graph([1.0, 1.0, 1.0])
        oracle = DistanceOracle(g)
        engine = ShortcutDistanceEngine(oracle, [(0, 1), (1, 2)])
        child = engine.extended_by_index(0, 2)
        assert child.component_indices == engine.component_indices
        assert len(child.shortcut_indices) == 3
        assert child.distances_from(3) == pytest.approx(
            engine.distances_from(3)
        )

    def test_extended_rejects_self_loop_and_range(self):
        g = path_graph([1.0, 1.0])
        engine = ShortcutDistanceEngine(DistanceOracle(g), [])
        with pytest.raises(GraphError):
            engine.extended_by_index(1, 1)
        with pytest.raises(GraphError):
            engine.extended_by_index(0, 99)

    def test_parent_unchanged_by_extension(self):
        g = path_graph([1.0, 1.0, 1.0, 1.0])
        engine = ShortcutDistanceEngine(DistanceOracle(g), [(0, 2)])
        before = engine.distances_from(0).copy()
        engine.extended_by_index(2, 4)
        assert engine.distances_from(0) == pytest.approx(before)
        assert engine.shortcut_indices == [(0, 2)]

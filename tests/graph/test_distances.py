"""Tests for repro.graph.distances (DistanceOracle)."""

import numpy as np
import pytest

from repro.graph.distances import DistanceOracle
from repro.graph.paths import all_pairs_distance_matrix
from tests.conftest import grid_graph, path_graph


class TestDistanceOracle:
    def test_matrix_matches_apsp(self):
        g = grid_graph(3, 3)
        oracle = DistanceOracle(g)
        assert np.allclose(oracle.matrix, all_pairs_distance_matrix(g))

    def test_lazy_single_computation(self):
        g = path_graph([1.0, 2.0])
        oracle = DistanceOracle(g)
        first = oracle.matrix
        assert oracle.matrix is first  # cached, not recomputed

    def test_distance_by_nodes(self):
        g = path_graph([1.0, 2.0])
        oracle = DistanceOracle(g)
        assert oracle.distance(0, 2) == pytest.approx(3.0)

    def test_distance_by_index(self):
        g = path_graph([1.0, 2.0])
        oracle = DistanceOracle(g)
        assert oracle.distance_by_index(0, 2) == pytest.approx(3.0)

    def test_row_views(self):
        g = path_graph([1.0, 1.0])
        oracle = DistanceOracle(g)
        assert list(oracle.row(0)) == pytest.approx([0.0, 1.0, 2.0])
        assert list(oracle.row_by_index(2)) == pytest.approx(
            [2.0, 1.0, 0.0]
        )

    def test_number_of_nodes(self):
        g = path_graph([1.0])
        assert DistanceOracle(g).number_of_nodes() == 2

    def test_backend_forcing(self):
        g = grid_graph(2, 2)
        a = DistanceOracle(g, use_scipy=False).matrix
        b = DistanceOracle(g, use_scipy=True).matrix
        assert np.allclose(a, b)

"""Tests for repro.graph.graph (WirelessGraph)."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graph.graph import WirelessGraph


class TestNodes:
    def test_add_node_returns_index(self):
        g = WirelessGraph()
        assert g.add_node("a") == 0
        assert g.add_node("b") == 1

    def test_add_node_idempotent(self):
        g = WirelessGraph()
        assert g.add_node("a") == g.add_node("a")
        assert g.number_of_nodes() == 1

    def test_index_roundtrip(self):
        g = WirelessGraph()
        g.add_nodes(["x", "y", "z"])
        for node in g.nodes:
            assert g.index_node(g.node_index(node)) == node

    def test_unknown_node_raises(self):
        g = WirelessGraph()
        with pytest.raises(GraphError, match="unknown node"):
            g.node_index("missing")

    def test_bad_index_raises(self):
        g = WirelessGraph()
        with pytest.raises(GraphError):
            g.index_node(0)

    def test_contains_and_len(self):
        g = WirelessGraph()
        g.add_nodes([1, 2])
        assert 1 in g and 3 not in g
        assert len(g) == 2

    def test_arbitrary_hashable_nodes(self):
        g = WirelessGraph()
        g.add_edge(("squad", 1), ("squad", 2), length=1.0)
        assert g.has_edge(("squad", 1), ("squad", 2))


class TestEdges:
    def test_add_edge_by_probability_derives_length(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.1)
        assert g.length(0, 1) == pytest.approx(-math.log(0.9))
        assert g.failure_probability(0, 1) == pytest.approx(0.1)

    def test_add_edge_by_length_derives_probability(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.5)
        assert g.failure_probability(0, 1) == pytest.approx(
            1 - math.exp(-0.5)
        )

    def test_zero_failure_gives_zero_length(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.0)
        assert g.length(0, 1) == 0.0

    def test_both_attributes_rejected(self):
        g = WirelessGraph()
        with pytest.raises(GraphError, match="exactly one"):
            g.add_edge(0, 1, failure_probability=0.1, length=0.1)

    def test_neither_attribute_rejected(self):
        g = WirelessGraph()
        with pytest.raises(GraphError, match="exactly one"):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = WirelessGraph()
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(0, 0, length=1.0)

    def test_undirected_symmetry(self):
        g = WirelessGraph()
        g.add_edge("a", "b", length=2.0)
        assert g.length("a", "b") == g.length("b", "a") == 2.0

    def test_re_add_overwrites(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(0, 1, length=3.0)
        assert g.length(0, 1) == 3.0
        assert g.number_of_edges() == 1

    def test_remove_edge(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.number_of_nodes() == 2  # nodes stay

    def test_remove_missing_edge_raises(self):
        g = WirelessGraph()
        g.add_nodes([0, 1])
        with pytest.raises(GraphError, match="no edge"):
            g.remove_edge(0, 1)

    def test_missing_edge_length_raises(self):
        g = WirelessGraph()
        g.add_nodes([0, 1])
        with pytest.raises(GraphError, match="no edge"):
            g.length(0, 1)

    def test_edges_listing_each_once(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(1, 2, length=2.0)
        assert sorted(g.edges) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_neighbors_and_degree(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        g.add_edge(0, 2, length=2.0)
        assert dict(g.neighbors(0)) == {1: 1.0, 2: 2.0}
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_invalid_probability_rejected(self):
        g = WirelessGraph()
        with pytest.raises(Exception):
            g.add_edge(0, 1, failure_probability=1.0)
        with pytest.raises(Exception):
            g.add_edge(0, 1, failure_probability=-0.1)

    def test_negative_length_rejected(self):
        g = WirelessGraph()
        with pytest.raises(Exception):
            g.add_edge(0, 1, length=-1.0)


class TestConversion:
    def test_copy_is_independent(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        clone = g.copy()
        clone.add_edge(1, 2, length=1.0)
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not g.has_node(2)

    def test_to_networkx(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.2)
        nxg = g.to_networkx()
        assert nxg.number_of_edges() == 1
        assert nxg[0][1]["failure_probability"] == pytest.approx(0.2)
        assert nxg[0][1]["length"] == pytest.approx(-math.log(0.8))

    def test_from_edges_by_length(self):
        g = WirelessGraph.from_edges([(0, 1, 1.5)], nodes=[9])
        assert g.length(0, 1) == 1.5
        assert g.has_node(9)

    def test_from_edges_by_probability(self):
        g = WirelessGraph.from_edges(
            [(0, 1, 0.3)], by="failure_probability"
        )
        assert g.failure_probability(0, 1) == pytest.approx(0.3)

    def test_from_edges_bad_attribute(self):
        with pytest.raises(GraphError, match="unknown edge attribute"):
            WirelessGraph.from_edges([], by="weight")

    def test_repr_mentions_sizes(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=1.0)
        assert "n=2" in repr(g) and "e=1" in repr(g)


class TestNonFiniteEdgeInputs:
    """NaN/inf edge attributes must be rejected at add_edge time — a single
    non-finite length would poison every shortest-path distance downstream."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -float("inf")]
    )
    def test_non_finite_failure_probability_rejected(self, value):
        from repro.exceptions import ValidationError

        graph = WirelessGraph()
        graph.add_nodes([0, 1])
        with pytest.raises(ValidationError):
            graph.add_edge(0, 1, failure_probability=value)
        assert graph.number_of_edges() == 0

    @pytest.mark.parametrize("value", [float("nan"), float("inf")])
    def test_non_finite_length_rejected(self, value):
        from repro.exceptions import ValidationError

        graph = WirelessGraph()
        graph.add_nodes([0, 1])
        with pytest.raises(ValidationError):
            graph.add_edge(0, 1, length=value)
        assert graph.number_of_edges() == 0

"""Cross-algorithm guarantee checks against the exact optimum on small
instances — the empirical counterpart of Theorems 5-7 and Eq. (5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aea import solve_aea
from repro.core.ea import solve_ea
from repro.core.exact import solve_exact
from repro.core.sandwich import SandwichApproximation
from tests.core.helpers import random_instance

APPROX = 1 - 1 / math.e


class TestSandwichGuarantee:
    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=10, deadline=None)
    def test_practical_eq5_bound(self, seed):
        instance = random_instance(seed, n_range=(4, 8), k=2, max_pairs=4)
        aa = SandwichApproximation(instance)
        result = aa.solve()
        opt = solve_exact(instance).sigma
        bound = result.extras["ratio"] * APPROX * opt
        assert result.sigma >= bound - 1e-9


class TestEvolutionaryConvergence:
    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=6, deadline=None)
    def test_aea_reaches_near_optimal_with_generous_budget(self, seed):
        """On tiny instances AEA's mostly-greedy swaps should match the
        exact optimum given plenty of iterations (paper Fig. 4's message)."""
        instance = random_instance(seed, n_range=(4, 7), k=2, max_pairs=4)
        opt = solve_exact(instance).sigma
        result = solve_aea(instance, seed=seed, iterations=150)
        assert result.sigma >= opt - 1

    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=6, deadline=None)
    def test_ea_improves_toward_optimum(self, seed):
        instance = random_instance(seed, n_range=(4, 6), k=2, max_pairs=3)
        opt = solve_exact(instance).sigma
        short = solve_ea(instance, seed=seed, iterations=20)
        long = solve_ea(instance, seed=seed, iterations=600)
        assert long.sigma >= short.sigma
        assert long.sigma <= opt


class TestNobodyBeatsExact:
    @given(seed=st.integers(0, 3_000))
    @settings(max_examples=8, deadline=None)
    def test_all_heuristics_bounded_by_exact(self, seed):
        instance = random_instance(seed, n_range=(4, 7), k=2, max_pairs=4)
        opt = solve_exact(instance).sigma
        assert SandwichApproximation(instance).solve().sigma <= opt
        assert solve_ea(instance, seed=1, iterations=50).sigma <= opt
        assert solve_aea(instance, seed=1, iterations=30).sigma <= opt

"""End-to-end pipelines: generate workload -> select pairs -> solve ->
verify the placement against an independent reference implementation."""

import math

import networkx as nx
import pytest

from repro import (
    MSCInstance,
    SandwichApproximation,
    random_geometric_network,
    select_important_pairs,
    solve_aea,
    solve_ea,
    solve_random_baseline,
)
from repro.experiments.workloads import (
    gowalla_workload,
    tactical_dynamic_instance,
)


def verify_placement(instance, result):
    """Recompute σ for the reported edges with networkx (independent of the
    library's distance machinery) and check it matches."""
    nxg = instance.graph.to_networkx()
    for u, v in result.edges:
        if nxg.has_edge(u, v):
            nxg[u][v]["length"] = 0.0
        else:
            nxg.add_edge(u, v, length=0.0)
    count = 0
    for u, w in instance.pairs:
        try:
            d = nx.shortest_path_length(nxg, u, w, weight="length")
        except nx.NetworkXNoPath:
            continue
        if d <= instance.d_threshold + 1e-9:
            count += 1
    assert count == result.sigma, (result.algorithm, count, result.sigma)


class TestRgPipeline:
    @pytest.fixture(scope="class")
    def instance(self):
        net = random_geometric_network(70, 0.22, seed=31)
        pairs = select_important_pairs(
            net.graph, m=20, p_threshold=0.1, seed=32
        )
        return MSCInstance(net.graph, pairs, k=4, p_threshold=0.1)

    def test_sandwich_verified(self, instance):
        verify_placement(instance, SandwichApproximation(instance).solve())

    def test_ea_verified(self, instance):
        verify_placement(
            instance, solve_ea(instance, seed=33, iterations=100)
        )

    def test_aea_verified(self, instance):
        verify_placement(
            instance, solve_aea(instance, seed=33, iterations=40)
        )

    def test_random_verified(self, instance):
        verify_placement(
            instance, solve_random_baseline(instance, seed=33, trials=60)
        )

    def test_ordering_aa_above_random(self, instance):
        aa = SandwichApproximation(instance).solve()
        rnd = solve_random_baseline(instance, seed=34, trials=100)
        assert aa.sigma >= rnd.sigma


class TestGowallaPipeline:
    def test_full_pipeline(self):
        w = gowalla_workload(seed=41)
        instance = w.instance(0.27, m=30, k=4, seed=42)
        result = SandwichApproximation(instance).solve()
        verify_placement(instance, result)
        assert result.sigma > 0  # shortcuts must help on this workload

    def test_community_effect(self):
        """One shortcut edge should rescue multiple pairs at once on the
        venue-clustered network (paper §VII-D's observation)."""
        w = gowalla_workload(seed=41)
        instance = w.instance(0.27, m=30, k=1, seed=42)
        result = SandwichApproximation(instance).solve()
        assert result.sigma >= 2


class TestTacticalPipeline:
    def test_dynamic_pipeline_consistency(self):
        dyn = tactical_dynamic_instance(0.11, m=8, k=4, T=4, seed=51, n=30)
        result = dyn.solve_sandwich()
        per = dyn.sigma_per_topology(
            dyn.edges_to_index_pairs(result.edges)
        )
        assert sum(per) == result.sigma
        assert all(0 <= v <= 8 for v in per)

    def test_static_solution_weaker_than_dynamic(self):
        """Optimizing only for topology 0 must not beat optimizing the
        summed objective, measured on the summed objective."""
        dyn = tactical_dynamic_instance(0.11, m=8, k=4, T=4, seed=52, n=30)
        dynamic_result = dyn.solve_sandwich()
        static_result = SandwichApproximation(dyn.instances[0]).solve()
        static_edges = dyn.edges_to_index_pairs(static_result.edges)
        static_total = dyn.sigma_function().value(static_edges)
        assert dynamic_result.sigma >= static_total

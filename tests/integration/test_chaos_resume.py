"""Chaos test: SIGKILL a parallel ``run all`` campaign mid-flight, resume
it from the checkpoint directory, and require the final output to be
byte-identical to an uninterrupted serial run.

This is the end-to-end guarantee the whole robustness layer exists for:
atomic journal writes mean a kill at any instant leaves only complete
records; per-task determinism means the resumed remainder recomputes to
exactly what it would have been; task-order assembly means the combined
JSON cannot depend on which half ran before the kill.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.runner import experiment_names

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _run_cli(args, json_path):
    code = main(list(args) + ["--json", str(json_path)])
    assert code == 0
    return json_path.read_bytes()


@pytest.mark.slow
class TestKillAndResume:
    def test_killed_parallel_run_resumes_byte_identical(self, tmp_path):
        serial_json = tmp_path / "serial.json"
        serial_bytes = _run_cli(
            ["run", "all", "--scale", "quick", "--seed", "3"], serial_json
        )

        ckpt = tmp_path / "ckpt"
        victim_json = tmp_path / "victim.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "run", "all",
                "--scale", "quick", "--seed", "3", "--jobs", "4",
                "--resume", str(ckpt), "--json", str(victim_json),
            ],
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        total = len(experiment_names())
        # Kill once some — but not all — tasks are journaled. If the run
        # beats the poll to the finish line, that's fine: resume then just
        # restores everything, which still must be byte-identical.
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break
                done = len(list(ckpt.glob("task-*.json")))
                if 1 <= done < total:
                    victim.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            victim.wait(timeout=120)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

        completed = len(list(ckpt.glob("task-*.json")))
        assert 0 < completed <= total

        resumed_json = tmp_path / "resumed.json"
        resumed_bytes = _run_cli(
            [
                "run", "all", "--scale", "quick", "--seed", "3",
                "--jobs", "4", "--resume", str(ckpt),
            ],
            resumed_json,
        )
        assert resumed_bytes == serial_bytes
        # Every task is journaled now; a third invocation is restore-only.
        assert len(list(ckpt.glob("task-*.json"))) == total

    def test_journal_has_no_partial_files_after_kill(self, tmp_path):
        """Atomic writes: whatever the kill left behind parses cleanly."""
        import json

        ckpt = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "run", "all",
                "--scale", "quick", "--seed", "5", "--jobs", "4",
                "--resume", str(ckpt),
            ],
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break
                if len(list(ckpt.glob("task-*.json"))) >= 1:
                    victim.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            victim.wait(timeout=120)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

        records = sorted(ckpt.glob("task-*.json"))
        assert records  # the poll saw at least one before killing
        for path in records:
            record = json.loads(path.read_text(encoding="utf-8"))
            assert {"key", "payload"} <= set(record)

    @pytest.mark.skipif(
        not Path("/dev/shm").is_dir(), reason="no POSIX /dev/shm"
    )
    def test_sigkilled_run_leaks_no_shm_segments(self, tmp_path):
        """Hard-killing a parallel sweep while its shared-memory
        publication is live must leave /dev/shm clean: the resource
        tracker outlives the parent and unlinks the orphaned segments."""
        import glob

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        # `run all --jobs` publishes its warm-start workload arrays for
        # the whole campaign — a live-publication window that stays wide
        # open even as the solvers get faster (the robustness sweep this
        # test originally struck finishes in well under a second now).
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "run", "all",
                "--scale", "quick", "--seed", "7", "--jobs", "4",
                "--json", str(tmp_path / "all.json"),
            ],
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        pattern = f"/dev/shm/mscshm_{victim.pid}_*"
        saw_segments = False
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break
                if glob.glob(pattern):
                    saw_segments = True  # publication is live: strike
                    victim.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.01)
            victim.wait(timeout=120)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        assert saw_segments, (
            "run finished before the poll ever saw a live publication; "
            "the kill window was missed"
        )
        # Cleanup is asynchronous: the tracker unlinks once the orphaned
        # pool workers notice the dead parent and exit.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and glob.glob(pattern):
            time.sleep(0.05)
        assert glob.glob(pattern) == []

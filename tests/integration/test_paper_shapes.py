"""Medium-scale shape checks: the qualitative findings of §VII must hold on
reduced-size versions of the paper's own workloads.

These are the reproduction's acceptance tests — each asserts a *shape*
("who wins, what grows") rather than an absolute number.
"""

import pytest

from repro.core.aea import solve_aea
from repro.core.ea import solve_ea
from repro.core.random_baseline import solve_random_baseline
from repro.core.ratio import sandwich_ratio
from repro.core.sandwich import SandwichApproximation
from repro.experiments.workloads import gowalla_workload, rg_workload

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def rg():
    return rg_workload(seed=77, n=80)


@pytest.fixture(scope="module")
def rg_instance(rg):
    return rg.instance(0.1, m=30, k=6, seed=78)


class TestOrderings:
    def test_aa_beats_best_of_500_random(self, rg_instance):
        aa = SandwichApproximation(rg_instance).solve()
        rnd = solve_random_baseline(rg_instance, seed=79, trials=500)
        assert aa.sigma >= rnd.sigma

    def test_aea_competitive_with_aa(self, rg_instance):
        """Paper Fig. 3-4: AEA is in AA's ballpark at r in the hundreds
        (the exact ordering flips with the instance; AEA can sit in a
        1-swap local optimum a few pairs below greedy)."""
        aa = SandwichApproximation(rg_instance).solve()
        aea = solve_aea(rg_instance, seed=80, iterations=300)
        assert aea.sigma >= 0.8 * aa.sigma

    def test_ea_clearly_below_aea(self, rg_instance):
        ea = solve_ea(rg_instance, seed=81, iterations=300)
        aea = solve_aea(rg_instance, seed=81, iterations=300)
        assert aea.sigma >= ea.sigma


class TestGrowthShapes:
    def test_sigma_grows_with_k(self, rg):
        instance = rg.instance(0.1, m=30, k=8, seed=82)
        values = [
            SandwichApproximation(instance).solve(k=k).sigma
            for k in (1, 3, 5, 8)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_sigma_grows_with_p_t(self, rg):
        """A looser requirement (larger p_t) is easier to meet for the same
        pair count; compare on a shared pair set selected at the stricter
        threshold."""
        from repro.core.problem import MSCInstance

        strict = rg.instance(0.08, m=30, k=5, seed=83)
        loose = MSCInstance(
            rg.graph,
            strict.pairs,
            5,
            p_threshold=0.14,
            oracle=rg.oracle,
            require_initially_unsatisfied=False,
        )
        sigma_strict = SandwichApproximation(strict).solve().sigma
        sigma_loose = SandwichApproximation(loose).solve().sigma
        assert sigma_loose >= sigma_strict


class TestRatioShapes:
    def test_ratio_decreases_with_k_on_rg(self, rg):
        instance = rg.instance(0.1, m=15, k=10, seed=84)
        ratios = [
            sandwich_ratio(instance, k).ratio for k in (2, 6, 10)
        ]
        # Monotone within noise (paper Tables I/II show a consistent drop).
        assert ratios[0] >= ratios[-1] - 0.1

    def test_gowalla_ratio_often_higher_than_rg(self):
        """Paper Table II vs Table I: Gowalla's clustered structure makes ν
        tighter. Compare at each workload's native thresholds."""
        rg_w = rg_workload(seed=85, n=80)
        gw = gowalla_workload(seed=85)
        rg_ratio = sandwich_ratio(
            rg_w.instance(0.1, m=15, k=4, seed=86)
        ).ratio
        gw_ratio = sandwich_ratio(
            gw.instance(0.27, m=30, k=4, seed=86)
        ).ratio
        # Not a strict theorem; allow generous slack but catch regressions
        # where the Gowalla structure stops mattering at all.
        assert gw_ratio >= rg_ratio - 0.25


class TestCommunityEffect:
    def test_single_edge_rescues_bundles_on_gowalla(self):
        gw = gowalla_workload(seed=87)
        instance = gw.instance(0.27, m=40, k=2, seed=88)
        result = SandwichApproximation(instance).solve()
        assert result.sigma / max(len(result.edges), 1) >= 2

"""Tests for repro.types."""

from repro.types import PlacementResult, normalize_index_pair


class TestNormalizeIndexPair:
    def test_already_sorted(self):
        assert normalize_index_pair(1, 2) == (1, 2)

    def test_swaps(self):
        assert normalize_index_pair(5, 3) == (3, 5)

    def test_equal_indices_pass_through(self):
        assert normalize_index_pair(4, 4) == (4, 4)


class TestPlacementResult:
    def make(self, **overrides):
        defaults = dict(
            algorithm="x",
            edges=[(0, 1), (2, 3)],
            sigma=2,
            satisfied=[True, True, False],
        )
        defaults.update(overrides)
        return PlacementResult(**defaults)

    def test_num_edges(self):
        assert self.make().num_edges == 2

    def test_summary_mentions_counts(self):
        text = self.make().summary()
        assert "2/3" in text
        assert "2 shortcut edge(s)" in text
        assert text.startswith("x:")

    def test_defaults(self):
        result = self.make()
        assert result.evaluations == 0
        assert result.trace == []
        assert result.extras == {}

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            self.make().sigma = 5

    def test_independent_default_containers(self):
        a = self.make()
        b = self.make()
        a.trace.append(1)
        assert b.trace == []

"""Tests for the CLI's extended options (--charts, --seeds, report)."""

import json

import pytest

from repro.cli import build_parser, main


class TestChartsFlag:
    def test_parser_accepts_charts(self):
        args = build_parser().parse_args(
            ["run", "fig2", "--scale", "quick", "--charts"]
        )
        assert args.charts

    def test_charts_rendered(self, capsys):
        assert main(["run", "fig2", "--scale", "quick", "--charts"]) == 0
        out = capsys.readouterr().out
        assert "o=AA" in out  # chart legend marker

    def test_no_charts_by_default(self, capsys):
        assert main(["run", "fig2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "o=AA" not in out


class TestSeedsFlag:
    def test_parser_default_one(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.seeds == 1

    def test_multi_seed_aggregation(self, capsys):
        assert (
            main(
                ["run", "table1", "--scale", "quick", "--seeds", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean of 2 seeds" in out

    def test_non_aggregatable_falls_back(self, capsys):
        assert (
            main(["run", "fig1", "--scale", "quick", "--seeds", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "not aggregatable" in out
        assert "fig1 finished" in out

    def test_multi_seed_json_output(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert (
            main(
                [
                    "run", "table1", "--scale", "quick",
                    "--seeds", "2", "--json", str(target),
                ]
            )
            == 0
        )
        data = json.loads(target.read_text())
        assert data[0]["params"]["seeds"] == 2

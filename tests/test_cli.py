"""Tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "paper"
        assert args.seed == 1

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig3", "fig4", "--scale", "quick", "--seed", "9"]
        )
        assert args.experiments == ["fig3", "fig4"]
        assert args.scale == "quick"
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig1", "fig5"):
            assert name in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "finished in" in out

    def test_run_writes_json(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert (
            main(
                [
                    "run",
                    "table1",
                    "--scale",
                    "quick",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        data = json.loads(target.read_text())
        assert data[0]["name"] == "table1"

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "RG workload" in out and "Gowalla workload" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "fig99", "--scale", "quick"])


class TestFaultToleranceFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run", "all", "--resume", "ckpt", "--retries", "2",
                "--task-timeout", "30.5",
            ]
        )
        assert args.resume == "ckpt"
        assert args.retries == 2
        assert args.task_timeout == 30.5

    def test_flags_default_off(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.resume is None
        assert args.retries == 0
        assert args.task_timeout is None

    def test_resume_checkpoints_and_restores(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = main(
            [
                "run", "table1", "fig1", "--scale", "quick",
                "--resume", str(ckpt),
            ]
        )
        assert first == 0
        assert len(list(ckpt.glob("task-*.json"))) == 2
        capsys.readouterr()
        second = main(
            [
                "run", "table1", "fig1", "--scale", "quick",
                "--resume", str(ckpt),
            ]
        )
        out = capsys.readouterr().out
        assert second == 0
        assert "2 restored" in out

    def test_resume_output_matches_plain_run(self, capsys, tmp_path):
        plain_json = tmp_path / "plain.json"
        resumed_json = tmp_path / "resumed.json"
        main(
            [
                "run", "table1", "--scale", "quick",
                "--json", str(plain_json),
            ]
        )
        ckpt = tmp_path / "ckpt"
        main(
            [
                "run", "table1", "--scale", "quick",
                "--resume", str(ckpt), "--json", str(resumed_json),
            ]
        )
        capsys.readouterr()
        assert plain_json.read_bytes() == resumed_json.read_bytes()


class TestRobustnessCommand:
    def test_parses(self):
        args = build_parser().parse_args(
            ["robustness", "--scale", "quick", "--seed", "4", "--jobs", "2"]
        )
        assert args.command == "robustness"
        assert args.scale == "quick"
        assert args.seed == 4
        assert args.jobs == 2

    def test_runs_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "robustness.json"
        assert (
            main(
                [
                    "robustness", "--scale", "quick", "--seed", "3",
                    "--json", str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "robustness finished in" in out
        data = json.loads(target.read_text())
        assert data[0]["name"] == "robustness"
        assert data[0]["params"]["baseline_sigma"] >= 0

"""Tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "paper"
        assert args.seed == 1

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig3", "fig4", "--scale", "quick", "--seed", "9"]
        )
        assert args.experiments == ["fig3", "fig4"]
        assert args.scale == "quick"
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig1", "fig5"):
            assert name in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "finished in" in out

    def test_run_writes_json(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert (
            main(
                [
                    "run",
                    "table1",
                    "--scale",
                    "quick",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        data = json.loads(target.read_text())
        assert data[0]["name"] == "table1"

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "RG workload" in out and "Gowalla workload" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "fig99", "--scale", "quick"])

"""Tests for repro.netgen.gowalla — SNAP loaders and the synthetic
Austin-evening generator."""

import math

import pytest

from repro.exceptions import TraceFormatError
from repro.graph.metrics import graph_stats, is_connected
from repro.netgen.gowalla import (
    gowalla_network,
    load_gowalla_checkins,
    load_gowalla_friendships,
    synthesize_gowalla_austin,
)


class TestSnapLoaders:
    def test_checkins_format(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t30.2359091167\t-97.7951395833\t22847\n"
            "1\t2010-10-18T22:17:43Z\t30.2691029532\t-97.7493953705\t420315\n"
        )
        records = load_gowalla_checkins(path)
        assert len(records) == 2
        assert records[0].user == 0
        assert records[0].latitude == pytest.approx(30.2359091167)
        assert records[1].longitude == pytest.approx(-97.7493953705)
        assert records[0].timestamp > records[1].timestamp

    def test_checkins_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(
            "\n0\t2010-10-19T23:55:27Z\t30.0\t-97.0\t1\n\n"
        )
        assert len(load_gowalla_checkins(path)) == 1

    def test_checkins_wrong_field_count(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("0\t2010-10-19T23:55:27Z\t30.0\n")
        with pytest.raises(TraceFormatError, match="5 tab-separated"):
            load_gowalla_checkins(path)

    def test_checkins_bad_timestamp(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("0\tnot-a-date\t30.0\t-97.0\t1\n")
        with pytest.raises(TraceFormatError, match=":1:"):
            load_gowalla_checkins(path)

    def test_friendships_deduplicated_undirected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\t1\n1\t0\n2\t3\n3\t3\n")
        pairs = load_gowalla_friendships(path)
        assert pairs == [(0, 1), (2, 3)]  # self-loop dropped, dedup

    def test_friendships_bad_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(TraceFormatError, match="2 fields"):
            load_gowalla_friendships(path)


class TestSyntheticGenerator:
    def test_deterministic_for_seed(self):
        a = synthesize_gowalla_austin(seed=3)
        b = synthesize_gowalla_austin(seed=3)
        assert a.checkins == b.checkins
        assert a.friendships == b.friendships

    def test_user_count(self):
        data = synthesize_gowalla_austin(seed=1, n_users=100)
        assert len({c.user for c in data.checkins}) == 100

    def test_every_user_has_home_venue(self):
        data = synthesize_gowalla_austin(seed=1)
        users = {c.user for c in data.checkins}
        assert set(data.user_home_venue) == users

    def test_checkins_inside_window(self):
        data = synthesize_gowalla_austin(seed=2, window_seconds=1000.0)
        assert all(0 <= c.timestamp <= 1000.0 for c in data.checkins)

    def test_bridge_users_have_two_checkins(self):
        data = synthesize_gowalla_austin(seed=4, bridge_fraction=0.5)
        counts = {}
        for c in data.checkins:
            counts[c.user] = counts.get(c.user, 0) + 1
        assert any(v >= 2 for v in counts.values())

    def test_custom_venue_sizes(self):
        data = synthesize_gowalla_austin(
            seed=1, n_users=20, venue_sizes=[10, 6, 4]
        )
        assert len(data.venue_centers) == 3

    def test_venue_sizes_must_sum(self):
        with pytest.raises(TraceFormatError, match="sum"):
            synthesize_gowalla_austin(seed=1, n_users=20, venue_sizes=[5, 5])

    def test_venue_separation(self):
        data = synthesize_gowalla_austin(seed=5)
        centers = list(data.venue_centers.values())
        for i, (x1, y1) in enumerate(centers):
            for x2, y2 in centers[i + 1:]:
                assert math.hypot(x1 - x2, y1 - y2) >= 200.0


class TestGowallaNetwork:
    def test_paper_scale_and_connectivity(self):
        graph, positions = gowalla_network(seed=42)
        stats = graph_stats(graph)
        assert stats.nodes == 134            # paper: 134 users
        assert 1000 <= stats.edges <= 2600   # paper: 1886 edges
        assert is_connected(graph)
        assert set(positions) == set(graph.nodes)

    def test_custom_checkins_bypass_generator(self):
        from repro.netgen.checkins import CheckIn

        records = [
            CheckIn(user=1, timestamp=0, latitude=30.2672,
                    longitude=-97.7431),
            CheckIn(user=2, timestamp=0, latitude=30.2673,
                    longitude=-97.7431),
        ]
        graph, _ = gowalla_network(checkins=records)
        assert graph.number_of_nodes() == 2
        assert graph.has_edge(1, 2)

    def test_failure_probabilities_bounded(self):
        graph, _ = gowalla_network(seed=7, max_link_failure=0.2)
        for u, v, _length in graph.edges:
            assert graph.failure_probability(u, v) <= 0.2 + 1e-9

"""Tests for repro.netgen.general (ER / BA generators)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.graph.metrics import is_connected
from repro.netgen.general import barabasi_albert_network, erdos_renyi_network


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        a = erdos_renyi_network(30, 0.2, seed=1)
        b = erdos_renyi_network(30, 0.2, seed=1)
        assert sorted(a.edges) == sorted(b.edges)

    def test_edge_count_scales_with_probability(self):
        sparse = erdos_renyi_network(
            40, 0.05, seed=2, restrict_to_largest_component=False
        )
        dense = erdos_renyi_network(
            40, 0.5, seed=2, restrict_to_largest_component=False
        )
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_zero_probability_empty(self):
        g = erdos_renyi_network(
            10, 0.0, seed=3, restrict_to_largest_component=False
        )
        assert g.number_of_edges() == 0
        assert g.number_of_nodes() == 10

    def test_failure_range_respected(self):
        g = erdos_renyi_network(
            30, 0.3, failure_range=(0.2, 0.4), seed=4
        )
        for u, v, _l in g.edges:
            assert 0.2 <= g.failure_probability(u, v) <= 0.4 + 1e-9

    def test_largest_component_restriction(self):
        g = erdos_renyi_network(60, 0.05, seed=5)
        assert is_connected(g)

    def test_inverted_failure_range_rejected(self):
        with pytest.raises(ValidationError, match="exceeds"):
            erdos_renyi_network(10, 0.3, failure_range=(0.5, 0.1))

    def test_invalid_probability(self):
        with pytest.raises(Exception):
            erdos_renyi_network(10, 1.5)


class TestBarabasiAlbert:
    def test_always_connected(self):
        g = barabasi_albert_network(50, 2, seed=1)
        assert is_connected(g)
        assert g.number_of_nodes() == 50

    def test_edge_count_formula(self):
        """Core clique C(m+1, 2) plus m edges per remaining node."""
        n, m = 40, 3
        g = barabasi_albert_network(n, m, seed=2)
        expected = m * (m + 1) // 2 + (n - (m + 1)) * m
        assert g.number_of_edges() == expected

    def test_hub_formation(self):
        """Preferential attachment produces degree skew: the max degree
        should far exceed the attachment parameter."""
        g = barabasi_albert_network(100, 2, seed=3)
        degrees = sorted(g.degree(v) for v in g.nodes)
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_deterministic_for_seed(self):
        a = barabasi_albert_network(30, 2, seed=4)
        b = barabasi_albert_network(30, 2, seed=4)
        assert sorted(a.edges) == sorted(b.edges)

    def test_attachments_bound(self):
        with pytest.raises(ValidationError, match="must be <"):
            barabasi_albert_network(5, 5)

    def test_failure_range_respected(self):
        g = barabasi_albert_network(
            30, 2, failure_range=(0.3, 0.5), seed=5
        )
        for u, v, _l in g.edges:
            assert 0.3 <= g.failure_probability(u, v) <= 0.5 + 1e-9

    @given(
        n=st.integers(5, 40),
        m=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_connected_and_simple(self, n, m, seed):
        if m >= n:
            return
        g = barabasi_albert_network(n, m, seed=seed)
        assert is_connected(g)
        # simple graph: no duplicate edges (guaranteed by structure) and
        # every new node has exactly m distinct neighbors at creation.
        assert g.number_of_edges() <= n * (n - 1) // 2

"""Tests for repro.netgen.pairs (important-pair selection, §VII-A3)."""

import pytest

from repro.exceptions import InstanceError
from repro.failure.models import length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import WirelessGraph
from repro.netgen.pairs import (
    eligible_pairs,
    select_common_node_pairs,
    select_friend_pairs,
    select_important_pairs,
)
from tests.conftest import path_graph, star_graph


def long_path():
    """Path with edges of failure probability 0.1 each (9 edges)."""
    g = WirelessGraph()
    for i in range(9):
        g.add_edge(i, i + 1, failure_probability=0.1)
    return g


class TestEligiblePairs:
    def test_only_violating_pairs(self):
        g = long_path()
        pairs = eligible_pairs(g, p_threshold=0.25)
        # failure of a j-hop path is 1 - 0.9^j: > 0.25 iff j >= 3
        for u, w in pairs:
            assert abs(u - w) >= 3
        assert all(abs(u - w) <= 2 for u, w in set(
            ((a, b) for a in range(10) for b in range(a + 1, 10))
        ) - set(pairs))

    def test_threshold_zero_includes_everything_with_failure(self):
        g = long_path()
        pairs = eligible_pairs(g, p_threshold=0.0)
        assert len(pairs) == 45  # all pairs have failure > 0

    def test_max_failure_cap(self):
        g = long_path()
        capped = eligible_pairs(g, p_threshold=0.25, max_failure=0.5)
        # 1 - 0.9^j <= 0.5 iff j <= 6
        for u, w in capped:
            assert 3 <= abs(u - w) <= 6

    def test_disconnected_pairs_eligible_without_cap(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.01)
        g.add_nodes([2])
        pairs = eligible_pairs(g, p_threshold=0.5)
        assert (0, 2) in pairs and (1, 2) in pairs

    def test_disconnected_pairs_excluded_by_cap(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.01)
        g.add_nodes([2])
        pairs = eligible_pairs(g, p_threshold=0.5, max_failure=0.99)
        assert (0, 2) not in pairs

    def test_oracle_reuse(self):
        g = long_path()
        oracle = DistanceOracle(g)
        assert eligible_pairs(g, 0.25, oracle=oracle) == eligible_pairs(
            g, 0.25
        )


class TestSelectImportantPairs:
    def test_selection_size_and_validity(self):
        g = long_path()
        pairs = select_important_pairs(g, m=5, p_threshold=0.25, seed=1)
        assert len(pairs) == 5
        eligible = set(eligible_pairs(g, 0.25))
        assert all(tuple(sorted(p)) in eligible for p in pairs)

    def test_deterministic_for_seed(self):
        g = long_path()
        a = select_important_pairs(g, m=5, p_threshold=0.25, seed=2)
        b = select_important_pairs(g, m=5, p_threshold=0.25, seed=2)
        assert a == b

    def test_insufficient_pairs_raise(self):
        g = long_path()
        with pytest.raises(InstanceError, match="violate"):
            select_important_pairs(g, m=100, p_threshold=0.25, seed=1)

    def test_no_duplicates(self):
        g = long_path()
        pairs = select_important_pairs(g, m=10, p_threshold=0.25, seed=3)
        assert len(set(map(tuple, pairs))) == 10

    def test_invalid_m(self):
        g = long_path()
        with pytest.raises(Exception):
            select_important_pairs(g, m=0, p_threshold=0.25)


class TestSelectFriendPairs:
    def test_only_violating_friendships(self):
        g = long_path()
        friendships = [(0, 1), (0, 5), (2, 9), (3, 4)]
        pairs = select_friend_pairs(
            g, friendships, m=2, p_threshold=0.25, seed=1
        )
        # only (0,5) and (2,9) violate (>= 3 hops at p=0.1/hop)
        assert sorted(map(tuple, map(sorted, pairs))) == [(0, 5), (2, 9)]

    def test_insufficient_friendships_raise(self):
        g = long_path()
        with pytest.raises(InstanceError, match="friendships"):
            select_friend_pairs(
                g, [(0, 1)], m=1, p_threshold=0.25, seed=1
            )

    def test_unknown_and_self_friendships_ignored(self):
        g = long_path()
        friendships = [(0, 0), (0, 99), (1, 8)]
        pairs = select_friend_pairs(
            g, friendships, m=1, p_threshold=0.25, seed=1
        )
        assert pairs == [(1, 8)]

    def test_duplicate_friendships_deduplicated(self):
        g = long_path()
        friendships = [(0, 5), (5, 0), (0, 5)]
        pairs = select_friend_pairs(
            g, friendships, m=1, p_threshold=0.25, seed=1
        )
        assert len(pairs) == 1

    def test_deterministic(self):
        g = long_path()
        friendships = [(0, 5), (1, 7), (2, 9), (0, 9)]
        a = select_friend_pairs(g, friendships, 2, 0.25, seed=3)
        b = select_friend_pairs(g, friendships, 2, 0.25, seed=3)
        assert a == b

    def test_works_with_synthetic_gowalla(self):
        from repro.netgen.gowalla import (
            gowalla_network,
            synthesize_gowalla_austin,
        )

        data = synthesize_gowalla_austin(seed=42)
        graph, _ = gowalla_network(seed=42)
        pairs = select_friend_pairs(
            graph, data.friendships, m=20, p_threshold=0.27, seed=4
        )
        assert len(pairs) == 20


class TestSelectCommonNodePairs:
    def test_all_pairs_share_common(self):
        g = long_path()
        pairs = select_common_node_pairs(
            g, common=0, m=4, p_threshold=0.25, seed=1
        )
        assert len(pairs) == 4
        assert all(p[0] == 0 for p in pairs)

    def test_partners_violate_threshold(self):
        g = long_path()
        pairs = select_common_node_pairs(
            g, common=0, m=4, p_threshold=0.25, seed=1
        )
        oracle = DistanceOracle(g)
        for _, partner in pairs:
            p_fail = length_to_failure(oracle.distance(0, partner))
            assert p_fail > 0.25

    def test_insufficient_partners_raise(self):
        g = star_graph(3, length=0.01)
        with pytest.raises(InstanceError, match="partners"):
            select_common_node_pairs(
                g, common=0, m=2, p_threshold=0.5, seed=1
            )

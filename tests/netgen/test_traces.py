"""Tests for repro.netgen.traces (trace file I/O and failure injection)."""

import pytest

from repro.exceptions import TraceFormatError
from repro.netgen.tactical import TacticalConfig, generate_tactical_trace
from repro.netgen.traces import HEADER, load_trace, save_trace


@pytest.fixture
def trace():
    cfg = TacticalConfig(n_nodes=12, n_groups=3, snapshots=4)
    return generate_tactical_trace(cfg, seed=8)


class TestRoundTrip:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "op.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.times == trace.times
        assert loaded.groups == trace.groups
        for a, b in zip(loaded.positions, trace.positions):
            assert set(a) == set(b)
            for node in a:
                assert a[node] == pytest.approx(b[node])

    def test_creates_parent_dirs(self, trace, tmp_path):
        path = tmp_path / "nested" / "op.trace"
        save_trace(trace, path)
        assert path.exists()


class TestFailureInjection:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0,1,2.0,3.0,0\n")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(HEADER + "\n")
        with pytest.raises(TraceFormatError, match="no records"):
            load_trace(path)

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(HEADER + "\n0,1,2.0\n")
        with pytest.raises(TraceFormatError, match="5 fields"):
            load_trace(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(HEADER + "\n0,1,x,3.0,0\n")
        with pytest.raises(TraceFormatError, match=":2:"):
            load_trace(path)

    def test_node_changing_group(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            HEADER + "\n0,1,1.0,1.0,0\n1,1,2.0,2.0,1\n"
        )
        with pytest.raises(TraceFormatError, match="changes group"):
            load_trace(path)

    def test_inconsistent_node_set(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            HEADER
            + "\n0,1,1.0,1.0,0\n0,2,1.0,1.0,0\n1,1,2.0,2.0,0\n"
        )
        with pytest.raises(TraceFormatError, match="covers"):
            load_trace(path)

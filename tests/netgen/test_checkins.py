"""Tests for repro.netgen.checkins."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.failure.models import ConstantFailure
from repro.netgen.checkins import (
    CheckIn,
    filter_window,
    min_user_distance,
    project_to_meters,
    proximity_graph,
    user_locations,
)


def ci(user, t, lat, lon):
    return CheckIn(user=user, timestamp=t, latitude=lat, longitude=lon)


ORIGIN = (30.0, -97.0)


class TestProjection:
    def test_origin_maps_to_zero(self):
        assert project_to_meters(30.0, -97.0, ORIGIN) == (0.0, 0.0)

    def test_latitude_degree_scale(self):
        x, y = project_to_meters(30.01, -97.0, ORIGIN)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(1113.2, rel=1e-3)

    def test_longitude_scaled_by_cos_lat(self):
        x, _ = project_to_meters(30.0, -96.99, ORIGIN)
        assert x == pytest.approx(
            0.01 * 111_320.0 * math.cos(math.radians(30.0)), rel=1e-9
        )


class TestWindowAndGrouping:
    def test_filter_window(self):
        records = [ci(1, t, 30, -97) for t in (0, 5, 10, 15)]
        assert len(filter_window(records, 5, 10)) == 2
        assert len(filter_window(records, None, 5)) == 2
        assert len(filter_window(records, 10, None)) == 2

    def test_user_locations_groups(self):
        records = [ci(1, 0, 30, -97), ci(1, 1, 30.001, -97), ci(2, 0, 30, -97)]
        locations = user_locations(records, origin=ORIGIN)
        assert len(locations[1]) == 2
        assert len(locations[2]) == 1

    def test_empty_records(self):
        assert user_locations([]) == {}

    def test_min_user_distance(self):
        a = [(0.0, 0.0), (10.0, 0.0)]
        b = [(13.0, 4.0)]
        assert min_user_distance(a, b) == pytest.approx(5.0)


class TestProximityGraph:
    def test_connects_close_users(self):
        records = [
            ci(1, 0, 30.0, -97.0),
            ci(2, 0, 30.0005, -97.0),   # ~55 m away
            ci(3, 0, 30.01, -97.0),     # ~1.1 km away
        ]
        graph, positions = proximity_graph(
            records, 200.0, ConstantFailure(0.1), origin=ORIGIN
        )
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(1, 3)
        assert set(positions) == {1, 2, 3}

    def test_min_over_checkins_rule(self):
        """Two users connect if ANY pair of their check-ins is close."""
        records = [
            ci(1, 0, 30.0, -97.0),
            ci(1, 1, 30.05, -97.0),  # second check-in far away
            ci(2, 0, 30.0501, -97.0),  # close to user 1's second check-in
        ]
        graph, _ = proximity_graph(
            records, 200.0, ConstantFailure(0.1), origin=ORIGIN
        )
        assert graph.has_edge(1, 2)

    def test_window_filters_checkins(self):
        records = [
            ci(1, 100, 30.0, -97.0),
            ci(2, 100, 30.0002, -97.0),
            ci(3, 999, 30.0001, -97.0),  # outside window
        ]
        graph, _ = proximity_graph(
            records, 200.0, ConstantFailure(0.1),
            window=(0, 500), origin=ORIGIN,
        )
        assert graph.has_node(1) and graph.has_node(2)
        assert not graph.has_node(3)

    def test_empty_window_rejected(self):
        records = [ci(1, 100, 30.0, -97.0)]
        with pytest.raises(ValidationError, match="no check-ins"):
            proximity_graph(
                records, 200.0, ConstantFailure(0.1), window=(500, 600)
            )

    def test_invalid_radius(self):
        with pytest.raises(Exception):
            proximity_graph([ci(1, 0, 30, -97)], 0.0, ConstantFailure(0.1))

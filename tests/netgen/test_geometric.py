"""Tests for repro.netgen.geometric."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.failure.models import ConstantFailure
from repro.graph.metrics import is_connected
from repro.netgen.geometric import (
    GeometricNetwork,
    build_proximity_graph,
    random_geometric_network,
)


class TestBuildProximityGraph:
    def test_connects_within_radius_only(self):
        positions = {0: (0.0, 0.0), 1: (0.5, 0.0), 2: (2.0, 0.0)}
        g = build_proximity_graph(positions, 1.0, ConstantFailure(0.1))
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_radius_is_strict(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        g = build_proximity_graph(positions, 1.0, ConstantFailure(0.1))
        assert not g.has_edge(0, 1)

    def test_failure_model_applied(self):
        positions = {0: (0.0, 0.0), 1: (0.5, 0.0)}
        from repro.failure.models import DistanceProportionalFailure

        model = DistanceProportionalFailure(0.2)
        g = build_proximity_graph(positions, 1.0, model)
        assert g.failure_probability(0, 1) == pytest.approx(0.1)

    def test_all_nodes_present_even_isolated(self):
        positions = {0: (0.0, 0.0), 1: (9.0, 9.0)}
        g = build_proximity_graph(positions, 0.5, ConstantFailure(0.1))
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 0


class TestRandomGeometric:
    def test_deterministic_for_seed(self):
        a = random_geometric_network(40, 0.25, seed=5)
        b = random_geometric_network(40, 0.25, seed=5)
        assert a.positions == b.positions
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_seed_changes_layout(self):
        a = random_geometric_network(40, 0.25, seed=5)
        b = random_geometric_network(40, 0.25, seed=6)
        assert a.positions != b.positions

    def test_positions_in_unit_square(self):
        net = random_geometric_network(30, 0.3, seed=1)
        for x, y in net.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_largest_component_restriction(self):
        net = random_geometric_network(60, 0.15, seed=2)
        assert is_connected(net.graph)
        assert set(net.positions) == set(net.graph.nodes)

    def test_no_restriction_keeps_all_nodes(self):
        net = random_geometric_network(
            60, 0.15, seed=2, restrict_to_largest_component=False
        )
        assert net.graph.number_of_nodes() == 60

    def test_edge_lengths_match_failure_model(self):
        net = random_geometric_network(
            25, 0.3, max_link_failure=0.1, seed=3
        )
        for u, v, _length in net.graph.edges:
            dist = net.distance(u, v)
            assert dist < 0.3
            expected = 0.1 * dist / 0.3
            assert net.graph.failure_probability(u, v) == pytest.approx(
                expected, rel=1e-9
            )

    def test_radius_grows_connectivity(self):
        sparse = random_geometric_network(
            50, 0.1, seed=4, restrict_to_largest_component=False
        )
        dense = random_geometric_network(
            50, 0.4, seed=4, restrict_to_largest_component=False
        )
        assert dense.graph.number_of_edges() > sparse.graph.number_of_edges()

    def test_absurd_radius_rejected(self):
        with pytest.raises(ValidationError, match="unit-square diameter"):
            random_geometric_network(10, 2.0, seed=1)

    def test_invalid_n(self):
        with pytest.raises(Exception):
            random_geometric_network(0, 0.2, seed=1)

    def test_metadata_recorded(self):
        net = random_geometric_network(20, 0.3, seed=1)
        assert net.metadata["model"] == "random_geometric"
        assert net.metadata["requested_n"] == 20

    def test_distance_helper(self):
        net = GeometricNetwork(
            graph=random_geometric_network(5, 0.5, seed=1).graph,
            positions={0: (0.0, 0.0), 1: (3.0, 4.0)},
            radius=1.0,
        )
        assert net.distance(0, 1) == pytest.approx(5.0)

"""Tests for repro.netgen.tactical (RPGM trace generation)."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.netgen.tactical import (
    TacticalConfig,
    generate_tactical_trace,
    tactical_topology_series,
)


class TestConfig:
    def test_defaults_valid(self):
        TacticalConfig().validate()

    def test_more_groups_than_nodes_rejected(self):
        with pytest.raises(ValidationError, match="exceeds"):
            TacticalConfig(n_nodes=3, n_groups=7).validate()

    def test_invalid_counts(self):
        with pytest.raises(Exception):
            TacticalConfig(n_nodes=0).validate()
        with pytest.raises(Exception):
            TacticalConfig(snapshots=0).validate()


class TestTraceGeneration:
    def test_shape(self):
        cfg = TacticalConfig(n_nodes=20, n_groups=4, snapshots=5)
        trace = generate_tactical_trace(cfg, seed=1)
        assert trace.snapshots == 5
        assert trace.n_nodes == 20
        assert len(trace.positions) == 5
        assert all(len(frame) == 20 for frame in trace.positions)

    def test_deterministic_for_seed(self):
        cfg = TacticalConfig(n_nodes=15, snapshots=4)
        a = generate_tactical_trace(cfg, seed=9)
        b = generate_tactical_trace(cfg, seed=9)
        assert a.positions == b.positions

    def test_groups_round_robin(self):
        cfg = TacticalConfig(n_nodes=10, n_groups=3, snapshots=2)
        trace = generate_tactical_trace(cfg, seed=1)
        sizes = {}
        for g in trace.groups.values():
            sizes[g] = sizes.get(g, 0) + 1
        assert max(sizes.values()) - min(sizes.values()) <= 1

    def test_positions_inside_area(self):
        cfg = TacticalConfig(n_nodes=20, area_meters=500.0, snapshots=6)
        trace = generate_tactical_trace(cfg, seed=2)
        for frame in trace.positions:
            for x, y in frame.values():
                assert 0.0 <= x <= 500.0 and 0.0 <= y <= 500.0

    def test_members_stay_near_reference(self):
        """Group cohesion: nodes of one group stay within 2*member_radius
        of each other (both within member_radius of the reference)."""
        cfg = TacticalConfig(
            n_nodes=14, n_groups=2, member_radius=50.0, snapshots=8,
            area_meters=5000.0,
        )
        trace = generate_tactical_trace(cfg, seed=3)
        for frame in trace.positions:
            by_group = {}
            for node, pos in frame.items():
                by_group.setdefault(trace.groups[node], []).append(pos)
            for members in by_group.values():
                for x1, y1 in members:
                    for x2, y2 in members:
                        # Clipping at the area border can stretch this a bit.
                        assert math.hypot(x1 - x2, y1 - y2) <= 110.0

    def test_topology_changes_over_time(self):
        cfg = TacticalConfig(n_nodes=30, snapshots=10)
        trace = generate_tactical_trace(cfg, seed=4)
        assert trace.positions[0] != trace.positions[-1]


class TestTopologySeries:
    def test_shared_node_universe(self):
        cfg = TacticalConfig(n_nodes=20, snapshots=4)
        trace = generate_tactical_trace(cfg, seed=5)
        series = tactical_topology_series(trace, 250.0)
        assert len(series) == 4
        nodes = series[0].nodes
        assert all(g.nodes == nodes for g in series)

    def test_snapshot_subset(self):
        cfg = TacticalConfig(n_nodes=20, snapshots=6)
        trace = generate_tactical_trace(cfg, seed=5)
        series = tactical_topology_series(trace, 250.0, snapshots=[0, 3])
        assert len(series) == 2

    def test_bad_snapshot_index(self):
        cfg = TacticalConfig(n_nodes=10, snapshots=3)
        trace = generate_tactical_trace(cfg, seed=5)
        with pytest.raises(ValidationError, match="out of range"):
            tactical_topology_series(trace, 250.0, snapshots=[5])

    def test_larger_radius_denser_topologies(self):
        cfg = TacticalConfig(n_nodes=25, snapshots=3)
        trace = generate_tactical_trace(cfg, seed=6)
        sparse = tactical_topology_series(trace, 100.0)
        dense = tactical_topology_series(trace, 500.0)
        assert sum(g.number_of_edges() for g in dense) > sum(
            g.number_of_edges() for g in sparse
        )

    def test_failure_probability_bounded_by_model(self):
        cfg = TacticalConfig(n_nodes=15, snapshots=2)
        trace = generate_tactical_trace(cfg, seed=7)
        series = tactical_topology_series(
            trace, 300.0, max_link_failure=0.06
        )
        for g in series:
            for u, v, _length in g.edges:
                assert g.failure_probability(u, v) <= 0.06 + 1e-9

"""Tests for repro.io (instance/placement persistence)."""

import pytest

from repro.core.problem import MSCInstance
from repro.core.sandwich import SandwichApproximation
from repro.exceptions import ValidationError
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    load_instance,
    load_placement,
    save_instance,
    save_placement,
)
from repro.util.serialization import dump_json, load_json
from tests.conftest import path_graph


class TestGraphRoundTrip:
    def test_roundtrip_preserves_structure(self):
        g = path_graph([0.5, 1.5, 2.5])
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.nodes == g.nodes
        assert sorted(restored.edges) == sorted(g.edges)

    def test_failure_probabilities_survive(self):
        g = path_graph([0.7])
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.failure_probability(0, 1) == pytest.approx(
            g.failure_probability(0, 1)
        )

    def test_string_nodes(self):
        from repro.graph.graph import WirelessGraph

        g = WirelessGraph()
        g.add_edge("hq", "squad-1", length=1.0)
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.has_edge("hq", "squad-1")

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValidationError, match="malformed"):
            graph_from_dict({"nodes": [1]})

    def test_bad_edge_entry_rejected(self):
        with pytest.raises(ValidationError, match="length"):
            graph_from_dict({"nodes": [0, 1], "edges": [[0, 1]]})


class TestInstanceRoundTrip:
    def test_roundtrip(self, tiny_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(tiny_instance, path)
        restored = load_instance(path)
        assert restored.pairs == tiny_instance.pairs
        assert restored.k == tiny_instance.k
        assert restored.d_threshold == pytest.approx(
            tiny_instance.d_threshold
        )
        assert restored.n == tiny_instance.n

    def test_solvable_after_roundtrip(self, tiny_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(tiny_instance, path)
        restored = load_instance(path)
        original = SandwichApproximation(tiny_instance).solve()
        reloaded = SandwichApproximation(restored).solve()
        assert reloaded.sigma == original.sigma

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        dump_json({"format": "something-else"}, path)
        with pytest.raises(ValidationError, match="not a repro-instance"):
            load_instance(path)

    def test_wrong_version_rejected(self, tiny_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(tiny_instance, path)
        data = load_json(path)
        data["version"] = 99
        dump_json(data, path)
        with pytest.raises(ValidationError, match="version"):
            load_instance(path)


class TestPlacementRoundTrip:
    def test_roundtrip(self, tiny_instance, tmp_path):
        result = SandwichApproximation(tiny_instance).solve()
        path = tmp_path / "placement.json"
        save_placement(result, path)
        restored = load_placement(path)
        assert restored.algorithm == result.algorithm
        assert restored.sigma == result.sigma
        assert [tuple(e) for e in restored.edges] == [
            tuple(e) for e in result.edges
        ]
        assert restored.satisfied == result.satisfied

    def test_unserializable_extras_marked(self, tmp_path):
        from repro.types import PlacementResult

        result = PlacementResult(
            algorithm="x",
            edges=[],
            sigma=0,
            satisfied=[],
            extras={"fn": lambda: None, "ok": 3},
        )
        path = tmp_path / "placement.json"
        save_placement(result, path)
        restored = load_placement(path)
        assert restored.extras["ok"] == 3
        assert "unserializable" in restored.extras["fn"]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        dump_json({"format": "repro-instance"}, path)
        with pytest.raises(ValidationError, match="not a repro-placement"):
            load_placement(path)

"""Tests for repro.core.lazy_greedy (CELF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import MuFunction, NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.lazy_greedy import lazy_greedy_placement
from repro.exceptions import SolverError
from tests.core.helpers import random_instance


class TestAgainstPlainGreedy:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_nu_values_match_plain_greedy(self, seed):
        """On submodular ν, CELF must achieve exactly the plain greedy
        value (selection may differ on ties)."""
        instance = random_instance(seed)
        nu = NuFunction(instance)
        plain = greedy_placement(nu, instance.k)
        lazy, _evals = lazy_greedy_placement(nu, instance.k)
        assert nu.value(lazy) == pytest.approx(nu.value(plain))

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_mu_values_match_plain_greedy(self, seed):
        instance = random_instance(seed)
        mu = MuFunction(instance)
        plain = greedy_placement(mu, instance.k)
        lazy, _evals = lazy_greedy_placement(mu, instance.k)
        assert mu.value(lazy) == pytest.approx(float(mu.value(plain)))

    def test_budget_respected(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        lazy, _ = lazy_greedy_placement(nu, 1)
        assert len(lazy) <= 1


class TestLaziness:
    def test_reevaluates_fewer_than_full_scans(self, tiny_instance):
        """CELF's point evaluations must undercut k full candidate scans
        (the whole point of laziness)."""
        nu = NuFunction(tiny_instance)
        n = tiny_instance.n
        full_scan_equivalent = (1 + tiny_instance.k) * n * (n - 1) // 2
        _placement, evaluations = lazy_greedy_placement(
            nu, tiny_instance.k
        )
        assert evaluations < full_scan_equivalent

    def test_candidate_restriction(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        placement, _ = lazy_greedy_placement(
            nu, 2, candidates=[(0, 4), (1, 3)]
        )
        assert set(placement) <= {(0, 4), (1, 3)}


class TestGuards:
    def test_nonsubmodular_rejected_by_default(self, tiny_instance):
        sigma = SigmaEvaluator(tiny_instance)
        with pytest.raises(SolverError, match="submodular"):
            lazy_greedy_placement(sigma, 2)

    def test_override_allows_heuristic_use(self, tiny_instance):
        sigma = SigmaEvaluator(tiny_instance)
        placement, _ = lazy_greedy_placement(
            sigma, 2, assume_submodular=True
        )
        assert sigma.value(placement) >= 1

    def test_invalid_budget(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        with pytest.raises(Exception):
            lazy_greedy_placement(nu, -1)

    def test_zero_budget_places_nothing(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        assert lazy_greedy_placement(nu, 0) == ([], 0)

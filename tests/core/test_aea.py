"""Tests for repro.core.aea (Algorithm 2)."""

import pytest

from repro.core.aea import AdaptiveEvolutionaryAlgorithm, solve_aea
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph


class TestSolve:
    def test_result_fields(self, tiny_instance):
        result = solve_aea(tiny_instance, seed=1, iterations=30)
        assert result.algorithm == "aea"
        assert 0 <= result.sigma <= tiny_instance.m
        assert len(result.edges) == tiny_instance.k  # always feasible, =k
        assert len(result.trace) == 31  # initial + per-iteration

    def test_deterministic_for_seed(self, tiny_instance):
        a = solve_aea(tiny_instance, seed=5, iterations=40)
        b = solve_aea(tiny_instance, seed=5, iterations=40)
        assert a.edges == b.edges
        assert a.trace == b.trace

    def test_trace_monotone_nondecreasing(self, tiny_instance):
        result = solve_aea(tiny_instance, seed=2, iterations=60)
        assert all(a <= b for a, b in zip(result.trace, result.trace[1:]))

    def test_sigma_matches_reported_edges(self, tiny_instance):
        result = solve_aea(tiny_instance, seed=3, iterations=40)
        evaluator = SigmaEvaluator(tiny_instance)
        edges = [
            tuple(sorted((
                tiny_instance.graph.node_index(u),
                tiny_instance.graph.node_index(v),
            )))
            for u, v in result.edges
        ]
        assert evaluator.value(edges) == result.sigma

    def test_greedy_swaps_solve_easy_instance_fast(self, tiny_instance):
        """With δ=0 every step is a greedy swap; a couple of iterations must
        reach the optimum on the path instance."""
        result = solve_aea(
            tiny_instance, seed=7, iterations=5, delta=0.0
        )
        assert result.sigma == tiny_instance.m

    def test_pure_random_still_valid(self, tiny_instance):
        result = solve_aea(
            tiny_instance, seed=7, iterations=20, delta=1.0
        )
        assert 0 <= result.sigma <= tiny_instance.m

    def test_pool_size_respected(self, tiny_instance):
        result = solve_aea(
            tiny_instance, seed=9, iterations=50, pool_size=3
        )
        assert result.extras["pool_size"] <= 3

    def test_all_pool_members_feasible(self, tiny_instance):
        aea = AdaptiveEvolutionaryAlgorithm(
            tiny_instance, iterations=30, seed=11
        )
        result = aea.solve()
        assert len(result.edges) == tiny_instance.k

    def test_more_iterations_never_hurt(self, tiny_instance):
        short = solve_aea(tiny_instance, seed=13, iterations=5)
        long = solve_aea(tiny_instance, seed=13, iterations=60)
        assert long.sigma >= short.sigma


class TestWarmStart:
    def test_initial_edges_seed_the_pool(self, tiny_instance):
        result = solve_aea(
            tiny_instance, seed=1, iterations=1,
            initial_edges=[(0, 4), (1, 3)],
        )
        # (0,4) satisfies everything; one iteration cannot lose it.
        assert result.sigma == tiny_instance.m

    def test_short_warm_start_topped_up(self, tiny_instance):
        result = solve_aea(
            tiny_instance, seed=1, iterations=2, initial_edges=[(0, 4)]
        )
        assert len(result.edges) == tiny_instance.k

    def test_duplicate_initial_edges_rejected(self, tiny_instance):
        from repro.core.aea import AdaptiveEvolutionaryAlgorithm

        with pytest.raises(SolverError, match="duplicates"):
            AdaptiveEvolutionaryAlgorithm(
                tiny_instance, iterations=1,
                initial_edges=[(0, 4), (4, 0)], seed=1,
            )

    def test_oversized_warm_start_rejected(self, tiny_instance):
        from repro.core.aea import AdaptiveEvolutionaryAlgorithm

        with pytest.raises(SolverError, match="exceed the budget"):
            AdaptiveEvolutionaryAlgorithm(
                tiny_instance, iterations=1,
                initial_edges=[(0, 1), (0, 2), (0, 3)], seed=1,
            )

    def test_warmstart_never_below_aa(self, tiny_instance):
        from repro.core.aea import solve_aea_warmstart
        from repro.core.sandwich import SandwichApproximation

        aa = SandwichApproximation(tiny_instance).solve()
        for seed in (1, 2, 3):
            warm = solve_aea_warmstart(
                tiny_instance, seed=seed, iterations=10
            )
            assert warm.sigma >= aa.sigma
            assert warm.algorithm == "aea+warm"
            assert warm.extras["warm_start_sigma"] == aa.sigma

    def test_warmstart_registered(self, tiny_instance):
        from repro.core.registry import solve

        result = solve("aea+warm", tiny_instance, seed=1, iterations=5)
        assert result.algorithm == "aea+warm"


class TestValidation:
    def test_budget_exceeding_universe_rejected(self):
        g = path_graph([1.0, 1.0])  # 3 nodes -> 3 possible edges
        inst = MSCInstance(g, [(0, 2)], k=3, d_threshold=1.5)
        # k=3 equals the universe, fine:
        solve_aea(inst, seed=1, iterations=3)
        inst4 = MSCInstance(g, [(0, 2)], k=4, d_threshold=1.5)
        with pytest.raises(SolverError, match="exceeds"):
            AdaptiveEvolutionaryAlgorithm(inst4, iterations=3, seed=1)

    def test_invalid_delta(self, tiny_instance):
        with pytest.raises(Exception):
            AdaptiveEvolutionaryAlgorithm(
                tiny_instance, iterations=3, delta=1.5
            )

    def test_invalid_pool_size(self, tiny_instance):
        with pytest.raises(Exception):
            AdaptiveEvolutionaryAlgorithm(
                tiny_instance, iterations=3, pool_size=0
            )


class TestSwaps:
    def test_random_placement_has_exactly_k_distinct(self, tiny_instance):
        aea = AdaptiveEvolutionaryAlgorithm(
            tiny_instance, iterations=1, seed=17
        )
        placement = aea._random_placement(2)
        assert len(placement) == 2
        assert len(set(placement)) == 2
        assert all(a < b for a, b in placement)

    def test_greedy_swap_keeps_cardinality(self, tiny_instance):
        aea = AdaptiveEvolutionaryAlgorithm(
            tiny_instance, iterations=1, seed=19
        )
        edges = aea._random_placement(2)
        new_edges, value, _ = aea._greedy_swap(edges)
        assert len(new_edges) == 2

    def test_greedy_swap_never_decreases_value(self, tiny_instance):
        """Greedy swap removes the least useful edge and re-adds the best
        one — it can re-add the removed edge, so σ never drops."""
        aea = AdaptiveEvolutionaryAlgorithm(
            tiny_instance, iterations=1, seed=23
        )
        evaluator = aea.sigma
        edges = aea._random_placement(2)
        before = evaluator.value(edges)
        _, after, _ = aea._greedy_swap(edges)
        assert after >= before

    def test_random_swap_keeps_cardinality(self, tiny_instance):
        aea = AdaptiveEvolutionaryAlgorithm(
            tiny_instance, iterations=1, seed=29
        )
        edges = aea._random_placement(2)
        new_edges, _, _ = aea._random_swap(edges)
        assert len(new_edges) == 2
        assert all(a < b for a, b in new_edges)

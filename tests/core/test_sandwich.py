"""Tests for repro.core.sandwich (the Approximation Algorithm)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SigmaEvaluator
from repro.core.exact import solve_exact
from repro.core.greedy import greedy_placement
from repro.core.sandwich import APPROX_FACTOR, SandwichApproximation, solve_sandwich
from tests.core.helpers import random_instance


class TestSolve:
    def test_result_fields(self, tiny_instance):
        result = SandwichApproximation(tiny_instance).solve()
        assert result.algorithm == "sandwich"
        assert result.sigma == sum(result.satisfied)
        assert len(result.edges) <= tiny_instance.k
        assert result.extras["winner"] in ("mu", "sigma", "nu")
        assert 0.0 <= result.extras["ratio"] <= 1.0 + 1e-9

    def test_full_satisfaction_on_easy_instance(self, tiny_instance):
        result = SandwichApproximation(tiny_instance).solve()
        assert result.sigma == tiny_instance.m

    def test_explicit_budget_overrides_instance(self, tiny_instance):
        result = SandwichApproximation(tiny_instance).solve(k=1)
        assert len(result.edges) <= 1

    def test_winner_is_best_of_three(self, tiny_instance):
        result = SandwichApproximation(tiny_instance).solve()
        assert result.sigma == max(
            result.extras["sigma_mu"],
            result.extras["sigma_sigma"],
            result.extras["sigma_nu"],
        )

    def test_at_least_as_good_as_sigma_greedy(self, tiny_instance):
        sigma = SigmaEvaluator(tiny_instance)
        greedy_sigma = sigma.value(
            greedy_placement(sigma, tiny_instance.k)
        )
        result = SandwichApproximation(tiny_instance).solve()
        assert result.sigma >= greedy_sigma

    def test_registry_wrapper(self, tiny_instance):
        result = solve_sandwich(tiny_instance, seed=123)
        assert result.algorithm == "sandwich"

    def test_guarantee_factor_consistent(self, tiny_instance):
        result = SandwichApproximation(tiny_instance).solve()
        assert result.extras["guarantee_factor"] == pytest.approx(
            result.extras["ratio"] * APPROX_FACTOR
        )


class TestDataDependentRatio:
    def test_ratio_between_zero_and_one(self, tiny_instance):
        aa = SandwichApproximation(tiny_instance)
        assert 0.0 <= aa.data_dependent_ratio() <= 1.0 + 1e-9

    def test_degenerate_ratio_is_one(self, triangle_instance):
        """Three isolated nodes: nothing coverable, ν(F_ν) may be 0."""
        aa = SandwichApproximation(triangle_instance)
        ratio = aa.data_dependent_ratio()
        assert 0.0 <= ratio <= 1.0 + 1e-9


class TestGuaranteeAgainstExact:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=12, deadline=None)
    def test_eq5_bound_holds(self, seed):
        """The practical Eq. (5) bound:
        σ(F_app) >= (σ(F_ν)/ν(F_ν)) · (1 - 1/e) · σ(F*)."""
        instance = random_instance(seed, n_range=(4, 8), k=2, max_pairs=4)
        aa = SandwichApproximation(instance)
        result = aa.solve()
        ratio = result.extras["ratio"]
        optimum = solve_exact(instance).sigma
        assert result.sigma >= ratio * APPROX_FACTOR * optimum - 1e-9

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=12, deadline=None)
    def test_never_exceeds_exact(self, seed):
        instance = random_instance(seed, n_range=(4, 8), k=2, max_pairs=4)
        result = SandwichApproximation(instance).solve()
        assert result.sigma <= solve_exact(instance).sigma

"""Shared helpers for core-algorithm tests: random instance generation and a
brute-force σ reference."""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Sequence, Tuple

import networkx as nx

from repro.core.problem import MSCInstance
from repro.types import IndexPair
from tests.conftest import random_graph


def random_instance(
    seed: int,
    *,
    n_range: Tuple[int, int] = (4, 12),
    edge_prob: float = 0.35,
    k: int = 3,
    max_pairs: int = 6,
) -> MSCInstance:
    """A random MSC instance for property tests.

    Pairs are chosen among pairs violating the threshold, which is picked
    relative to the graph's distance distribution so instances are
    non-trivial. Falls back to relaxed constraints when the random graph is
    too dense/sparse.
    """
    rng = random.Random(seed)
    for _attempt in range(50):
        n = rng.randrange(*n_range)
        graph = random_graph(n, edge_prob, rng)
        finite = [
            d
            for i in range(n)
            for j in range(i + 1, n)
            if not math.isinf(
                d := _pair_distance(graph, i, j)
            )
        ]
        if not finite:
            continue
        threshold = sorted(finite)[len(finite) // 3]
        violating = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if _pair_distance(graph, i, j) > threshold + 1e-9
        ]
        if len(violating) < 2:
            continue
        m = min(max_pairs, len(violating))
        pairs = rng.sample(violating, m)
        return MSCInstance(
            graph,
            pairs,
            k,
            d_threshold=threshold,
            require_initially_unsatisfied=True,
        )
    raise AssertionError(f"could not build a random instance for seed {seed}")


def _pair_distance(graph, i, j) -> float:
    try:
        return nx.shortest_path_length(
            graph.to_networkx(), i, j, weight="length"
        )
    except nx.NetworkXNoPath:
        return math.inf


def brute_force_sigma(
    instance: MSCInstance, edges: Sequence[IndexPair]
) -> int:
    """Reference σ: count pairs within threshold on the augmented graph,
    computed entirely with networkx."""
    nxg = instance.graph.to_networkx()
    for a, b in edges:
        u = instance.graph.index_node(a)
        v = instance.graph.index_node(b)
        if nxg.has_edge(u, v):
            nxg[u][v]["length"] = 0.0
        else:
            nxg.add_edge(u, v, length=0.0)
    count = 0
    tol = 1e-9
    for u, w in instance.pairs:
        try:
            d = nx.shortest_path_length(nxg, u, w, weight="length")
        except nx.NetworkXNoPath:
            continue
        if d <= instance.d_threshold + tol:
            count += 1
    return count


def all_candidate_edges(n: int) -> List[IndexPair]:
    return [(a, b) for a, b in itertools.combinations(range(n), 2)]

"""Tests for the Substrate / PlacementRequest split (repro.core.substrate).

The headline property: for **every** registered solver, solving through the
new ``(Substrate, PlacementRequest)`` API returns exactly the same placement
as the classic ``MSCInstance`` API on fig1-family workloads — the split is a
pure refactor of how instances are assembled, never of what they compute.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core.problem import MSCInstance
from repro.core.registry import solve, solve_request, solver_names
from repro.core.substrate import (
    EngineCache,
    PlacementRequest,
    Substrate,
    default_engine_cache_size,
)
from repro.exceptions import InstanceError, ReproError, SolverError
from repro.experiments.workloads import rg_workload
from repro.graph.distances import DistanceOracle
from repro.netgen.pairs import select_important_pairs

from ..conftest import path_graph

P_T = 0.1  # the fig1-family threshold (see experiments/figures.py)


def _fig1_workload(n=40, seed=3):
    return rg_workload(seed=seed, n=n, radius=0.3)


def _common_node_pairs(workload, count=3):
    """Pairs sharing one endpoint, all violating the fig1 threshold
    (what the MSC-CN solvers require)."""
    graph, oracle = workload.graph, workload.oracle
    d_t = -math.log(1.0 - P_T)
    for center in graph.nodes:
        c = graph.node_index(center)
        partners = [
            other
            for other in graph.nodes
            if other != center
            and oracle.distance_by_index(c, graph.node_index(other)) > d_t
        ]
        if len(partners) >= count:
            return [(center, other) for other in partners[:count]]
    raise AssertionError("workload has no common-node pair family")


def _solver_fixture(name):
    """(workload, pairs, k) sized so even the exact solvers finish fast."""
    if name in ("msc_cn", "msc_cn_exact"):
        workload = _fig1_workload(n=20)
        return workload, _common_node_pairs(workload), 2
    if name in ("exact",):
        workload = _fig1_workload(n=20)
        pairs = select_important_pairs(
            workload.graph, 4, P_T, seed=5, oracle=workload.oracle
        )
        return workload, pairs, 1
    workload = _fig1_workload(n=40)
    pairs = select_important_pairs(
        workload.graph, 6, P_T, seed=5, oracle=workload.oracle
    )
    return workload, pairs, 2


class TestSolverEquivalence:
    @pytest.mark.parametrize("name", solver_names())
    def test_substrate_request_equals_instance(self, name):
        workload, pairs, k = _solver_fixture(name)
        # Classic API: graph + pairs, oracle resolved per instance.
        legacy = MSCInstance(
            workload.graph, pairs, k,
            p_threshold=P_T, oracle=workload.oracle,
        )
        via_legacy = solve(name, legacy, seed=11)
        # New API: shared substrate + per-request spec.
        substrate = workload.substrate()
        request = PlacementRequest(pairs, k, p_threshold=P_T)
        via_split = solve_request(name, substrate, request, seed=11)
        assert via_split.edges == via_legacy.edges
        assert via_split.sigma == via_legacy.sigma
        assert via_split.satisfied == via_legacy.satisfied
        assert via_split.algorithm == via_legacy.algorithm

    def test_solve_accepts_substrate_with_request_kwarg(self):
        workload, pairs, k = _solver_fixture("sandwich")
        request = PlacementRequest(pairs, k, p_threshold=P_T)
        result = solve(
            "sandwich", workload.substrate(), request=request, seed=11
        )
        assert result == solve_request(
            "sandwich", workload.substrate(), request, seed=11
        )

    def test_solve_substrate_without_request_raises(self):
        workload = _fig1_workload()
        with pytest.raises(SolverError, match="request"):
            solve("sandwich", workload.substrate())


class TestPlacementRequest:
    def test_requires_exactly_one_threshold(self):
        with pytest.raises(InstanceError):
            PlacementRequest([(0, 1)], 1)
        with pytest.raises(InstanceError):
            PlacementRequest(
                [(0, 1)], 1, p_threshold=0.5, d_threshold=1.0
            )

    def test_p_threshold_round_trip(self):
        request = PlacementRequest([(0, 1)], 1, p_threshold=0.5)
        assert request.d_threshold == pytest.approx(-math.log(0.5))
        assert request.p_threshold == pytest.approx(0.5)

    def test_k_must_be_positive_unless_degenerate(self):
        with pytest.raises(ReproError):
            PlacementRequest([(0, 1)], 0, d_threshold=1.0)
        degenerate = PlacementRequest(
            [(0, 1)], 0, d_threshold=1.0, allow_degenerate=True
        )
        assert degenerate.k == 0

    def test_empty_pairs_rejected_unless_degenerate(self):
        with pytest.raises(InstanceError):
            PlacementRequest([], 1, d_threshold=1.0)
        assert PlacementRequest(
            [], 1, d_threshold=1.0, allow_degenerate=True
        ).m == 0

    def test_hashable_and_equal_by_content(self):
        a = PlacementRequest([(0, 1), (2, 3)], 2, d_threshold=1.5)
        b = PlacementRequest([(0, 1), (2, 3)], 2, d_threshold=1.5)
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_the_knobs(self):
        text = PlacementRequest([(0, 1)], 3, d_threshold=1.5).describe()
        assert "k=3" in text and "m=1" in text


class TestSubstrate:
    def test_fingerprint_stable_across_builds(self):
        a = _fig1_workload().substrate()
        b = _fig1_workload().substrate()
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_differs_across_workloads(self):
        a = _fig1_workload(seed=3).substrate()
        b = _fig1_workload(seed=4).substrate()
        assert a != b
        assert a.fingerprint != b.fingerprint

    def test_oracle_must_belong_to_graph(self):
        one = path_graph([1.0, 1.0])
        other = path_graph([1.0, 1.0])
        with pytest.raises(InstanceError):
            Substrate(one, DistanceOracle(other))

    def test_build_resolves_oracle_policy(self):
        graph = path_graph([1.0] * 4)
        substrate = Substrate.build(graph, oracle="dense")
        assert substrate.oracle_kind == "dense"

    def test_instance_round_trip(self):
        workload, pairs, k = _solver_fixture("sandwich")
        substrate = workload.substrate()
        request = PlacementRequest(pairs, k, p_threshold=P_T)
        instance = substrate.instance(request)
        assert instance.substrate is substrate
        assert instance.request is request
        assert instance.pairs == list(pairs)
        assert instance.k == k

    def test_stats_shape(self):
        stats = _fig1_workload().substrate().stats()
        assert {"fingerprint", "n", "oracle", "engine_cache"} <= set(stats)


class TestEngineCacheSharing:
    def test_instances_of_one_workload_share_the_cache(self):
        workload = _fig1_workload()
        a = workload.instance(P_T, m=4, k=2, seed=1)
        b = workload.instance(P_T, m=4, k=2, seed=2)
        assert a.substrate is b.substrate
        assert (
            a.substrate.engine_cache is b.substrate.engine_cache
        )

    def test_default_size_gates_small_instances(self):
        assert default_engine_cache_size(10) == 0
        assert default_engine_cache_size(10_000) > 0

    def test_cache_stats_counters(self):
        workload = _fig1_workload()
        cache = EngineCache(workload.oracle, 8)
        cache.get(frozenset({(0, 1)}))
        cache.get(frozenset({(0, 1)}))
        stats = cache.stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        assert stats["maxsize"] == 8


class TestFacadeShim:
    def test_classic_constructor_emits_no_deprecation_warning(self):
        graph = path_graph([1.0] * 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            instance = MSCInstance(
                graph, [(0, 4)], 1, d_threshold=1.5
            )
        assert instance.m == 1

    def test_facade_exposes_substrate_and_request(self):
        graph = path_graph([1.0] * 4)
        instance = MSCInstance(graph, [(0, 4)], 1, d_threshold=1.5)
        assert isinstance(instance.substrate, Substrate)
        assert isinstance(instance.request, PlacementRequest)
        assert instance.graph is instance.substrate.graph
        assert instance.oracle is instance.substrate.oracle
        assert instance.k == instance.request.k
        assert instance.d_threshold == instance.request.d_threshold

    def test_from_parts_enforces_pair_validation(self):
        graph = path_graph([1.0] * 4)
        substrate = Substrate.build(graph)
        with pytest.raises(InstanceError):
            MSCInstance.from_parts(
                substrate,
                PlacementRequest([(0, 99)], 1, d_threshold=1.5),
            )

    def test_from_parts_enforces_initially_unsatisfied(self):
        graph = path_graph([1.0] * 4)
        substrate = Substrate.build(graph)
        with pytest.raises(InstanceError):
            # (0, 1) is already within the threshold.
            MSCInstance.from_parts(
                substrate,
                PlacementRequest([(0, 1)], 1, d_threshold=1.5),
            )
        relaxed = MSCInstance.from_parts(
            substrate,
            PlacementRequest(
                [(0, 1)], 1, d_threshold=1.5,
                require_initially_unsatisfied=False,
            ),
        )
        assert relaxed.m == 1

    def test_legacy_import_locations_still_work(self):
        from repro import PlacementRequest as top_level_request
        from repro import Substrate as top_level_substrate
        from repro.core.evaluator import EngineCache as legacy_cache

        assert top_level_request is PlacementRequest
        assert top_level_substrate is Substrate
        assert legacy_cache is EngineCache

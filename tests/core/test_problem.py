"""Tests for repro.core.problem (MSCInstance)."""

import math

import pytest

from repro.core.problem import MSCInstance
from repro.exceptions import InstanceError
from repro.graph.distances import DistanceOracle
from tests.conftest import path_graph, star_graph


class TestConstruction:
    def test_threshold_conversion(self):
        g = path_graph([1.0] * 3)
        inst = MSCInstance(g, [(0, 3)], k=1, p_threshold=0.5)
        assert inst.d_threshold == pytest.approx(math.log(2))
        assert inst.p_threshold == pytest.approx(0.5)

    def test_d_threshold_direct(self):
        g = path_graph([1.0] * 3)
        inst = MSCInstance(g, [(0, 3)], k=1, d_threshold=1.5)
        assert inst.p_threshold == pytest.approx(1 - math.exp(-1.5))

    def test_both_thresholds_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(InstanceError, match="exactly one"):
            MSCInstance(
                g, [(0, 1)], k=1, p_threshold=0.5, d_threshold=1.0
            )

    def test_neither_threshold_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(InstanceError, match="exactly one"):
            MSCInstance(g, [(0, 1)], k=1)

    def test_self_pair_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(InstanceError, match="self-pair"):
            MSCInstance(g, [(0, 0)], k=1, d_threshold=0.5)

    def test_unknown_node_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(InstanceError, match="unknown node"):
            MSCInstance(g, [(0, 9)], k=1, d_threshold=0.5)

    def test_empty_pairs_rejected(self):
        g = path_graph([1.0])
        with pytest.raises(InstanceError, match="at least one"):
            MSCInstance(g, [], k=1, d_threshold=0.5)

    def test_invalid_budget_rejected(self):
        g = path_graph([1.0, 1.0])
        with pytest.raises(Exception):
            MSCInstance(g, [(0, 2)], k=0, d_threshold=1.5)

    def test_initially_satisfied_pair_rejected_by_default(self):
        g = path_graph([1.0, 1.0])
        with pytest.raises(InstanceError, match="already meets"):
            MSCInstance(g, [(0, 1)], k=1, d_threshold=1.5)

    def test_initially_satisfied_pair_allowed_when_opted_in(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g,
            [(0, 1)],
            k=1,
            d_threshold=1.5,
            require_initially_unsatisfied=False,
        )
        assert inst.m == 1

    def test_duplicate_pairs_counted_separately(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(g, [(0, 2), (0, 2)], k=1, d_threshold=1.5)
        assert inst.m == 2

    def test_foreign_oracle_rejected(self):
        g = path_graph([1.0, 1.0])
        other = path_graph([1.0])
        with pytest.raises(InstanceError, match="different graph"):
            MSCInstance(
                g,
                [(0, 2)],
                k=1,
                d_threshold=1.5,
                oracle=DistanceOracle(other),
            )

    def test_shared_oracle_reused(self):
        g = path_graph([1.0, 1.0])
        oracle = DistanceOracle(g)
        inst = MSCInstance(g, [(0, 2)], k=1, d_threshold=1.5, oracle=oracle)
        assert inst.oracle is oracle


class TestAccessors:
    def test_m_and_n(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(0, 4), (1, 4)], k=1, d_threshold=2.5)
        assert inst.m == 2
        assert inst.n == 5

    def test_pair_indices_normalized(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(4, 0)], k=1, d_threshold=2.5)
        assert inst.pair_indices == [(0, 4)]

    def test_pair_nodes_deduplicated_in_order(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(
            g, [(0, 4), (0, 3)], k=1, d_threshold=2.5
        )
        assert inst.pair_nodes() == [0, 4, 3]

    def test_index_pair_to_nodes(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(0, 4)], k=1, d_threshold=2.5)
        assert inst.index_pair_to_nodes((0, 4)) == (0, 4)
        assert inst.edges_to_nodes([(0, 4)]) == [(0, 4)]

    def test_describe(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(0, 4)], k=2, d_threshold=2.5)
        text = inst.describe()
        assert "m=1" in text and "k=2" in text


class TestCommonNode:
    def test_detects_common_node(self):
        g = star_graph(4, length=1.0)
        inst = MSCInstance(
            g, [(1, 0), (0, 2), (0, 3)], k=1, d_threshold=0.5,
            require_initially_unsatisfied=False,
        )
        assert inst.common_node() == 0

    def test_no_common_node(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(
            g, [(0, 4), (1, 3)], k=1, d_threshold=2.5,
            require_initially_unsatisfied=False,
        )
        assert inst.common_node() is None

    def test_single_pair_returns_first_endpoint(self):
        g = path_graph([1.0] * 3)
        inst = MSCInstance(g, [(0, 3)], k=1, d_threshold=2.5)
        assert inst.common_node() == 0

"""Tests for solve_msc_cn_exact (Theorem 1-based exact MSC-CN solver)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import solve_exact
from repro.core.msc_cn import solve_msc_cn, solve_msc_cn_exact
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph, star_graph


def cn_instance(k=2, d=1.5):
    g = star_graph(5, length=2.0)
    for leaf in range(1, 6):
        relay = 10 + leaf
        g.add_edge(0, relay, length=1.0)
        g.add_edge(relay, leaf, length=1.0)
    pairs = [(0, leaf) for leaf in range(1, 6)]
    return MSCInstance(g, pairs, k, d_threshold=d)


class TestExactCn:
    def test_matches_general_exact(self):
        """Theorem 1: restricting to edges incident to the common node does
        not lose optimality."""
        inst = cn_instance(k=2)
        cn_exact = solve_msc_cn_exact(inst)
        general = solve_exact(inst)
        assert cn_exact.sigma == general.sigma

    def test_at_least_greedy(self):
        inst = cn_instance(k=2)
        assert (
            solve_msc_cn_exact(inst).sigma >= solve_msc_cn(inst).sigma
        )

    def test_edges_incident_to_common(self):
        inst = cn_instance(k=2)
        result = solve_msc_cn_exact(inst)
        assert all(0 in edge for edge in result.edges)

    def test_work_limit(self):
        inst = cn_instance(k=3)
        with pytest.raises(SolverError, match="work_limit"):
            solve_msc_cn_exact(inst, work_limit=10)

    def test_no_common_node_rejected(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(
            g, [(0, 4), (1, 3)], k=1, d_threshold=2.5,
            require_initially_unsatisfied=False,
        )
        with pytest.raises(SolverError, match="no common node"):
            solve_msc_cn_exact(inst)

    def test_satisfied_flags_consistent(self):
        inst = cn_instance(k=2)
        result = solve_msc_cn_exact(inst)
        assert sum(result.satisfied) == result.sigma

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_random_common_node_instances(self, seed):
        """CN-exact equals general exact on random common-node instances."""
        import random

        from repro.graph.distances import DistanceOracle
        from tests.conftest import random_graph

        rng = random.Random(seed)
        g = random_graph(7, 0.4, rng)
        oracle = DistanceOracle(g)
        row = oracle.row(0)
        partners = [v for v in range(1, 7) if row[v] > 1.0]
        if len(partners) < 2:
            return
        inst = MSCInstance(
            g,
            [(0, v) for v in partners],
            k=2,
            d_threshold=1.0,
            oracle=oracle,
        )
        assert (
            solve_msc_cn_exact(inst).sigma == solve_exact(inst).sigma
        )

"""Cross-cutting invariants of the core machinery, property-tested."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.problem import MSCInstance
from repro.graph.graph import WirelessGraph
from tests.conftest import path_graph
from tests.core.helpers import random_instance


class TestGreedyPrefixConsistency:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_larger_budget_extends_smaller(self, seed):
        """Greedy is prefix-consistent: the k-budget placement is a prefix
        of the (k+1)-budget placement (ties broken deterministically)."""
        instance = random_instance(seed)
        nu = NuFunction(instance)
        small = greedy_placement(nu, 2)
        large = greedy_placement(nu, 3)
        assert large[: len(small)] == small

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_greedy_deterministic(self, seed):
        instance = random_instance(seed)
        sigma = SigmaEvaluator(instance)
        assert greedy_placement(sigma, instance.k) == greedy_placement(
            sigma, instance.k
        )


class TestDisconnectedInstances:
    def test_cross_component_pair_rescued_by_shortcut(self):
        """A pair split across components is rescuable: a shortcut
        bridging the components creates the only path."""
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.2)
        g.add_edge(2, 3, length=0.2)
        inst = MSCInstance(g, [(0, 3)], k=1, d_threshold=0.5)
        sigma = SigmaEvaluator(inst)
        assert sigma.value([]) == 0
        assert sigma.value([(1, 2)]) == 1  # 0-1 ~shortcut~ 2-3: 0.4 <= 0.5
        assert sigma.value([(0, 3)]) == 1

    def test_greedy_finds_bridging_edge(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.2)
        g.add_edge(2, 3, length=0.2)
        inst = MSCInstance(
            g, [(0, 3), (1, 2), (0, 2)], k=1, d_threshold=0.5
        )
        sigma = SigmaEvaluator(inst)
        placed = greedy_placement(sigma, 1)
        assert sigma.value(placed) == 3  # (1,2) rescues all three

    def test_nu_covers_across_components(self):
        g = WirelessGraph()
        g.add_edge(0, 1, length=0.2)
        g.add_edge(2, 3, length=0.2)
        inst = MSCInstance(g, [(0, 3)], k=1, d_threshold=0.5)
        nu = NuFunction(inst)
        # endpoints 1 and 2 are within 0.5 of 0 and 3 respectively
        assert nu.value([(1, 2)]) == pytest.approx(1.0)


class TestDuplicatePairs:
    def test_duplicates_count_twice_in_sigma(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g, [(0, 2), (0, 2)], k=1, d_threshold=1.5
        )
        sigma = SigmaEvaluator(inst)
        assert sigma.value([(0, 2)]) == 2

    def test_duplicates_weight_nu_nodes(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g, [(0, 2), (0, 2)], k=1, d_threshold=1.5
        )
        nu = NuFunction(inst)
        weights = dict(zip(nu.pair_nodes, nu.weights))
        assert weights[0] == 1.0  # appears twice -> weight 2/2


class TestEvaluatorConsistency:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_value_equals_sum_of_satisfied(self, seed):
        instance = random_instance(seed)
        sigma = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xC0DE)
        edges = []
        for _ in range(rng.randrange(0, 4)):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
        assert sigma.value(edges) == sum(sigma.satisfied(edges))

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_duplicate_edges_in_f_are_harmless(self, seed):
        """Passing the same shortcut edge twice must not change σ."""
        instance = random_instance(seed)
        sigma = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xD1CE)
        a, b = sorted(rng.sample(range(instance.n), 2))
        assert sigma.value([(a, b)]) == sigma.value([(a, b), (a, b)])

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_edge_order_irrelevant(self, seed):
        instance = random_instance(seed)
        sigma = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xFACE)
        edges = []
        for _ in range(3):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
        shuffled = list(edges)
        rng.shuffle(shuffled)
        assert sigma.value(edges) == sigma.value(shuffled)

"""Degenerate-instance behavior: every registered solver must return a
well-formed PlacementResult on disconnected graphs, pairs already within
d_t, a zero budget, and an empty pair set (the shapes fault injection
produces), instead of crashing."""

import pytest

from repro.core.problem import MSCInstance
from repro.core.registry import solver_names, solve
from repro.exceptions import InstanceError, ValidationError
from repro.types import PlacementResult
from tests.conftest import path_graph, star_graph

#: Cheap parameters per solver so the full matrix stays fast.
FAST_PARAMS = {
    "ea": {"iterations": 5},
    "aea": {"iterations": 5},
    "aea+warm": {"iterations": 5},
    "random": {"trials": 5},
}


def _solve(name, instance):
    return solve(name, instance, seed=1, **FAST_PARAMS.get(name, {}))


def _star_pairs(n_leaves):
    """Center-to-leaf pairs: every pair shares node 0, so even the MSC-CN
    solvers accept the instance."""
    return [(0, leaf) for leaf in range(1, n_leaves + 1)]


@pytest.fixture
def disconnected_instance():
    """Star plus an isolated node; one pair is unreachable forever."""
    graph = star_graph(3, length=2.0)
    graph.add_node("island")
    pairs = _star_pairs(3) + [(0, "island")]
    return MSCInstance(
        graph, pairs, 2, d_threshold=1.0,
        require_initially_unsatisfied=False,
    )


@pytest.fixture
def zero_budget_instance():
    graph = star_graph(3, length=2.0)
    return MSCInstance(
        graph, _star_pairs(3), 0, d_threshold=1.0,
        require_initially_unsatisfied=False,
        allow_degenerate=True,
    )


@pytest.fixture
def empty_pairs_instance():
    graph = star_graph(3, length=2.0)
    return MSCInstance(
        graph, [], 2, d_threshold=1.0, allow_degenerate=True
    )


@pytest.fixture
def already_satisfied_instance():
    graph = star_graph(3, length=0.2)
    return MSCInstance(
        graph, _star_pairs(3), 2, d_threshold=1.0,
        require_initially_unsatisfied=False,
    )


class TestAllowDegenerateFlag:
    def test_defaults_stay_strict(self):
        graph = star_graph(3, length=2.0)
        with pytest.raises(ValidationError):
            MSCInstance(graph, _star_pairs(3), 0, d_threshold=1.0)
        with pytest.raises(InstanceError):
            MSCInstance(graph, [], 2, d_threshold=1.0)

    def test_flag_admits_k_zero_and_empty_pairs(self):
        graph = star_graph(3, length=2.0)
        inst = MSCInstance(
            graph, [], 0, d_threshold=1.0, allow_degenerate=True
        )
        assert inst.k == 0
        assert inst.m == 0
        assert inst.common_node() is None
        assert inst.pair_nodes() == []

    def test_flag_still_rejects_negative_budget(self):
        graph = star_graph(3, length=2.0)
        with pytest.raises(Exception):
            MSCInstance(
                graph, [], -1, d_threshold=1.0, allow_degenerate=True
            )


@pytest.mark.parametrize("name", sorted(solver_names()))
class TestSolversOnDegenerateInstances:
    def _check_well_formed(self, result, instance):
        assert isinstance(result, PlacementResult)
        assert len(result.edges) <= instance.k
        assert 0 <= result.sigma <= instance.m
        assert len(result.satisfied) in (0, instance.m)
        assert result.sigma == sum(result.satisfied) or not result.satisfied

    def test_disconnected_graph(self, name, disconnected_instance):
        result = _solve(name, disconnected_instance)
        self._check_well_formed(result, disconnected_instance)
        # The island pair can never be satisfied by shortcut placement on
        # reachable candidates... but a shortcut straight to the island can
        # rescue it, so only the range is asserted.
        assert result.sigma <= disconnected_instance.m

    def test_zero_budget(self, name, zero_budget_instance):
        result = _solve(name, zero_budget_instance)
        self._check_well_formed(result, zero_budget_instance)
        assert result.edges == []
        assert result.sigma == 0  # all pairs start unsatisfied

    def test_empty_pairs(self, name, empty_pairs_instance):
        result = _solve(name, empty_pairs_instance)
        assert isinstance(result, PlacementResult)
        assert result.sigma == 0
        assert result.satisfied == []

    def test_pairs_already_within_threshold(
        self, name, already_satisfied_instance
    ):
        result = _solve(name, already_satisfied_instance)
        self._check_well_formed(result, already_satisfied_instance)
        assert result.sigma == already_satisfied_instance.m


class TestPrimitivesAcceptZeroBudget:
    def test_greedy_placement_k_zero(self, tiny_instance):
        from repro.core.evaluator import SigmaEvaluator
        from repro.core.greedy import greedy_placement

        assert greedy_placement(SigmaEvaluator(tiny_instance), 0) == []

    def test_lazy_greedy_k_zero(self, tiny_instance):
        from repro.core.bounds import MuFunction
        from repro.core.lazy_greedy import lazy_greedy_placement

        placed, evaluations = lazy_greedy_placement(
            MuFunction(tiny_instance), 0
        )
        assert placed == []
        assert evaluations == 0

    def test_greedy_max_coverage_k_zero(self):
        import numpy as np

        from repro.core.coverage import greedy_max_coverage

        result = greedy_max_coverage(
            np.ones((3, 4), dtype=bool), 0
        )
        assert result.selected == []
        assert result.weight == 0.0

"""Tests for repro.core.evaluator (σ) — exactness against brute force and
internal consistency of the vectorized candidate scan."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from tests.conftest import path_graph
from tests.core.helpers import (
    all_candidate_edges,
    brute_force_sigma,
    random_instance,
)


class TestValue:
    def test_empty_set_counts_base(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.value([]) == 0
        assert evaluator.base_sigma == 0

    def test_direct_shortcut_satisfies_pair(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        # (0, 4) shortcut collapses the whole path for pair (0, 4); with
        # d_t = 1.5 pairs (0,3) and (1,4) are one unit hop away from it.
        assert evaluator.value([(0, 4)]) == 3

    def test_monotone_in_edges(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.value([(0, 3)]) <= evaluator.value(
            [(0, 3), (1, 4)]
        )

    def test_satisfied_flags_align_with_pairs(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        flags = evaluator.satisfied([(0, 4)])
        assert flags == [True, True, True]
        assert evaluator.satisfied([]) == [False, False, False]

    def test_max_value(self, tiny_instance):
        assert SigmaEvaluator(tiny_instance).max_value() == 3.0

    def test_num_pairs_and_n(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.num_pairs == 3
        assert evaluator.n == 5

    def test_base_satisfied_pairs_counted(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g,
            [(0, 1), (0, 2)],
            k=1,
            d_threshold=1.5,
            require_initially_unsatisfied=False,
        )
        evaluator = SigmaEvaluator(inst)
        assert evaluator.value([]) == 1  # (0,1) already satisfied
        assert evaluator.base_sigma == 1

    def test_triangle_counterexample_values(self, triangle_instance):
        """Paper §V-A: σ(∅)=0, σ({f12})=1, σ({f12,f23})=3."""
        evaluator = SigmaEvaluator(triangle_instance)
        assert evaluator.value([]) == 0
        assert evaluator.value([(0, 1)]) == 1
        assert evaluator.value([(0, 1), (1, 2)]) == 3


class TestAddCandidates:
    def test_matches_pointwise_value(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        for existing in ([], [(0, 4)], [(1, 3)]):
            scores = evaluator.add_candidates(existing)
            for a, b in all_candidate_edges(tiny_instance.n):
                expected = evaluator.value(list(existing) + [(a, b)])
                assert scores[a, b] == expected, (existing, a, b)

    def test_symmetry(self, tiny_instance):
        scores = SigmaEvaluator(tiny_instance).add_candidates([])
        assert np.array_equal(scores, scores.T)

    def test_diagonal_is_current_value(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        scores = evaluator.add_candidates([(0, 4)])
        assert np.all(np.diag(scores) == evaluator.value([(0, 4)]))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_match_pointwise(self, seed):
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed)
        existing = []
        for _ in range(rng.randrange(0, 3)):
            a, b = sorted(rng.sample(range(instance.n), 2))
            existing.append((a, b))
        scores = evaluator.add_candidates(existing)
        # Spot-check a handful of candidates against point evaluation.
        for _ in range(10):
            a, b = sorted(rng.sample(range(instance.n), 2))
            assert scores[a, b] == evaluator.value(existing + [(a, b)])


class TestAgainstBruteForce:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_value_matches_networkx(self, seed):
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xBEEF)
        edges = []
        for _ in range(rng.randrange(0, 4)):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
        assert evaluator.value(edges) == brute_force_sigma(instance, edges)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_monotonicity_property(self, seed):
        """σ is monotone: adding an edge never loses satisfied pairs."""
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xF00D)
        edges = []
        prev = evaluator.value(edges)
        for _ in range(4):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
            cur = evaluator.value(edges)
            assert cur >= prev
            prev = cur


class TestPrunedScan:
    """The pruned, chunked scatter-add scan must match the dense per-pair
    masks cell for cell (both are exact)."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pruned_matches_dense(self, seed):
        import repro.core.evaluator as ev

        instance = random_instance(seed)
        old = ev.PRUNED_SCAN_MIN_N
        ev.PRUNED_SCAN_MIN_N = 0  # instances here are below the cutover
        try:
            fast = SigmaEvaluator(instance)
            assert fast._use_pruned_scan()
            legacy = SigmaEvaluator(instance, pruned=False)
            rng = random.Random(seed ^ 0xCAFE)
            edges = []
            for _ in range(rng.randrange(0, 3)):
                edges.append(
                    tuple(sorted(rng.sample(range(instance.n), 2)))
                )
            assert np.array_equal(
                fast.add_candidates(edges), legacy.add_candidates(edges)
            )
        finally:
            ev.PRUNED_SCAN_MIN_N = old

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_pruned_matches_brute_force(self, seed):
        """Every candidate's score equals brute-force σ(F ∪ {(a, b)})."""
        import repro.core.evaluator as ev

        instance = random_instance(seed, max_pairs=4)
        old = ev.PRUNED_SCAN_MIN_N
        ev.PRUNED_SCAN_MIN_N = 0
        try:
            evaluator = SigmaEvaluator(instance)
            assert evaluator._use_pruned_scan()
            rng = random.Random(seed ^ 0xD1CE)
            edges = []
            for _ in range(rng.randrange(0, 2)):
                edges.append(
                    tuple(sorted(rng.sample(range(instance.n), 2)))
                )
            scores = evaluator.add_candidates(edges)
            for a, b in all_candidate_edges(instance.n):
                assert scores[a, b] == brute_force_sigma(
                    instance, edges + [(a, b)]
                )
        finally:
            ev.PRUNED_SCAN_MIN_N = old

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_tiny_chunks_match(self, seed):
        """A pathologically small chunk budget (many flushes) changes
        nothing but peak memory."""
        import repro.core.evaluator as ev

        instance = random_instance(seed)
        old = ev.PRUNED_SCAN_MIN_N
        ev.PRUNED_SCAN_MIN_N = 0
        try:
            chunked = SigmaEvaluator(instance, chunk_elements=3)
            default = SigmaEvaluator(instance)
            assert np.array_equal(
                chunked.add_candidates([]), default.add_candidates([])
            )
        finally:
            ev.PRUNED_SCAN_MIN_N = old


class TestPairScanAccumulator:
    @given(
        n=st.integers(1, 30),
        n_pairs=st.integers(0, 6),
        limit=st.floats(0.1, 4.0),
        seed=st.integers(0, 10_000),
        chunk=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_reference(
        self, n, n_pairs, limit, seed, chunk
    ):
        from repro.core.evaluator import PairScanAccumulator

        rng = np.random.default_rng(seed)
        scan = PairScanAccumulator(n, chunk_elements=chunk)
        dense = np.zeros((n, n), dtype=np.int32)
        for _ in range(n_pairs):
            du = rng.uniform(0.0, 5.0, size=n)
            dw = rng.uniform(0.0, 5.0, size=n)
            scan.add_pair(du, dw, limit)
            mask = (du[:, None] + dw[None, :]) <= limit
            dense += mask | mask.T
        assert np.array_equal(scan.result(), dense)

    @given(
        n=st.integers(1, 20),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_matches_dense_reference(self, n, seed):
        from repro.core.evaluator import PairScanAccumulator

        rng = np.random.default_rng(seed)
        limit = 2.0
        scan = PairScanAccumulator(n, weighted=True, chunk_elements=17)
        dense = np.zeros((n, n), dtype=float)
        for weight in (0.5, 2.0, 0.25):
            du = rng.uniform(0.0, 5.0, size=n)
            dw = rng.uniform(0.0, 5.0, size=n)
            scan.add_pair(du, dw, limit, weight=weight)
            mask = (du[:, None] + dw[None, :]) <= limit
            dense += (mask | mask.T) * weight
        assert scan.result() == pytest.approx(dense, abs=1e-12)


class TestEngineCache:
    def test_repeat_lookup_hits(self, tiny_instance):
        from repro.core.evaluator import EngineCache

        cache = EngineCache(tiny_instance.oracle, maxsize=8)
        cache.get([(0, 2)])
        cache.get([(0, 2)])
        cache.get([(2, 0)])  # normalized to the same key
        assert cache.builds == 1
        assert cache.hits == 2

    def test_superset_extends_cached_parent(self, tiny_instance):
        from repro.core.evaluator import EngineCache

        cache = EngineCache(tiny_instance.oracle, maxsize=8)
        cache.get([(0, 2)])
        cache.get([(0, 2), (1, 3)])
        assert cache.builds == 1
        assert cache.extensions == 1

    def test_scratch_mode_never_stores(self, tiny_instance):
        from repro.core.evaluator import EngineCache

        cache = EngineCache(tiny_instance.oracle, maxsize=0)
        cache.get([(0, 2)])
        cache.get([(0, 2)])
        assert cache.builds == 2
        assert cache.hits == 0 and cache.extensions == 0

    def test_lru_eviction_bounds_size(self, tiny_instance):
        from repro.core.evaluator import EngineCache

        cache = EngineCache(tiny_instance.oracle, maxsize=2)
        cache.get([(0, 2)])
        cache.get([(1, 3)])
        cache.get([(2, 4)])
        assert len(cache._store) == 2

    def test_cached_values_are_correct(self, tiny_instance):
        """Engine reuse must not change σ: compare against a cache-free
        evaluator on a growing set (the greedy pattern)."""
        with_cache = SigmaEvaluator(tiny_instance, engine_cache_size=128)
        without = SigmaEvaluator(tiny_instance, engine_cache_size=0)
        edges = []
        for edge in [(0, 4), (1, 3), (0, 3)]:
            edges.append(edge)
            assert with_cache.value(edges) == without.value(edges)
        assert with_cache.engine_cache.extensions >= 1

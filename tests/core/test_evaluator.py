"""Tests for repro.core.evaluator (σ) — exactness against brute force and
internal consistency of the vectorized candidate scan."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from tests.conftest import path_graph
from tests.core.helpers import (
    all_candidate_edges,
    brute_force_sigma,
    random_instance,
)


class TestValue:
    def test_empty_set_counts_base(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.value([]) == 0
        assert evaluator.base_sigma == 0

    def test_direct_shortcut_satisfies_pair(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        # (0, 4) shortcut collapses the whole path for pair (0, 4); with
        # d_t = 1.5 pairs (0,3) and (1,4) are one unit hop away from it.
        assert evaluator.value([(0, 4)]) == 3

    def test_monotone_in_edges(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.value([(0, 3)]) <= evaluator.value(
            [(0, 3), (1, 4)]
        )

    def test_satisfied_flags_align_with_pairs(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        flags = evaluator.satisfied([(0, 4)])
        assert flags == [True, True, True]
        assert evaluator.satisfied([]) == [False, False, False]

    def test_max_value(self, tiny_instance):
        assert SigmaEvaluator(tiny_instance).max_value() == 3.0

    def test_num_pairs_and_n(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        assert evaluator.num_pairs == 3
        assert evaluator.n == 5

    def test_base_satisfied_pairs_counted(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g,
            [(0, 1), (0, 2)],
            k=1,
            d_threshold=1.5,
            require_initially_unsatisfied=False,
        )
        evaluator = SigmaEvaluator(inst)
        assert evaluator.value([]) == 1  # (0,1) already satisfied
        assert evaluator.base_sigma == 1

    def test_triangle_counterexample_values(self, triangle_instance):
        """Paper §V-A: σ(∅)=0, σ({f12})=1, σ({f12,f23})=3."""
        evaluator = SigmaEvaluator(triangle_instance)
        assert evaluator.value([]) == 0
        assert evaluator.value([(0, 1)]) == 1
        assert evaluator.value([(0, 1), (1, 2)]) == 3


class TestAddCandidates:
    def test_matches_pointwise_value(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        for existing in ([], [(0, 4)], [(1, 3)]):
            scores = evaluator.add_candidates(existing)
            for a, b in all_candidate_edges(tiny_instance.n):
                expected = evaluator.value(list(existing) + [(a, b)])
                assert scores[a, b] == expected, (existing, a, b)

    def test_symmetry(self, tiny_instance):
        scores = SigmaEvaluator(tiny_instance).add_candidates([])
        assert np.array_equal(scores, scores.T)

    def test_diagonal_is_current_value(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        scores = evaluator.add_candidates([(0, 4)])
        assert np.all(np.diag(scores) == evaluator.value([(0, 4)]))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_match_pointwise(self, seed):
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed)
        existing = []
        for _ in range(rng.randrange(0, 3)):
            a, b = sorted(rng.sample(range(instance.n), 2))
            existing.append((a, b))
        scores = evaluator.add_candidates(existing)
        # Spot-check a handful of candidates against point evaluation.
        for _ in range(10):
            a, b = sorted(rng.sample(range(instance.n), 2))
            assert scores[a, b] == evaluator.value(existing + [(a, b)])


class TestAgainstBruteForce:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_value_matches_networkx(self, seed):
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xBEEF)
        edges = []
        for _ in range(rng.randrange(0, 4)):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
        assert evaluator.value(edges) == brute_force_sigma(instance, edges)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_monotonicity_property(self, seed):
        """σ is monotone: adding an edge never loses satisfied pairs."""
        instance = random_instance(seed)
        evaluator = SigmaEvaluator(instance)
        rng = random.Random(seed ^ 0xF00D)
        edges = []
        prev = evaluator.value(edges)
        for _ in range(4):
            a, b = sorted(rng.sample(range(instance.n), 2))
            edges.append((a, b))
            cur = evaluator.value(edges)
            assert cur >= prev
            prev = cur

"""Tests for repro.core.setfunction (protocol + sum combinator)."""

import numpy as np
import pytest

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.core.setfunction import (
    SetFunctionProtocol,
    SumSetFunction,
    canonical_edges,
)
from tests.conftest import path_graph


class TestCanonicalEdges:
    def test_sorts_pairs(self):
        assert canonical_edges([(3, 1), (0, 2)]) == [(1, 3), (0, 2)]

    def test_keeps_duplicates_and_order(self):
        assert canonical_edges([(2, 1), (1, 2)]) == [(1, 2), (1, 2)]


def two_instances():
    g1 = path_graph([1.0] * 4)
    g2 = path_graph([2.0] * 4)
    i1 = MSCInstance(g1, [(0, 4)], k=2, d_threshold=1.5)
    i2 = MSCInstance(g2, [(0, 4), (1, 4)], k=2, d_threshold=1.5)
    return i1, i2


class TestSumSetFunction:
    def test_value_is_sum(self):
        i1, i2 = two_instances()
        s = SumSetFunction([SigmaEvaluator(i1), SigmaEvaluator(i2)])
        edges = [(0, 4)]
        assert s.value(edges) == SigmaEvaluator(i1).value(edges) + (
            SigmaEvaluator(i2).value(edges)
        )

    def test_add_candidates_is_sum(self):
        i1, i2 = two_instances()
        e1, e2 = SigmaEvaluator(i1), SigmaEvaluator(i2)
        s = SumSetFunction([e1, e2])
        total = s.add_candidates([])
        assert np.allclose(
            total, e1.add_candidates([]) + e2.add_candidates([]).astype(float)
        )

    def test_protocol_conformance(self):
        i1, _ = two_instances()
        evaluator = SigmaEvaluator(i1)
        assert isinstance(evaluator, SetFunctionProtocol)
        s = SumSetFunction([evaluator])
        assert isinstance(s, SetFunctionProtocol)

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SumSetFunction([])

    def test_mismatched_universes_rejected(self):
        g_small = path_graph([1.0] * 2)
        g_large = path_graph([1.0] * 5)
        i_small = MSCInstance(g_small, [(0, 2)], k=1, d_threshold=1.5)
        i_large = MSCInstance(g_large, [(0, 5)], k=1, d_threshold=1.5)
        with pytest.raises(ValueError, match="disagree"):
            SumSetFunction(
                [SigmaEvaluator(i_small), SigmaEvaluator(i_large)]
            )

    def test_terms_accessor_copies(self):
        i1, _ = two_instances()
        s = SumSetFunction([SigmaEvaluator(i1)])
        terms = s.terms
        terms.append(None)
        assert len(s.terms) == 1

"""Tests for repro.core.greedy (generic greedy placement)."""

import numpy as np
import pytest

from repro.core.bounds import NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph


class _FixedFunction:
    """A deterministic set function for controlled greedy behaviour: the
    value is the sum of per-edge scores (modular, so greedy is optimal)."""

    def __init__(self, n, scores):
        self._n = n
        self._scores = scores  # dict edge -> score

    @property
    def n(self):
        return self._n

    def value(self, edges):
        return sum(self._scores.get(tuple(sorted(e)), 0.0) for e in set(edges))

    def add_candidates(self, edges):
        base = self.value(edges)
        out = np.full((self._n, self._n), base, dtype=float)
        existing = {tuple(sorted(e)) for e in edges}
        for (a, b), score in self._scores.items():
            if (a, b) not in existing:
                out[a, b] += score
                out[b, a] += score
        np.fill_diagonal(out, base)
        return out


class TestGreedyMechanics:
    def test_picks_highest_scores_in_order(self):
        fn = _FixedFunction(4, {(0, 1): 3.0, (0, 2): 2.0, (1, 3): 1.0})
        assert greedy_placement(fn, 2) == [(0, 1), (0, 2)]

    def test_stops_when_no_gain(self):
        fn = _FixedFunction(4, {(0, 1): 3.0})
        assert greedy_placement(fn, 3) == [(0, 1)]

    def test_no_gain_continues_when_disabled(self):
        fn = _FixedFunction(4, {(0, 1): 3.0})
        placed = greedy_placement(fn, 3, stop_when_no_gain=False)
        assert len(placed) == 3
        assert placed[0] == (0, 1)

    def test_respects_existing_edges(self):
        fn = _FixedFunction(4, {(0, 1): 3.0, (0, 2): 2.0})
        placed = greedy_placement(fn, 2, existing=[(0, 1)])
        assert placed == [(0, 1), (0, 2)]

    def test_existing_over_budget_rejected(self):
        fn = _FixedFunction(4, {})
        with pytest.raises(SolverError, match="exceed the budget"):
            greedy_placement(fn, 1, existing=[(0, 1), (0, 2)])

    def test_candidate_mask_restricts(self):
        fn = _FixedFunction(4, {(0, 1): 3.0, (0, 2): 2.0})
        mask = np.ones((4, 4), dtype=bool)
        mask[0, 1] = mask[1, 0] = False
        assert greedy_placement(fn, 1, candidate_mask=mask) == [(0, 2)]

    def test_bad_mask_shape_rejected(self):
        fn = _FixedFunction(4, {})
        with pytest.raises(SolverError, match="candidate_mask"):
            greedy_placement(fn, 1, candidate_mask=np.ones((3, 3), bool))

    def test_tie_break_lexicographic(self):
        fn = _FixedFunction(4, {(0, 3): 1.0, (0, 1): 1.0, (2, 3): 1.0})
        assert greedy_placement(fn, 1) == [(0, 1)]

    def test_never_places_self_loop_or_duplicate(self):
        fn = _FixedFunction(3, {(0, 1): 5.0})
        placed = greedy_placement(fn, 3, stop_when_no_gain=False)
        assert len(set(placed)) == len(placed)
        assert all(a != b for a, b in placed)

    def test_invalid_budget(self):
        fn = _FixedFunction(3, {})
        with pytest.raises(Exception):
            greedy_placement(fn, -1)

    def test_zero_budget_places_nothing(self):
        fn = _FixedFunction(3, {(0, 1): 3.0})
        assert greedy_placement(fn, 0) == []


class TestGreedyOnRealObjectives:
    def test_sigma_greedy_on_path(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        placed = greedy_placement(evaluator, tiny_instance.k)
        # One shortcut (0,4) (or equivalent) satisfies all three pairs.
        assert evaluator.value(placed) == 3
        assert len(placed) <= tiny_instance.k

    def test_greedy_stops_at_full_satisfaction(self, tiny_instance):
        evaluator = SigmaEvaluator(tiny_instance)
        placed = greedy_placement(evaluator, 2)
        # All pairs satisfied after the first edge, so greedy stops early.
        assert len(placed) == 1

    def test_nu_greedy_improves_coverage(self):
        g = path_graph([1.0] * 8)
        inst = MSCInstance(g, [(0, 8), (1, 7)], k=2, d_threshold=1.5)
        nu = NuFunction(inst)
        placed = greedy_placement(nu, 2)
        assert nu.value(placed) > nu.value([])

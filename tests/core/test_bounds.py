"""Tests for repro.core.bounds — the sandwich property μ ≤ σ ≤ ν and the
submodularity/monotonicity of both bounds are what the AA guarantee
(paper Eq. 5) rests on."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import MuFunction, NuFunction
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from tests.conftest import path_graph
from tests.core.helpers import all_candidate_edges, random_instance


def random_edge_sets(n, rng, max_edges=4):
    """Nested pair X ⊆ Y plus an extra edge f ∉ Y, for submodularity."""
    universe = all_candidate_edges(n)
    rng.shuffle(universe)
    y_size = rng.randrange(1, min(max_edges, len(universe)))
    y = universe[:y_size]
    x = y[: rng.randrange(0, y_size)]
    extra = universe[y_size]
    return x, y, extra


class TestMuBasics:
    def test_lower_bounds_sigma_on_path(self, tiny_instance):
        mu = MuFunction(tiny_instance)
        sigma = SigmaEvaluator(tiny_instance)
        for edges in ([], [(0, 4)], [(0, 2), (2, 4)], [(0, 3), (1, 4)]):
            assert mu.value(edges) <= sigma.value(edges)

    def test_multi_shortcut_path_not_counted(self):
        """A pair needing two chained shortcuts is rescued under σ but not
        under μ (the defining restriction of the lower bound)."""
        g = path_graph([1.0] * 6)  # 0..6
        inst = MSCInstance(g, [(0, 6)], k=2, d_threshold=0.5)
        sigma = SigmaEvaluator(inst)
        mu = MuFunction(inst)
        edges = [(0, 3), (3, 6)]  # chain: 0 ~ 3 ~ 6 at distance 0
        assert sigma.value(edges) == 1
        assert mu.value(edges) == 0

    def test_single_shortcut_agrees_with_sigma(self, tiny_instance):
        mu = MuFunction(tiny_instance)
        sigma = SigmaEvaluator(tiny_instance)
        for edge in all_candidate_edges(tiny_instance.n):
            assert mu.value([edge]) == sigma.value([edge])

    def test_satisfied_flags(self, tiny_instance):
        mu = MuFunction(tiny_instance)
        assert mu.satisfied([(0, 4)]) == [True, True, True]
        assert mu.satisfied([]) == [False, False, False]

    def test_base_satisfied_pair_always_counts(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(
            g, [(0, 1), (0, 2)], k=1, d_threshold=1.5,
            require_initially_unsatisfied=False,
        )
        mu = MuFunction(inst)
        assert mu.value([]) == 1

    def test_add_candidates_matches_value(self, tiny_instance):
        mu = MuFunction(tiny_instance)
        for existing in ([], [(0, 4)]):
            scores = mu.add_candidates(existing)
            for a, b in all_candidate_edges(tiny_instance.n):
                assert scores[a, b] == mu.value(list(existing) + [(a, b)])


class TestNuBasics:
    def test_weights_are_half_appearance_counts(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(
            g, [(0, 4), (0, 3)], k=1, d_threshold=2.5
        )
        nu = NuFunction(inst)
        weights = dict(zip(nu.pair_nodes, nu.weights))
        assert weights[0] == 1.0  # appears twice
        assert weights[4] == 0.5
        assert weights[3] == 0.5

    def test_upper_bounds_sigma_on_path(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        sigma = SigmaEvaluator(tiny_instance)
        for edges in ([], [(0, 4)], [(0, 2), (2, 4)], [(1, 3)]):
            assert nu.value(edges) >= sigma.value(edges) - 1e-12

    def test_coverage_without_satisfaction(self):
        """ν can exceed σ: covering both endpoints does not mean the pair is
        actually connected within d_t."""
        g = path_graph([1.0] * 6)
        inst = MSCInstance(g, [(0, 6)], k=2, d_threshold=0.5)
        nu = NuFunction(inst)
        sigma = SigmaEvaluator(inst)
        edges = [(0, 2), (4, 6)]  # covers 0 and 6 but σ = 0
        assert sigma.value(edges) == 0
        assert nu.value(edges) == pytest.approx(1.0)

    def test_add_candidates_matches_value(self, tiny_instance):
        nu = NuFunction(tiny_instance)
        for existing in ([], [(0, 4)], [(1, 3), (0, 2)]):
            scores = nu.add_candidates(existing)
            for a, b in all_candidate_edges(tiny_instance.n):
                assert scores[a, b] == pytest.approx(
                    nu.value(list(existing) + [(a, b)])
                )

    def test_symmetry(self, tiny_instance):
        scores = NuFunction(tiny_instance).add_candidates([])
        assert np.allclose(scores, scores.T)


class TestSandwichProperty:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=40, deadline=None)
    def test_mu_le_sigma_le_nu_everywhere(self, seed):
        instance = random_instance(seed)
        sigma = SigmaEvaluator(instance)
        mu = MuFunction(instance)
        nu = NuFunction(instance)
        rng = random.Random(seed ^ 0xABCD)
        for _ in range(5):
            edges = []
            for _ in range(rng.randrange(0, 5)):
                a, b = sorted(rng.sample(range(instance.n), 2))
                edges.append((a, b))
            s = sigma.value(edges)
            assert mu.value(edges) <= s
            assert s <= nu.value(edges) + 1e-9


class TestSubmodularity:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=40, deadline=None)
    def test_mu_is_submodular_and_monotone(self, seed):
        instance = random_instance(seed)
        mu = MuFunction(instance)
        rng = random.Random(seed ^ 0x1111)
        x, y, f = random_edge_sets(instance.n, rng)
        gain_x = mu.value(x + [f]) - mu.value(x)
        gain_y = mu.value(y + [f]) - mu.value(y)
        assert gain_x >= gain_y  # submodular
        assert gain_y >= 0  # monotone

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=40, deadline=None)
    def test_nu_is_submodular_and_monotone(self, seed):
        instance = random_instance(seed)
        nu = NuFunction(instance)
        rng = random.Random(seed ^ 0x2222)
        x, y, f = random_edge_sets(instance.n, rng)
        gain_x = nu.value(x + [f]) - nu.value(x)
        gain_y = nu.value(y + [f]) - nu.value(y)
        assert gain_x >= gain_y - 1e-9
        assert gain_y >= -1e-9

    def test_sigma_is_not_submodular(self, triangle_instance):
        """The paper's §V-A counterexample: adding f12 to {f23} gains more
        than adding it to ∅."""
        sigma = SigmaEvaluator(triangle_instance)
        x_gain = sigma.value([(0, 1)]) - sigma.value([])
        y_gain = sigma.value([(0, 1), (1, 2)]) - sigma.value([(1, 2)])
        assert x_gain == 1
        assert y_gain == 2
        assert x_gain < y_gain

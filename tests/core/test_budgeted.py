"""Tests for repro.core.budgeted (cost-aware placement)."""

import math

import numpy as np
import pytest

from repro.core.budgeted import (
    budgeted_greedy_placement,
    distance_cost_matrix,
    placement_cost,
)
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph


@pytest.fixture
def instance():
    g = path_graph([1.0] * 6)
    return MSCInstance(
        g, [(0, 6), (0, 4), (2, 6)], k=3, d_threshold=1.5
    )


def uniform_costs(n, value=1.0):
    costs = np.full((n, n), value)
    np.fill_diagonal(costs, math.inf)
    return costs


class TestBudgetedGreedy:
    def test_uniform_costs_reduce_to_cardinality(self, instance):
        """Budget B with unit costs = cardinality budget k=B."""
        from repro.core.greedy import greedy_placement

        sigma = SigmaEvaluator(instance)
        budgeted = budgeted_greedy_placement(
            sigma, uniform_costs(instance.n), 2.0
        )
        plain = greedy_placement(sigma, 2)
        assert sigma.value(budgeted) == sigma.value(plain)

    def test_budget_never_exceeded(self, instance):
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n, 0.7)
        placement = budgeted_greedy_placement(sigma, costs, 2.0)
        assert placement_cost(placement, costs) <= 2.0 + 1e-9

    def test_expensive_edges_excluded(self, instance):
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n, 10.0)
        # Make exactly one useful edge affordable.
        costs[0, 4] = costs[4, 0] = 1.0
        placement = budgeted_greedy_placement(sigma, costs, 1.5)
        assert placement == [(0, 4)]

    def test_prefers_cost_effective_edge(self, instance):
        """An edge with lower gain but much lower cost is taken first, and
        with a budget covering both the high-gain edge follows."""
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n, 5.0)
        costs[2, 6] = costs[6, 2] = 0.5  # rescues 1 pair, very cheap
        placement = budgeted_greedy_placement(sigma, costs, 5.5)
        assert placement[0] == (2, 6)  # effectiveness 2.0 beats 2/5
        assert sigma.value(placement) == 3  # (0,5)-style edge fits after

    def test_best_single_fallback(self, instance):
        """When taking the cheap edge first makes the high-value edge
        unaffordable, the best-single-edge arm must override the greedy.

        (0,5) rescues pairs (0,6) and (0,4) — gain 2 at cost 10; (2,6)
        rescues one pair at cost 1. Budget 10: greedy takes (2,6)
        (effectiveness 1.0 > 0.2), leaving 9 < 10, and ends with σ=1; the
        single edge (0,5) scores σ=2 and must win."""
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n, 100.0)
        costs[0, 5] = costs[5, 0] = 10.0
        costs[2, 6] = costs[6, 2] = 1.0
        placement = budgeted_greedy_placement(sigma, costs, 10.0)
        assert placement == [(0, 5)]
        assert sigma.value(placement) == 2

    def test_zero_gain_stops(self, instance):
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n, 0.01)
        placement = budgeted_greedy_placement(sigma, costs, 100.0)
        assert sigma.value(placement) == 3  # all pairs; then stop
        assert len(placement) <= 4

    def test_invalid_costs_shape(self, instance):
        sigma = SigmaEvaluator(instance)
        with pytest.raises(SolverError, match="shape"):
            budgeted_greedy_placement(sigma, np.ones((2, 2)), 1.0)

    def test_negative_costs_rejected(self, instance):
        sigma = SigmaEvaluator(instance)
        costs = uniform_costs(instance.n)
        costs[0, 1] = -1.0
        with pytest.raises(SolverError, match="non-negative"):
            budgeted_greedy_placement(sigma, costs, 1.0)

    def test_invalid_budget(self, instance):
        sigma = SigmaEvaluator(instance)
        with pytest.raises(Exception):
            budgeted_greedy_placement(
                sigma, uniform_costs(instance.n), 0.0
            )


class TestDistanceCostMatrix:
    def test_costs_from_positions(self):
        g = path_graph([1.0])
        positions = {0: (0.0, 0.0), 1: (3.0, 4.0)}
        costs = distance_cost_matrix(
            positions, g, base_cost=2.0, per_unit=1.0
        )
        assert costs[0, 1] == pytest.approx(7.0)
        assert math.isinf(costs[0, 0])

    def test_symmetric(self):
        g = path_graph([1.0, 1.0])
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (5.0, 0.0)}
        costs = distance_cost_matrix(positions, g)
        assert costs[0, 2] == pytest.approx(costs[2, 0])

"""Tests for repro.core.exact (brute-force optimum)."""

import pytest

from repro.core.evaluator import SigmaEvaluator
from repro.core.exact import solve_exact
from repro.core.problem import MSCInstance
from repro.core.sandwich import SandwichApproximation
from repro.exceptions import SolverError
from tests.conftest import path_graph


class TestExact:
    def test_finds_optimum_on_path(self, tiny_instance):
        result = solve_exact(tiny_instance)
        assert result.algorithm == "exact"
        assert result.sigma == tiny_instance.m  # (0,4)+anything is optimal

    def test_beats_or_ties_every_heuristic(self, tiny_instance):
        exact = solve_exact(tiny_instance)
        aa = SandwichApproximation(tiny_instance).solve()
        assert exact.sigma >= aa.sigma

    def test_early_stop_when_all_satisfied(self, tiny_instance):
        result = solve_exact(tiny_instance)
        # search space is C(10, 2) = 45; early stop means fewer evals are
        # possible but the reported space is the full one
        assert result.extras["search_space"] == 45

    def test_work_limit_enforced(self):
        g = path_graph([1.0] * 20)
        inst = MSCInstance(g, [(0, 20)], k=5, d_threshold=1.5)
        with pytest.raises(SolverError, match="work_limit"):
            solve_exact(inst, work_limit=1000)

    def test_sigma_matches_edges(self, tiny_instance):
        result = solve_exact(tiny_instance)
        evaluator = SigmaEvaluator(tiny_instance)
        edges = [
            tuple(sorted((
                tiny_instance.graph.node_index(u),
                tiny_instance.graph.node_index(v),
            )))
            for u, v in result.edges
        ]
        assert evaluator.value(edges) == result.sigma

    def test_impossible_instance_returns_zero(self, triangle_instance):
        """k=2 shortcut edges cannot satisfy all three isolated pairs, but
        exact must still return the best achievable (σ=3 with 2 edges: the
        chain satisfies all three within d_t=1? distances via two zero edges
        are 0, so yes — all three pairs)."""
        result = solve_exact(triangle_instance)
        assert result.sigma == 3

"""Tests for repro.core.coverage — greedy weighted max coverage, including
the (1 - 1/e) guarantee against brute force on small instances."""

import itertools
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import greedy_max_coverage
from repro.exceptions import SolverError

APPROX = 1 - 1 / math.e


def brute_force_best(sets, k, weights=None):
    sets = np.asarray(sets, dtype=bool)
    num_sets, num_elements = sets.shape
    w = (
        np.ones(num_elements)
        if weights is None
        else np.asarray(weights, dtype=float)
    )
    best = 0.0
    for size in range(min(k, num_sets) + 1):
        for combo in itertools.combinations(range(num_sets), size):
            covered = np.zeros(num_elements, dtype=bool)
            for idx in combo:
                covered |= sets[idx]
            best = max(best, float(w @ covered))
    return best


class TestBasics:
    def test_single_best_set(self):
        sets = np.array([[1, 1, 0], [1, 0, 0], [0, 0, 1]], dtype=bool)
        result = greedy_max_coverage(sets, 1)
        assert result.selected == [0]
        assert result.weight == 2.0

    def test_complementary_sets(self):
        sets = np.array([[1, 1, 0, 0], [0, 0, 1, 1], [1, 1, 1, 0]], bool)
        result = greedy_max_coverage(sets, 2)
        assert result.weight == 4.0

    def test_early_stop_on_zero_gain(self):
        sets = np.array([[1, 1], [1, 1], [1, 0]], dtype=bool)
        result = greedy_max_coverage(sets, 3)
        assert len(result.selected) == 1

    def test_weighted_selection(self):
        sets = np.array([[1, 0, 0], [0, 1, 1]], dtype=bool)
        result = greedy_max_coverage(sets, 1, weights=[10.0, 1.0, 1.0])
        assert result.selected == [0]

    def test_deterministic_tie_break(self):
        sets = np.array([[1, 0], [0, 1]], dtype=bool)
        assert greedy_max_coverage(sets, 1).selected == [0]

    def test_covered_vector(self):
        sets = np.array([[1, 0, 1]], dtype=bool)
        result = greedy_max_coverage(sets, 1)
        assert list(result.covered) == [True, False, True]

    def test_k_larger_than_sets(self):
        sets = np.array([[1, 0], [0, 1]], dtype=bool)
        result = greedy_max_coverage(sets, 10)
        assert result.weight == 2.0


class TestValidation:
    def test_non_2d_rejected(self):
        with pytest.raises(SolverError, match="2-D"):
            greedy_max_coverage(np.array([True, False]), 1)

    def test_weight_shape_mismatch(self):
        with pytest.raises(SolverError, match="weights shape"):
            greedy_max_coverage(np.zeros((2, 3), bool), 1, weights=[1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(SolverError, match="non-negative"):
            greedy_max_coverage(
                np.zeros((2, 3), bool), 1, weights=[1.0, -1.0, 0.0]
            )

    def test_invalid_k(self):
        with pytest.raises(Exception):
            greedy_max_coverage(np.zeros((2, 3), bool), -1)

    def test_zero_k_selects_nothing(self):
        result = greedy_max_coverage(np.zeros((2, 3), bool), 0)
        assert result.selected == []
        assert result.weight == 0.0


class TestApproximationGuarantee:
    @given(
        num_sets=st.integers(1, 7),
        num_elements=st.integers(1, 8),
        k=st.integers(1, 4),
        seed=st.integers(0, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_within_1_minus_1_over_e(
        self, num_sets, num_elements, k, seed
    ):
        rng = random.Random(seed)
        sets = np.array(
            [
                [rng.random() < 0.4 for _ in range(num_elements)]
                for _ in range(num_sets)
            ],
            dtype=bool,
        )
        weights = [rng.uniform(0.0, 2.0) for _ in range(num_elements)]
        greedy = greedy_max_coverage(sets, k, weights=weights).weight
        optimal = brute_force_best(sets, k, weights=weights)
        assert greedy >= APPROX * optimal - 1e-9

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_greedy_never_exceeds_optimal(self, seed):
        rng = random.Random(seed)
        sets = np.array(
            [[rng.random() < 0.5 for _ in range(6)] for _ in range(5)],
            dtype=bool,
        )
        greedy = greedy_max_coverage(sets, 2).weight
        assert greedy <= brute_force_best(sets, 2) + 1e-9

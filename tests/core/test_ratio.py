"""Tests for repro.core.ratio (Tables I/II machinery)."""

import pytest

from repro.core.problem import MSCInstance
from repro.core.ratio import APPROX_FACTOR, RatioReport, ratio_grid, sandwich_ratio
from tests.conftest import path_graph
from tests.core.helpers import random_instance


class TestSandwichRatio:
    def test_ratio_in_unit_interval(self, tiny_instance):
        report = sandwich_ratio(tiny_instance)
        assert 0.0 <= report.ratio <= 1.0 + 1e-9

    def test_sigma_le_nu(self, tiny_instance):
        report = sandwich_ratio(tiny_instance)
        assert report.sigma_value <= report.nu_value + 1e-9

    def test_guarantee_scales_ratio(self, tiny_instance):
        report = sandwich_ratio(tiny_instance)
        assert report.guarantee == pytest.approx(
            report.ratio * APPROX_FACTOR
        )

    def test_explicit_budget(self, tiny_instance):
        report = sandwich_ratio(tiny_instance, k=1)
        assert report.k == 1

    def test_degenerate_instance_ratio_one(self, triangle_instance):
        report = sandwich_ratio(triangle_instance)
        if report.nu_value <= 0:
            assert report.ratio == 1.0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_instances_valid(self, seed):
        instance = random_instance(seed)
        report = sandwich_ratio(instance)
        assert 0.0 <= report.ratio <= 1.0 + 1e-9


class TestRatioGrid:
    def test_grid_layout(self):
        g = path_graph([0.3] * 8)

        def factory(p_t, draw):
            return MSCInstance(
                g, [(0, 8), (1, 7), (0, 6)], k=4, p_threshold=p_t
            )

        grid = ratio_grid(factory, [0.5, 0.7], [1, 2])
        assert set(grid) == {0.5, 0.7}
        for reports in grid.values():
            assert [r.k for r in reports] == [1, 2]
            assert all(isinstance(r, RatioReport) for r in reports)

    def test_grid_averaging_deterministic_instances(self):
        """Averaging identical draws equals a single draw."""
        g = path_graph([0.3] * 8)

        def factory(p_t, draw):
            return MSCInstance(
                g, [(0, 8), (1, 7), (0, 6)], k=4, p_threshold=p_t
            )

        one = ratio_grid(factory, [0.5], [2], draws=1)[0.5][0]
        many = ratio_grid(factory, [0.5], [2], draws=4)[0.5][0]
        assert many.ratio == pytest.approx(one.ratio)
        assert many.sigma_value == pytest.approx(one.sigma_value)

    def test_grid_draws_vary_with_factory(self):
        """The draw index reaches the factory (seeds differ per draw)."""
        g = path_graph([0.3] * 8)
        seen = []

        def factory(p_t, draw):
            seen.append(draw)
            return MSCInstance(
                g, [(0, 8), (1, 7)], k=2, p_threshold=p_t
            )

        ratio_grid(factory, [0.5], [1], draws=3)
        assert seen == [0, 1, 2]

"""Tests for repro.core.weighted — weighted objective and weighted bounds."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SigmaEvaluator
from repro.core.greedy import greedy_placement
from repro.core.weighted import (
    WeightedMuFunction,
    WeightedNuFunction,
    WeightedSigmaEvaluator,
    weighted_sandwich,
)
from repro.exceptions import InstanceError
from tests.conftest import path_graph
from tests.core.helpers import all_candidate_edges, random_instance


class TestWeightedSigma:
    def test_unit_weights_reduce_to_sigma(self, tiny_instance):
        weighted = WeightedSigmaEvaluator(
            tiny_instance, [1.0] * tiny_instance.m
        )
        plain = SigmaEvaluator(tiny_instance)
        for edges in ([], [(0, 4)], [(1, 3)]):
            assert weighted.value(edges) == pytest.approx(
                float(plain.value(edges))
            )

    def test_weights_scale_value(self, tiny_instance):
        weighted = WeightedSigmaEvaluator(tiny_instance, [5.0, 0.0, 0.0])
        # (0, 4) satisfies all three pairs; only the first counts.
        assert weighted.value([(0, 4)]) == pytest.approx(5.0)

    def test_add_candidates_matches_value(self, tiny_instance):
        weighted = WeightedSigmaEvaluator(tiny_instance, [2.0, 1.0, 0.5])
        for existing in ([], [(0, 2)]):
            scores = weighted.add_candidates(existing)
            for a, b in all_candidate_edges(tiny_instance.n):
                assert scores[a, b] == pytest.approx(
                    weighted.value(list(existing) + [(a, b)])
                )

    def test_wrong_weight_count_rejected(self, tiny_instance):
        with pytest.raises(InstanceError, match="weights"):
            WeightedSigmaEvaluator(tiny_instance, [1.0])

    def test_negative_weight_rejected(self, tiny_instance):
        with pytest.raises(Exception):
            WeightedSigmaEvaluator(tiny_instance, [1.0, -1.0, 1.0])

    def test_max_value(self, tiny_instance):
        weighted = WeightedSigmaEvaluator(tiny_instance, [2.0, 1.0, 0.5])
        assert weighted.max_value() == pytest.approx(3.5)

    def test_greedy_prefers_heavy_pairs(self):
        """With one pair weighted heavily, greedy's first edge must rescue
        it even when another edge rescues two light pairs."""
        g = path_graph([1.0] * 8)  # 0..8
        from repro.core.problem import MSCInstance

        inst = MSCInstance(
            g, [(0, 8), (2, 5), (3, 6)], k=1, d_threshold=1.5
        )
        weighted = WeightedSigmaEvaluator(inst, [10.0, 1.0, 1.0])
        placed = greedy_placement(weighted, 1)
        flags = weighted.satisfied(placed)
        assert flags[0]  # the heavy pair got rescued first


class TestWeightedBounds:
    def test_unit_weights_reduce_to_plain_bounds(self, tiny_instance):
        from repro.core.bounds import MuFunction, NuFunction

        unit = [1.0] * tiny_instance.m
        w_mu = WeightedMuFunction(tiny_instance, unit)
        w_nu = WeightedNuFunction(tiny_instance, unit)
        mu = MuFunction(tiny_instance)
        nu = NuFunction(tiny_instance)
        for edges in ([], [(0, 4)], [(0, 2), (2, 4)]):
            assert w_mu.value(edges) == pytest.approx(float(mu.value(edges)))
            assert w_nu.value(edges) == pytest.approx(float(nu.value(edges)))

    def test_mu_add_candidates_matches_value(self, tiny_instance):
        w_mu = WeightedMuFunction(tiny_instance, [2.0, 1.0, 0.5])
        scores = w_mu.add_candidates([])
        for a, b in all_candidate_edges(tiny_instance.n):
            assert scores[a, b] == pytest.approx(w_mu.value([(a, b)]))

    def test_nu_add_candidates_matches_value(self, tiny_instance):
        w_nu = WeightedNuFunction(tiny_instance, [2.0, 1.0, 0.5])
        scores = w_nu.add_candidates([])
        for a, b in all_candidate_edges(tiny_instance.n):
            assert scores[a, b] == pytest.approx(w_nu.value([(a, b)]))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_weighted_sandwich_property(self, seed):
        """weighted μ ≤ weighted σ ≤ weighted ν on random instances with
        random non-negative weights."""
        instance = random_instance(seed)
        rng = random.Random(seed ^ 0x5150)
        weights = [rng.uniform(0.0, 3.0) for _ in range(instance.m)]
        sigma = WeightedSigmaEvaluator(instance, weights)
        mu = WeightedMuFunction(instance, weights)
        nu = WeightedNuFunction(instance, weights)
        for _ in range(4):
            edges = []
            for _ in range(rng.randrange(0, 4)):
                a, b = sorted(rng.sample(range(instance.n), 2))
                edges.append((a, b))
            s = sigma.value(edges)
            assert mu.value(edges) <= s + 1e-9
            assert s <= nu.value(edges) + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_weighted_bounds_submodular(self, seed):
        instance = random_instance(seed)
        rng = random.Random(seed ^ 0x7777)
        weights = [rng.uniform(0.0, 3.0) for _ in range(instance.m)]
        mu = WeightedMuFunction(instance, weights)
        nu = WeightedNuFunction(instance, weights)
        universe = all_candidate_edges(instance.n)
        rng.shuffle(universe)
        y = universe[:3]
        x = y[: rng.randrange(0, 3)]
        f = universe[3]
        for fn in (mu, nu):
            gain_x = fn.value(x + [f]) - fn.value(x)
            gain_y = fn.value(y + [f]) - fn.value(y)
            assert gain_x >= gain_y - 1e-9
            assert gain_y >= -1e-9


class TestWeightedSandwich:
    def test_solves_and_reports_float_sigma(self, tiny_instance):
        aa = weighted_sandwich(tiny_instance, [2.5, 1.0, 1.0])
        result = aa.solve()
        assert result.sigma == pytest.approx(4.5)  # all pairs rescued
        assert 0.0 <= result.extras["ratio"] <= 1.0 + 1e-9

    def test_integral_weights_keep_int_sigma(self, tiny_instance):
        aa = weighted_sandwich(tiny_instance, [2.0, 1.0, 1.0])
        result = aa.solve()
        assert isinstance(result.sigma, int)
        assert result.sigma == 4

"""Tests for repro.core.registry."""

import pytest

from repro.core.registry import (
    get_solver,
    register_solver,
    solve,
    solver_names,
)
from repro.exceptions import SolverError
from repro.types import PlacementResult


class TestRegistry:
    def test_known_names_present(self):
        names = solver_names()
        for expected in ("sandwich", "aa", "ea", "aea", "random",
                         "exact", "msc_cn"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_solver("AEA") is get_solver("aea")

    def test_aa_is_alias_for_sandwich(self):
        assert get_solver("aa") is get_solver("sandwich")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(SolverError, match="available"):
            get_solver("nope")

    def test_solve_dispatches(self, tiny_instance):
        result = solve("sandwich", tiny_instance)
        assert result.algorithm == "sandwich"

    def test_solve_forwards_params(self, tiny_instance):
        result = solve("random", tiny_instance, seed=1, trials=7)
        assert result.evaluations == 7

    def test_register_custom_solver(self, tiny_instance):
        def dummy(instance, seed=None, **_):
            return PlacementResult(
                algorithm="dummy", edges=[], sigma=0, satisfied=[]
            )

        register_solver("dummy-test", dummy)
        try:
            assert solve("dummy-test", tiny_instance).algorithm == "dummy"
            with pytest.raises(SolverError, match="already registered"):
                register_solver("dummy-test", dummy)
            register_solver("dummy-test", dummy, overwrite=True)
        finally:
            # Clean up the global registry for other tests.
            from repro.core import registry

            registry._SOLVERS.pop("dummy-test", None)

    def test_every_registered_solver_runs(self, tiny_instance):
        for name in ("sandwich", "ea", "aea", "random", "exact"):
            result = solve(name, tiny_instance, seed=1, iterations=10,
                           trials=10)
            assert isinstance(result, PlacementResult)
            assert 0 <= result.sigma <= tiny_instance.m

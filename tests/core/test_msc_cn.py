"""Tests for repro.core.msc_cn — the common-node special case and its
max-coverage reduction (paper §IV)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import SigmaEvaluator
from repro.core.exact import solve_exact
from repro.core.msc_cn import is_common_node_instance, solve_msc_cn
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph, star_graph

APPROX = 1 - 1 / math.e


def common_node_instance(d_threshold=1.5, k=2):
    """Star of long spokes: center 0, leaves at distance 2 (two unit hops
    through relay nodes)."""
    g = star_graph(5, length=2.0)
    # add relay nodes halfway on each spoke
    for leaf in range(1, 6):
        relay = 10 + leaf
        g.add_edge(0, relay, length=1.0)
        g.add_edge(relay, leaf, length=1.0)
    pairs = [(0, leaf) for leaf in range(1, 6)]
    return MSCInstance(g, pairs, k, d_threshold=d_threshold)


class TestDetection:
    def test_common_node_instance_detected(self):
        assert is_common_node_instance(common_node_instance())

    def test_general_instance_not_detected(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(0, 4), (1, 3)], k=1, d_threshold=2.5,
                           require_initially_unsatisfied=False)
        assert not is_common_node_instance(inst)


class TestSolver:
    def test_edges_incident_to_common_node(self):
        result = solve_msc_cn(common_node_instance())
        for u, v in result.edges:
            assert u == 0 or v == 0

    def test_sigma_agrees_with_evaluator(self):
        inst = common_node_instance()
        result = solve_msc_cn(inst)
        evaluator = SigmaEvaluator(inst)
        edges = [
            tuple(
                sorted(
                    (
                        inst.graph.node_index(u),
                        inst.graph.node_index(v),
                    )
                )
            )
            for u, v in result.edges
        ]
        assert evaluator.value(edges) == result.sigma
        assert sum(result.satisfied) == result.sigma

    def test_direct_shortcut_to_leaf_counts(self):
        """A shortcut (0, leaf) covers that leaf (distance 0)."""
        inst = common_node_instance(d_threshold=0.5, k=2)
        result = solve_msc_cn(inst)
        assert result.sigma == 2  # each edge rescues exactly one leaf

    def test_relay_shortcut_covers_nearby_leaves(self):
        """With d_t = 1.5, a shortcut to a relay covers its leaf (distance
        1), and a shortcut to a leaf covers the neighbors' relays too."""
        inst = common_node_instance(d_threshold=1.5, k=2)
        result = solve_msc_cn(inst)
        assert result.sigma >= 2

    def test_explicit_common_node(self):
        inst = common_node_instance()
        result = solve_msc_cn(inst, common=0)
        assert result.sigma >= 1

    def test_wrong_common_node_rejected(self):
        inst = common_node_instance()
        with pytest.raises(SolverError, match="not shared"):
            solve_msc_cn(inst, common=1)

    def test_no_common_node_rejected(self):
        g = path_graph([1.0] * 4)
        inst = MSCInstance(
            g, [(0, 4), (1, 3)], k=1, d_threshold=2.5,
            require_initially_unsatisfied=False,
        )
        with pytest.raises(SolverError, match="no common node"):
            solve_msc_cn(inst)

    def test_base_satisfied_pairs_reported(self):
        g = star_graph(3, length=1.0)
        inst = MSCInstance(
            g, [(0, 1), (0, 2), (0, 3)], k=1, d_threshold=1.5,
            require_initially_unsatisfied=False,
        )
        result = solve_msc_cn(inst)
        assert result.sigma == 3
        assert result.extras["base_satisfied"] == 3
        assert result.edges == []  # nothing left to rescue


class TestApproximationGuarantee:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_within_1_minus_1_over_e_of_exact(self, seed):
        """On small common-node instances the greedy coverage solution must
        satisfy Theorem 5's bound against the exact optimum."""
        import random

        rng = random.Random(seed)
        from tests.conftest import random_graph

        g = random_graph(8, 0.35, rng)
        common = 0
        # Pick partners with some distance from the common node.
        from repro.graph.distances import DistanceOracle

        oracle = DistanceOracle(g)
        row = oracle.row(common)
        threshold = 1.0
        partners = [
            v for v in range(1, 8) if row[v] > threshold
        ]
        if len(partners) < 2:
            return  # degenerate draw; property vacuous
        pairs = [(common, v) for v in partners]
        inst = MSCInstance(
            g, pairs, k=2, d_threshold=threshold, oracle=oracle
        )
        greedy = solve_msc_cn(inst)
        exact = solve_exact(inst)
        assert greedy.sigma >= APPROX * exact.sigma - 1e-9

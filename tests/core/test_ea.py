"""Tests for repro.core.ea (Algorithm 1, GSEMO)."""

import pytest

from repro.core.ea import EvolutionaryAlgorithm, solve_ea
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.exceptions import SolverError
from tests.conftest import path_graph


class TestSolve:
    def test_result_fields(self, tiny_instance):
        result = solve_ea(tiny_instance, seed=1, iterations=50)
        assert result.algorithm == "ea"
        assert 0 <= result.sigma <= tiny_instance.m
        assert len(result.edges) <= tiny_instance.k
        assert len(result.trace) == 50

    def test_deterministic_for_seed(self, tiny_instance):
        a = solve_ea(tiny_instance, seed=7, iterations=60)
        b = solve_ea(tiny_instance, seed=7, iterations=60)
        assert a.edges == b.edges
        assert a.trace == b.trace

    def test_different_seeds_explore_differently(self, tiny_instance):
        a = solve_ea(tiny_instance, seed=1, iterations=40)
        b = solve_ea(tiny_instance, seed=2, iterations=40)
        # traces usually differ; at minimum both are valid
        assert a.sigma >= 0 and b.sigma >= 0

    def test_trace_monotone_nondecreasing(self, tiny_instance):
        result = solve_ea(tiny_instance, seed=3, iterations=80)
        assert all(
            a <= b for a, b in zip(result.trace, result.trace[1:])
        )

    def test_sigma_matches_reported_edges(self, tiny_instance):
        result = solve_ea(tiny_instance, seed=5, iterations=80)
        evaluator = SigmaEvaluator(tiny_instance)
        edges = [
            tuple(sorted((
                tiny_instance.graph.node_index(u),
                tiny_instance.graph.node_index(v),
            )))
            for u, v in result.edges
        ]
        assert evaluator.value(edges) == result.sigma

    def test_eventually_solves_trivial_instance(self):
        """On a 3-node instance one shortcut suffices; with enough
        iterations EA must find it."""
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(g, [(0, 2)], k=1, d_threshold=1.5)
        result = solve_ea(inst, seed=11, iterations=400)
        assert result.sigma == 1

    def test_more_iterations_never_hurt(self, tiny_instance):
        short = solve_ea(tiny_instance, seed=9, iterations=30)
        long = solve_ea(tiny_instance, seed=9, iterations=200)
        assert long.sigma >= short.sigma

    def test_budget_respected_even_with_larger_archive(self, tiny_instance):
        result = solve_ea(tiny_instance, seed=13, iterations=100)
        assert len(result.edges) <= tiny_instance.k


class TestArchive:
    def test_archive_is_pareto_antichain(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=150, seed=17)
        archive = []
        # Re-run the insertion logic through the public solve and inspect
        # via extras.
        result = ea.solve()
        assert result.extras["archive_size"] >= 1

    def test_insert_discards_weakly_dominated(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=1, seed=1)
        archive = [(frozenset([(0, 1)]), 2.0)]
        ea._insert(archive, (frozenset([(0, 1), (1, 2)]), 2.0))
        assert len(archive) == 1  # same σ with more edges: dominated

    def test_insert_evicts_dominated_members(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=1, seed=1)
        archive = [(frozenset([(0, 1), (1, 2)]), 2.0)]
        ea._insert(archive, (frozenset([(0, 1)]), 3.0))
        assert archive == [(frozenset([(0, 1)]), 3.0)]

    def test_insert_keeps_incomparable(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=1, seed=1)
        archive = [(frozenset([(0, 1)]), 2.0)]
        ea._insert(archive, (frozenset([(0, 2), (1, 3)]), 3.0))
        assert len(archive) == 2


class TestMutation:
    def test_mutation_rate_expected_one_flip(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=1, seed=23)
        flips = []
        base = frozenset()
        for _ in range(300):
            child = ea._mutate(base)
            flips.append(len(child))
        mean = sum(flips) / len(flips)
        assert 0.5 < mean < 1.6  # Binomial(N, 1/N) has mean 1

    def test_mutation_can_remove(self, tiny_instance):
        ea = EvolutionaryAlgorithm(tiny_instance, iterations=1, seed=29)
        base = frozenset([(0, 1)])
        seen_removal = any(
            (0, 1) not in ea._mutate(base) for _ in range(500)
        )
        assert seen_removal


class TestValidation:
    def test_single_node_graph_rejected(self):
        from repro.graph.graph import WirelessGraph

        g = WirelessGraph()
        g.add_nodes([0, 1])
        g.add_edge(0, 1, length=5.0)
        inst = MSCInstance(g, [(0, 1)], k=1, d_threshold=1.0)
        # two nodes is fine; build a 1-node case artificially via sigma stub
        solve_ea(inst, seed=1, iterations=5)

    def test_invalid_iterations(self, tiny_instance):
        with pytest.raises(Exception):
            EvolutionaryAlgorithm(tiny_instance, iterations=0)

"""Tests for repro.core.random_baseline."""

import pytest

from repro.core.evaluator import SigmaEvaluator
from repro.core.random_baseline import solve_random_baseline
from repro.core.problem import MSCInstance
from tests.conftest import path_graph


class TestRandomBaseline:
    def test_result_fields(self, tiny_instance):
        result = solve_random_baseline(tiny_instance, seed=1, trials=50)
        assert result.algorithm == "random"
        assert result.evaluations == 50
        assert len(result.trace) == 50
        assert len(result.edges) <= tiny_instance.k

    def test_deterministic_for_seed(self, tiny_instance):
        a = solve_random_baseline(tiny_instance, seed=4, trials=40)
        b = solve_random_baseline(tiny_instance, seed=4, trials=40)
        assert a.edges == b.edges and a.sigma == b.sigma

    def test_trace_is_best_so_far(self, tiny_instance):
        result = solve_random_baseline(tiny_instance, seed=2, trials=60)
        assert all(
            a <= b for a, b in zip(result.trace, result.trace[1:])
        )
        assert result.trace[-1] == result.sigma

    def test_sigma_matches_edges(self, tiny_instance):
        result = solve_random_baseline(tiny_instance, seed=3, trials=30)
        evaluator = SigmaEvaluator(tiny_instance)
        edges = [
            tuple(sorted((
                tiny_instance.graph.node_index(u),
                tiny_instance.graph.node_index(v),
            )))
            for u, v in result.edges
        ]
        assert evaluator.value(edges) == result.sigma

    def test_trivial_universe_finds_optimum(self):
        """3-node path, k=1: only 3 candidate placements, so enough random
        trials must find the best one."""
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(g, [(0, 2)], k=1, d_threshold=1.5)
        result = solve_random_baseline(inst, seed=5, trials=50)
        assert result.sigma == 1

    def test_more_trials_never_hurt(self, tiny_instance):
        few = solve_random_baseline(tiny_instance, seed=6, trials=5)
        many = solve_random_baseline(tiny_instance, seed=6, trials=100)
        assert many.sigma >= few.sigma

    def test_budget_capped_at_universe(self):
        g = path_graph([1.0, 1.0])
        inst = MSCInstance(g, [(0, 2)], k=3, d_threshold=1.5)
        result = solve_random_baseline(inst, seed=7, trials=10)
        assert len(result.edges) <= 3

    def test_invalid_trials(self, tiny_instance):
        with pytest.raises(Exception):
            solve_random_baseline(tiny_instance, trials=0)

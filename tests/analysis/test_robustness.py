"""Tests for repro.analysis.robustness."""

import pytest

from repro.analysis.robustness import (
    RobustnessReport,
    perturbation_analysis,
    perturb_graph,
)
from repro.core.problem import MSCInstance
from repro.util.rng import ensure_rng
from tests.conftest import path_graph


@pytest.fixture
def instance():
    g = path_graph([1.0] * 4)
    return MSCInstance(g, [(0, 4), (1, 4)], k=2, d_threshold=1.5)


class TestPerturbGraph:
    def test_structure_preserved(self, instance):
        perturbed = perturb_graph(instance.graph, 0.3, ensure_rng(1))
        assert perturbed.nodes == instance.graph.nodes
        assert len(perturbed.edges) == len(instance.graph.edges)

    def test_zero_noise_identity(self, instance):
        perturbed = perturb_graph(instance.graph, 0.0, ensure_rng(1))
        for u, v, length in instance.graph.edges:
            assert perturbed.length(u, v) == pytest.approx(length)

    def test_noise_changes_probabilities(self, instance):
        perturbed = perturb_graph(instance.graph, 0.5, ensure_rng(1))
        changed = any(
            abs(perturbed.length(u, v) - length) > 1e-12
            for u, v, length in instance.graph.edges
        )
        assert changed

    def test_probabilities_stay_valid(self, instance):
        perturbed = perturb_graph(instance.graph, 0.99, ensure_rng(2))
        for u, v, _l in perturbed.edges:
            assert 0.0 <= perturbed.failure_probability(u, v) < 1.0


class TestPerturbationAnalysis:
    def test_report_shape(self, instance):
        report = perturbation_analysis(
            instance, [(0, 4)], noise=0.2, trials=10, seed=3
        )
        assert report.trials == 10
        assert len(report.sigma_samples) == 10
        assert report.baseline_sigma == 2
        assert 0 <= report.worst_sigma <= report.baseline_sigma
        assert report.worst_sigma <= report.mean_sigma

    def test_zero_noise_full_retention(self, instance):
        report = perturbation_analysis(
            instance, [(0, 4)], noise=0.0, trials=5, seed=3
        )
        assert report.retention == pytest.approx(1.0)
        assert all(s == report.baseline_sigma for s in report.sigma_samples)

    def test_deterministic_for_seed(self, instance):
        a = perturbation_analysis(
            instance, [(0, 4)], noise=0.3, trials=8, seed=5
        )
        b = perturbation_analysis(
            instance, [(0, 4)], noise=0.3, trials=8, seed=5
        )
        assert a.sigma_samples == b.sigma_samples

    def test_empty_placement_zero_baseline(self, instance):
        report = perturbation_analysis(
            instance, [], noise=0.2, trials=4, seed=5
        )
        assert report.baseline_sigma == 0
        assert report.retention == 1.0

    def test_shortcut_immune_to_noise(self):
        """A directly connected pair stays maintained under any noise —
        shortcut edges are not perturbed."""
        g = path_graph([1.0] * 4)
        inst = MSCInstance(g, [(0, 4)], k=1, d_threshold=1.5)
        report = perturbation_analysis(
            inst, [(0, 4)], noise=0.9, trials=10, seed=7
        )
        assert all(s == 1 for s in report.sigma_samples)

    def test_invalid_trials(self, instance):
        with pytest.raises(Exception):
            perturbation_analysis(instance, [], trials=0)

"""Tests for repro.analysis.placement."""

import pytest

from repro.analysis.placement import edge_contributions, pair_attribution
from repro.core.problem import MSCInstance
from tests.conftest import path_graph


@pytest.fixture
def instance():
    """Path 0..6, unit edges, d_t=1.5; pairs need shortcut chains."""
    g = path_graph([1.0] * 6)
    return MSCInstance(
        g, [(0, 6), (0, 4), (2, 6)], k=3, d_threshold=1.5
    )


class TestEdgeContributions:
    def test_solo_and_marginal_for_critical_edge(self, instance):
        # (0, 6) alone satisfies all three pairs (distance 0 between ends,
        # 1 hop to interior endpoints... 0-6 shortcut: pair (0,4): d(0,4)
        # via 6? 0~6 then 6-5-4 = 2 > 1.5. via base 4. So (0,6) rescues
        # only (0,6).
        contributions = edge_contributions(instance, [(0, 6)])
        assert len(contributions) == 1
        c = contributions[0]
        assert c.solo_sigma == 1
        assert c.marginal_sigma == 1

    def test_redundant_edges_have_zero_marginal(self, instance):
        # Two identicalish shortcuts rescuing the same pair: marginal of
        # each is 0 (the other covers), solo is positive.
        contributions = edge_contributions(
            instance, [(0, 6), (1, 6)]
        )
        # (1,6): pair (0,6) distance = 1 (0-1) + 0 = 1 <= 1.5: rescues it
        # too; also (2,6): d(2,1)=1 + 0 = 1: rescued.
        by_edge = {c.edge: c for c in contributions}
        assert by_edge[(0, 6)].marginal_sigma == 0  # (1,6) still covers (0,6)
        assert by_edge[(0, 6)].solo_sigma == 1

    def test_empty_placement(self, instance):
        assert edge_contributions(instance, []) == []

    def test_marginals_reflect_chains(self, instance):
        """Chained shortcuts: each link of the chain is critical for the
        pair that needs both."""
        contributions = edge_contributions(instance, [(0, 3), (3, 6)])
        # chain rescues (0,6) at distance 0; each single edge does not.
        for c in contributions:
            assert c.marginal_sigma >= 1


class TestPairAttribution:
    def test_only_maintained_pairs_in_result(self, instance):
        attribution = pair_attribution(instance, [(0, 6)])
        assert set(attribution) == {(0, 6)}

    def test_critical_edges_identified(self, instance):
        attribution = pair_attribution(instance, [(0, 3), (3, 6)])
        assert attribution[(0, 6)] == [(0, 3), (3, 6)]  # both critical

    def test_redundantly_maintained_pair_has_no_critical_edge(self, instance):
        attribution = pair_attribution(instance, [(0, 6), (1, 6)])
        assert attribution[(0, 6)] == []

    def test_empty_placement_empty_attribution(self, instance):
        assert pair_attribution(instance, []) == {}

"""Model-based (stateful) testing of the PlacementPlanner.

Hypothesis drives random sequences of add/remove/undo/reset against a plain
Python model of the expected placement; after every step the planner's
edge set, σ and budget bookkeeping must match the model and a fresh
evaluator. This pins the undo-stack semantics far harder than example
tests can."""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.analysis.planner import PlacementPlanner
from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from tests.conftest import path_graph

N = 6


def build_instance():
    graph = path_graph([1.0] * (N - 1))
    return MSCInstance(
        graph,
        [(0, N - 1), (1, N - 1), (0, N - 2)],
        k=3,
        d_threshold=1.5,
    )


edges_strategy = st.tuples(
    st.integers(0, N - 1), st.integers(0, N - 1)
).filter(lambda e: e[0] != e[1])


class PlannerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.instance = build_instance()
        self.planner = PlacementPlanner(self.instance)
        self.evaluator = SigmaEvaluator(self.instance)
        self.model: list = []          # expected edge list (normalized)
        self.history: list = []        # (action, edge) mirror of undo stack

    @staticmethod
    def _norm(edge):
        return tuple(sorted(edge))

    @rule(edge=edges_strategy)
    def add(self, edge):
        normalized = self._norm(edge)
        if normalized in self.model:
            return  # planner rejects duplicates; model unchanged
        self.planner.add(*edge)
        self.model.append(normalized)
        self.history.append(("add", normalized))

    @rule(edge=edges_strategy)
    def remove(self, edge):
        normalized = self._norm(edge)
        if normalized not in self.model:
            return
        self.planner.remove(*edge)
        self.model.remove(normalized)
        self.history.append(("remove", normalized))

    @precondition(lambda self: self.history)
    @rule()
    def undo(self):
        action, edge = self.history.pop()
        assert self.planner.undo()
        if action == "add":
            self.model.remove(edge)
        else:
            self.model.append(edge)

    @rule()
    def reset(self):
        self.planner.reset()
        self.model.clear()
        self.history.clear()

    @invariant()
    def edges_match_model(self):
        assert sorted(
            self._norm(e) for e in self.planner.edges
        ) == sorted(self.model)

    @invariant()
    def sigma_matches_fresh_evaluation(self):
        graph = self.instance.graph
        index_pairs = [
            tuple(
                sorted((graph.node_index(u), graph.node_index(v)))
            )
            for u, v in self.model
        ]
        assert self.planner.sigma == self.evaluator.value(index_pairs)

    @invariant()
    def budget_bookkeeping(self):
        used = len(self.model)
        assert self.planner.remaining_budget == self.instance.k - used
        assert self.planner.over_budget == (used > self.instance.k)


TestPlannerStateful = PlannerMachine.TestCase
TestPlannerStateful.settings = __import__(
    "hypothesis"
).settings(max_examples=40, stateful_step_count=30, deadline=None)

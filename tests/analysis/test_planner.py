"""Tests for repro.analysis.planner (interactive what-if sessions)."""

import pytest

from repro.analysis.planner import PlacementPlanner
from repro.core.greedy import greedy_placement
from repro.core.evaluator import SigmaEvaluator
from repro.exceptions import SolverError


@pytest.fixture
def planner(tiny_instance):
    return PlacementPlanner(tiny_instance)


class TestMutation:
    def test_add_updates_sigma(self, planner):
        assert planner.sigma == 0
        assert planner.add(0, 4) == 3

    def test_add_duplicate_rejected(self, planner):
        planner.add(0, 4)
        with pytest.raises(SolverError, match="already placed"):
            planner.add(4, 0)  # same undirected edge

    def test_self_loop_rejected(self, planner):
        with pytest.raises(SolverError, match="self-loop"):
            planner.add(1, 1)

    def test_remove(self, planner):
        planner.add(0, 4)
        assert planner.remove(0, 4) == 0
        assert planner.edges == []

    def test_remove_missing_rejected(self, planner):
        with pytest.raises(SolverError, match="not placed"):
            planner.remove(0, 4)

    def test_undo_add_and_remove(self, planner):
        planner.add(0, 4)
        planner.add(1, 3)
        planner.remove(0, 4)
        assert planner.undo()          # re-add (0,4)
        assert (0, 4) in planner.edges
        assert planner.undo()          # un-add (1,3)
        assert (1, 3) not in planner.edges
        assert planner.undo()          # un-add (0,4)
        assert planner.edges == []
        assert not planner.undo()      # stack empty

    def test_reset(self, planner):
        planner.add(0, 4)
        planner.reset()
        assert planner.edges == []
        assert not planner.undo()

    def test_adopt_solver_result(self, tiny_instance, planner):
        from repro.core.sandwich import SandwichApproximation

        result = SandwichApproximation(tiny_instance).solve()
        planner.adopt(result.edges)
        assert planner.sigma == result.sigma

    def test_adopt_duplicates_rejected(self, planner):
        with pytest.raises(SolverError, match="duplicate"):
            planner.adopt([(0, 4), (4, 0)])


class TestQueries:
    def test_budget_tracking(self, planner):
        assert planner.remaining_budget == 2
        planner.add(0, 4)
        assert planner.remaining_budget == 1
        assert not planner.over_budget
        planner.add(1, 3)
        planner.add(0, 2)
        assert planner.over_budget
        assert "OVER BUDGET" in planner.summary()

    def test_unsatisfied_pairs(self, planner):
        assert len(planner.unsatisfied_pairs) == 3
        planner.add(0, 4)
        assert planner.unsatisfied_pairs == []


class TestSuggestions:
    def test_suggest_matches_greedy_first_pick(self, tiny_instance, planner):
        sigma = SigmaEvaluator(tiny_instance)
        greedy_first = greedy_placement(sigma, 1)[0]
        (edge, value), *_rest = planner.suggest(1)
        iu = tiny_instance.graph.node_index(edge[0])
        iv = tiny_instance.graph.node_index(edge[1])
        assert tuple(sorted((iu, iv))) == greedy_first
        assert value == sigma.value([greedy_first])

    def test_suggestions_strictly_improving_and_sorted(self, planner):
        suggestions = planner.suggest(5)
        values = [v for _e, v in suggestions]
        assert values == sorted(values, reverse=True)
        assert all(v > planner.sigma for v in values)

    def test_no_suggestions_at_optimum(self, planner):
        planner.add(0, 4)  # all pairs satisfied
        assert planner.suggest() == []
        assert planner.apply_best() is None

    def test_apply_best_reaches_greedy_value(self, tiny_instance):
        planner = PlacementPlanner(tiny_instance)
        while planner.apply_best() is not None:
            pass
        sigma = SigmaEvaluator(tiny_instance)
        greedy_value = sigma.value(
            greedy_placement(sigma, tiny_instance.n)
        )
        assert planner.sigma == greedy_value

"""Tests for repro.viz.svg."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.problem import MSCInstance
from repro.exceptions import ValidationError
from repro.viz.svg import render_placement_svg, save_placement_svg
from tests.conftest import path_graph


@pytest.fixture
def setup():
    graph = path_graph([1.0] * 4)
    instance = MSCInstance(
        graph, [(0, 4), (1, 4)], k=2, d_threshold=1.5
    )
    positions = {i: (float(i), float(i % 2)) for i in range(5)}
    return instance, positions


class TestRenderPlacementSvg:
    def test_valid_xml(self, setup):
        instance, positions = setup
        svg = render_placement_svg(instance, positions, [(0, 4)])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_element_counts(self, setup):
        instance, positions = setup
        svg = render_placement_svg(instance, positions, [(0, 4)])
        # 4 wireless links + 2 pair demand lines + 1 shortcut = 7 lines
        assert svg.count("<line") == 7
        assert svg.count("<circle") == 5

    def test_satisfied_coloring(self, setup):
        instance, positions = setup
        with_shortcut = render_placement_svg(
            instance, positions, [(0, 4)]
        )
        without = render_placement_svg(instance, positions, [])
        assert "#2a9d4e" in with_shortcut   # satisfied green
        assert "#2a9d4e" not in without     # all violated
        assert "#d1495b" in without

    def test_explicit_satisfied_flags(self, setup):
        instance, positions = setup
        svg = render_placement_svg(
            instance, positions, [], satisfied=[True, True]
        )
        assert "#d1495b" not in svg

    def test_flag_count_validated(self, setup):
        instance, positions = setup
        with pytest.raises(ValidationError, match="flags"):
            render_placement_svg(
                instance, positions, [], satisfied=[True]
            )

    def test_missing_positions_rejected(self, setup):
        instance, _ = setup
        with pytest.raises(ValidationError, match="positions"):
            render_placement_svg(instance, {0: (0, 0)}, [])

    def test_title_escaped(self, setup):
        instance, positions = setup
        svg = render_placement_svg(
            instance, positions, [], title="<k & p>"
        )
        assert "&lt;k &amp; p&gt;" in svg

    def test_degenerate_layout_no_crash(self):
        graph = path_graph([1.0])
        instance = MSCInstance(graph, [(0, 1)], k=1, d_threshold=0.5)
        positions = {0: (1.0, 1.0), 1: (1.0, 1.0)}  # identical points
        svg = render_placement_svg(instance, positions, [])
        ET.fromstring(svg)

    def test_save_creates_file(self, setup, tmp_path):
        instance, positions = setup
        target = tmp_path / "figs" / "placement.svg"
        save_placement_svg(instance, positions, [(0, 4)], target)
        assert target.exists()
        ET.fromstring(target.read_text())

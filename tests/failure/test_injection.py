"""Tests for repro.failure.injection: the injectors, the harness, and the
robustness experiment built on top of them."""

import math

import numpy as np
import pytest

from repro.core.problem import MSCInstance
from repro.core.sandwich import SandwichApproximation
from repro.exceptions import ValidationError
from repro.failure.injection import (
    MODES,
    FaultInjectionHarness,
    InjectionOutcome,
    drift_failure_probabilities,
    drop_shortcut_edges,
    remove_random_nodes,
)
from repro.failure.models import MAX_FAILURE_PROBABILITY, length_to_failure
from repro.graph.distances import DistanceOracle
from repro.graph.graph import graph_signature
from tests.conftest import path_graph


@pytest.fixture
def solved():
    """A small solved instance: path 0..4, end pairs out of range."""
    graph = path_graph([1.0, 1.0, 1.0, 1.0])
    instance = MSCInstance(
        graph, [(0, 4), (0, 3), (1, 4)], k=2, d_threshold=1.5
    )
    placement = SandwichApproximation(instance).solve()
    return instance, placement


class TestDropShortcutEdges:
    def test_zero_severity_drops_nothing(self):
        kept, dropped = drop_shortcut_edges([(0, 1), (2, 3)], 0.0, seed=1)
        assert kept == [(0, 1), (2, 3)]
        assert dropped == []

    def test_full_severity_drops_everything(self):
        kept, dropped = drop_shortcut_edges([(0, 1), (2, 3)], 1.0, seed=1)
        assert kept == []
        assert sorted(dropped) == [(0, 1), (2, 3)]

    def test_partial_severity_preserves_order(self):
        edges = [(i, i + 1) for i in range(10)]
        kept, dropped = drop_shortcut_edges(edges, 0.5, seed=7)
        assert len(dropped) == 5
        assert kept == [e for e in edges if e not in set(dropped)]

    def test_deterministic_under_same_seed(self):
        edges = [(i, i + 1) for i in range(10)]
        a = drop_shortcut_edges(edges, 0.3, seed=42)
        b = drop_shortcut_edges(edges, 0.3, seed=42)
        assert a == b

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValidationError):
            drop_shortcut_edges([(0, 1)], 1.5)


class TestDriftFailureProbabilities:
    def test_zero_severity_is_identity(self):
        graph = path_graph([0.5, 0.2])
        drifted = drift_failure_probabilities(graph, 0.0)
        assert list(drifted.edges) == list(graph.edges)

    def test_probabilities_scale_and_clamp(self):
        graph = path_graph([0.5, 3.0])
        drifted = drift_failure_probabilities(graph, 1.0, max_drift=4.0)
        for (_u, _v, orig), (_a, _b, new) in zip(
            graph.edges, drifted.edges
        ):
            p_orig = length_to_failure(orig)
            p_new = length_to_failure(new)
            expected = min(p_orig * 4.0, MAX_FAILURE_PROBABILITY)
            assert math.isclose(p_new, expected, rel_tol=1e-9)
            assert new >= orig

    def test_node_order_preserved(self):
        graph = path_graph([1.0, 1.0])
        drifted = drift_failure_probabilities(graph, 0.5)
        assert list(drifted.nodes) == list(graph.nodes)

    def test_max_drift_below_one_rejected(self):
        with pytest.raises(ValidationError):
            drift_failure_probabilities(path_graph([1.0]), 0.5, max_drift=0.5)


class TestRemoveRandomNodes:
    def test_zero_severity_removes_nothing(self):
        graph = path_graph([1.0, 1.0, 1.0])
        survivor, lost = remove_random_nodes(graph, 0.0, seed=1)
        assert lost == set()
        assert list(survivor.nodes) == list(graph.nodes)
        assert survivor.number_of_edges() == graph.number_of_edges()

    def test_full_severity_removes_all_unprotected(self):
        graph = path_graph([1.0, 1.0, 1.0])
        survivor, lost = remove_random_nodes(graph, 1.0, seed=1)
        assert lost == set(graph.nodes)
        assert survivor.number_of_nodes() == 0

    def test_protected_nodes_survive(self):
        graph = path_graph([1.0, 1.0, 1.0])
        survivor, lost = remove_random_nodes(
            graph, 1.0, seed=1, protected=[0, 2]
        )
        assert lost == {1, 3}
        assert set(survivor.nodes) == {0, 2}

    def test_incident_edges_removed_with_nodes(self):
        graph = path_graph([1.0, 1.0, 1.0])
        survivor, lost = remove_random_nodes(graph, 0.5, seed=3)
        for u, v, _length in survivor.edges:
            assert u not in lost and v not in lost

    def test_deterministic_under_same_seed(self):
        graph = path_graph([1.0] * 9)
        _a, lost_a = remove_random_nodes(graph, 0.4, seed=5)
        _b, lost_b = remove_random_nodes(graph, 0.4, seed=5)
        assert lost_a == lost_b


class TestFaultInjectionHarness:
    def test_unknown_mode_rejected(self, solved):
        instance, placement = solved
        harness = FaultInjectionHarness(
            instance, placement.edges, trials=20, seed=1
        )
        with pytest.raises(ValidationError):
            harness.run("meteor_strike", 0.5)

    def test_zero_severity_reproduces_placement(self, solved):
        instance, placement = solved
        harness = FaultInjectionHarness(
            instance, placement.edges, trials=20, seed=1
        )
        for mode in MODES:
            outcome = harness.run(mode, 0.0)
            assert outcome.sigma == placement.sigma
            assert outcome.dropped_shortcuts == 0
            assert outcome.lost_nodes == 0

    def test_full_shortcut_outage_strips_placement(self, solved):
        instance, placement = solved
        harness = FaultInjectionHarness(
            instance, placement.edges, trials=20, seed=1
        )
        outcome = harness.run("shortcut_outage", 1.0)
        assert outcome.dropped_shortcuts == len(placement.edges)
        # Without shortcuts no pair meets the requirement (they were
        # selected as initially unsatisfied).
        assert outcome.sigma == 0

    def test_full_node_loss_is_survivable(self, solved):
        """Severity-1 node loss leaves an empty network; the harness must
        return a zeroed outcome, not crash."""
        instance, placement = solved
        harness = FaultInjectionHarness(
            instance, placement.edges, trials=10, seed=1
        )
        outcome = harness.run("node_loss", 1.0)
        assert outcome.lost_nodes == instance.n
        assert outcome.sigma == 0
        assert outcome.delivery_rate == 0.0

    def test_runs_deterministic_and_order_independent(self, solved):
        instance, placement = solved
        kwargs = dict(trials=20, seed=9)
        h1 = FaultInjectionHarness(instance, placement.edges, **kwargs)
        h2 = FaultInjectionHarness(instance, placement.edges, **kwargs)
        # Different call orders, same per-cell outcomes.
        a = [h1.run("node_loss", 0.5), h1.run("shortcut_outage", 0.5)]
        b = [h2.run("shortcut_outage", 0.5), h2.run("node_loss", 0.5)]
        assert a[0] == b[1]
        assert a[1] == b[0]

    def test_sweep_covers_all_severities(self, solved):
        instance, placement = solved
        harness = FaultInjectionHarness(
            instance, placement.edges, trials=10, seed=1
        )
        outcomes = harness.sweep("probability_drift", [0.0, 0.5, 1.0])
        assert [o.severity for o in outcomes] == [0.0, 0.5, 1.0]
        # Monotone mode: drifting probabilities can only hurt σ.
        assert outcomes[0].sigma >= outcomes[-1].sigma

    def test_sigma_fraction(self):
        outcome = InjectionOutcome(
            mode="node_loss", severity=1.0, sigma=3, num_pairs=4,
            delivery_rate=0.5, pairs_meeting_requirement=2,
        )
        assert outcome.sigma_fraction == 0.75
        empty = InjectionOutcome(
            mode="node_loss", severity=1.0, sigma=0, num_pairs=0,
            delivery_rate=0.0, pairs_meeting_requirement=0,
        )
        assert empty.sigma_fraction == 1.0


class TestRobustnessExperiment:
    def test_quick_scale_shape(self):
        from repro.experiments.robustness_exp import run_robustness

        result = run_robustness(scale="quick", seed=3)
        assert result.name == "robustness"
        assert len(result.tables) == 1
        assert len(result.series) == 2
        severities = result.series[0]["x"]
        rows = result.tables[0]["rows"]
        assert len(rows) == len(MODES) * len(severities)
        # Severity 0 must reproduce the baseline in every mode.
        baseline = result.params["baseline_sigma"]
        for row in rows:
            if row[1] == 0.0:
                assert row[2] == baseline

    def test_jobs_byte_identical(self):
        from repro.experiments.robustness_exp import run_robustness

        serial = run_robustness(scale="quick", seed=3, jobs=1)
        parallel = run_robustness(scale="quick", seed=3, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_registered_as_supplementary(self):
        from repro.experiments.runner import (
            all_experiment_names,
            experiment_names,
        )

        assert "robustness" in all_experiment_names()
        assert "robustness" not in experiment_names()


class TestScenarioOracleMemo:
    """The harness must build one oracle per *distinct* perturbed graph:
    an unperturbed scenario adopts the base APSP, a perturbed one never
    reuses it."""

    def _harness(self, solved):
        instance, placement = solved
        return instance, FaultInjectionHarness(
            instance, placement.edges, trials=10, seed=1
        )

    def test_zero_severity_drift_is_a_memo_hit(self, solved):
        instance, harness = self._harness(solved)
        before = DistanceOracle.build_count
        harness.run("probability_drift", 0.0)
        # The severity-0 graph has the base graph's content, so its
        # already-built APSP is adopted — no Dijkstra, no fresh build.
        assert harness.oracle_memo_hits == 1
        assert harness.oracle_memo_builds == 0
        assert DistanceOracle.build_count == before

    def test_perturbed_graph_builds_fresh_oracle(self, solved):
        instance, harness = self._harness(solved)
        harness.run("probability_drift", 1.0)
        assert harness.oracle_memo_builds == 1
        assert harness.oracle_memo_hits == 0
        # No stale reuse: the drifted graph's matrix must differ from the
        # base matrix (drift inflates every length), or the cell would
        # silently report the unperturbed sigma.
        base_sig = graph_signature(instance.graph)
        perturbed = [
            matrix
            for sig, matrix in harness._matrix_memo.items()
            if sig != base_sig
        ]
        assert len(perturbed) == 1
        assert not np.array_equal(perturbed[0], instance.oracle.matrix)

    def test_repeated_cell_reuses_the_perturbed_matrix(self, solved):
        instance, harness = self._harness(solved)
        harness.run("probability_drift", 1.0)
        harness.run("probability_drift", 1.0)
        assert harness.oracle_memo_builds == 1
        assert harness.oracle_memo_hits == 1

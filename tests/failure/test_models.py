"""Tests for repro.failure.models — the probability/length transform is the
mathematical foundation of the whole reduction (paper Eq. 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.failure.models import (
    ConstantFailure,
    DistanceProportionalFailure,
    ExponentialDistanceFailure,
    failure_to_length,
    length_to_failure,
    path_failure_probability,
    path_length_from_failures,
)


class TestTransform:
    def test_zero_probability_zero_length(self):
        assert failure_to_length(0.0) == 0.0

    def test_known_value(self):
        assert failure_to_length(0.5) == pytest.approx(math.log(2))

    def test_probability_one_rejected(self):
        with pytest.raises(ValidationError):
            failure_to_length(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            failure_to_length(-0.1)

    def test_inverse_known_value(self):
        assert length_to_failure(math.log(2)) == pytest.approx(0.5)

    def test_negative_length_rejected(self):
        with pytest.raises(ValidationError):
            length_to_failure(-0.1)

    @given(st.floats(0.0, 0.999999))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, p):
        assert length_to_failure(failure_to_length(p)) == pytest.approx(
            p, abs=1e-12
        )

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, a, b):
        if a < b:
            assert failure_to_length(a) < failure_to_length(b)


class TestPathFailure:
    def test_single_edge(self):
        assert path_failure_probability([0.3]) == pytest.approx(0.3)

    def test_two_edges_eq1(self):
        # 1 - (1-0.1)(1-0.2) = 0.28
        assert path_failure_probability([0.1, 0.2]) == pytest.approx(0.28)

    def test_empty_path_never_fails(self):
        assert path_failure_probability([]) == 0.0

    def test_zero_probability_edges_ignored(self):
        assert path_failure_probability([0.0, 0.4, 0.0]) == pytest.approx(
            0.4
        )

    @given(st.lists(st.floats(0.0, 0.9), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_length_space_equivalence(self, probs):
        """Eq. (1): p = 1 - exp(-sum of lengths). The additive length space
        must agree with the multiplicative survival space."""
        total_length = path_length_from_failures(probs)
        assert path_failure_probability(probs) == pytest.approx(
            -math.expm1(-total_length), abs=1e-12
        )

    @given(st.lists(st.floats(0.0, 0.9), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_path_at_least_as_bad_as_worst_edge(self, probs):
        assert path_failure_probability(probs) >= max(probs) - 1e-12


class TestConstantFailure:
    def test_ignores_distance(self):
        model = ConstantFailure(0.2)
        assert model.failure_probability(0.0) == 0.2
        assert model.failure_probability(100.0) == 0.2

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            ConstantFailure(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            ConstantFailure(0.2).failure_probability(-1.0)


class TestDistanceProportional:
    def test_proportionality(self):
        model = DistanceProportionalFailure(0.01)
        assert model.failure_probability(10.0) == pytest.approx(0.1)
        assert model.failure_probability(20.0) == pytest.approx(0.2)

    def test_cap_applies(self):
        model = DistanceProportionalFailure(1.0, cap=0.5)
        assert model.failure_probability(100.0) == 0.5

    def test_for_radius_hits_max_at_radius(self):
        model = DistanceProportionalFailure.for_radius(200.0, 0.25)
        assert model.failure_probability(200.0) == pytest.approx(0.25)
        assert model.failure_probability(100.0) == pytest.approx(0.125)

    def test_for_radius_zero_radius_rejected(self):
        with pytest.raises(ValueError):
            DistanceProportionalFailure.for_radius(0.0, 0.1)

    def test_zero_distance_reliable(self):
        model = DistanceProportionalFailure.for_radius(1.0, 0.3)
        assert model.failure_probability(0.0) == 0.0

    def test_repr(self):
        assert "coefficient" in repr(DistanceProportionalFailure(0.5))


class TestExponentialDistance:
    def test_length_is_linear_in_distance(self):
        model = ExponentialDistanceFailure(rate=2.0)
        p = model.failure_probability(3.0)
        assert failure_to_length(p) == pytest.approx(6.0)

    def test_zero_distance(self):
        assert ExponentialDistanceFailure(1.0).failure_probability(0.0) == 0.0

    def test_bounded_below_one(self):
        assert ExponentialDistanceFailure(1.0).failure_probability(1e6) < 1.0


class TestNonFiniteInputs:
    """NaN/inf must be rejected at the model boundary, not propagate into
    distance matrices as silent poison."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -float("inf")]
    )
    def test_failure_to_length_rejects_non_finite(self, value):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            failure_to_length(value)

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -float("inf")]
    )
    def test_length_to_failure_rejects_non_finite(self, value):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            length_to_failure(value)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random
from typing import List, Tuple

import pytest

from repro.core.problem import MSCInstance
from repro.graph.graph import WirelessGraph


def path_graph(lengths: List[float]) -> WirelessGraph:
    """Path 0-1-...-n with the given edge lengths."""
    graph = WirelessGraph()
    graph.add_nodes(range(len(lengths) + 1))
    for i, length in enumerate(lengths):
        graph.add_edge(i, i + 1, length=length)
    return graph


def star_graph(n_leaves: int, length: float = 1.0) -> WirelessGraph:
    """Star with center 0 and leaves 1..n, all edges the same length."""
    graph = WirelessGraph()
    graph.add_node(0)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf, length=length)
    return graph


def grid_graph(rows: int, cols: int, length: float = 1.0) -> WirelessGraph:
    """rows x cols grid; node (r, c) is named r * cols + c."""
    graph = WirelessGraph()
    graph.add_nodes(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1, length=length)
            if r + 1 < rows:
                graph.add_edge(node, node + cols, length=length)
    return graph


def random_graph(
    n: int, edge_prob: float, rng: random.Random,
    max_length: float = 2.0,
) -> WirelessGraph:
    """Erdos-Renyi-style random weighted graph (may be disconnected)."""
    graph = WirelessGraph()
    graph.add_nodes(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_prob:
                graph.add_edge(i, j, length=rng.uniform(0.0, max_length))
    return graph


def paper_counterexample() -> Tuple[WirelessGraph, List[Tuple[int, int]]]:
    """The non-submodularity counterexample of paper §V-A: three isolated
    nodes, S = all three pairs, d_t = 1."""
    graph = WirelessGraph()
    graph.add_nodes([0, 1, 2])
    pairs = [(0, 1), (0, 2), (1, 2)]
    return graph, pairs


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def tiny_instance() -> MSCInstance:
    """Path 0-1-2-3-4 with unit edges, threshold 1.5: the end pairs are too
    far apart until shortcuts arrive."""
    graph = path_graph([1.0, 1.0, 1.0, 1.0])
    return MSCInstance(
        graph, [(0, 4), (0, 3), (1, 4)], k=2, d_threshold=1.5
    )


@pytest.fixture
def triangle_instance() -> MSCInstance:
    """The paper's §V-A counterexample as an instance (k=2, d_t=1)."""
    graph, pairs = paper_counterexample()
    return MSCInstance(graph, pairs, k=2, d_threshold=1.0)


def assert_close(a: float, b: float, tol: float = 1e-9) -> None:
    assert math.isclose(a, b, rel_tol=tol, abs_tol=tol), (a, b)

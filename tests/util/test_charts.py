"""Tests for repro.util.charts."""

import math

import pytest

from repro.util.charts import render_chart


class TestRenderChart:
    def test_basic_structure(self):
        text = render_chart(
            [1, 2, 3], [("A", [1, 2, 3])], width=20, height=5, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len([l for l in lines if "|" in l]) == 5
        assert any("o=A" in l for l in lines)  # legend

    def test_min_max_labels(self):
        text = render_chart([0, 10], [("A", [2, 8])], height=6)
        assert "8" in text.splitlines()[0]
        assert text.splitlines()[5].lstrip().startswith("2")

    def test_monotone_series_marker_positions(self):
        text = render_chart(
            [0, 1], [("up", [0, 10])], width=10, height=5
        )
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        # Max value lands in the top row, rightmost column.
        assert rows[0].rstrip().endswith("o")
        # Min value lands in the bottom row, leftmost column.
        assert rows[-1].startswith("o")

    def test_multiple_series_markers(self):
        text = render_chart(
            [0, 1], [("A", [0, 1]), ("B", [1, 0])]
        )
        assert "o=A" in text and "x=B" in text

    def test_constant_series_handled(self):
        text = render_chart([0, 1], [("flat", [5, 5])])
        assert "flat" in text

    def test_nonfinite_values_skipped(self):
        text = render_chart([0, 1, 2], [("A", [1, math.inf, 3])])
        assert "o=A" in text

    def test_all_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            render_chart([0, 1], [("A", [math.inf, math.nan])])

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            render_chart([], [("A", [])])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            render_chart([0, 1], [("A", [1])])


class TestResultChartIntegration:
    def test_render_with_charts(self):
        from repro.experiments.results import ExperimentResult

        result = ExperimentResult(name="t", title="T")
        result.add_series("fig", "k", [1, 2, 3], [("AA", [1, 4, 9])])
        plain = result.render()
        charted = result.render(charts=True)
        assert len(charted) > len(plain)
        assert "o=AA" in charted

    def test_categorical_x_skips_chart(self):
        from repro.experiments.results import ExperimentResult

        result = ExperimentResult(name="t", title="T")
        result.add_series("fig", "kind", ["a", "b"], [("AA", [1, 2])])
        # must not raise, chart silently skipped
        text = result.render(charts=True)
        assert "o=AA" not in text

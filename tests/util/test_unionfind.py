"""Tests for repro.util.unionfind."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.unionfind import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.component_count() == 3
        assert not uf.connected(1, 2)

    def test_union_merges(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.component_count() == 1

    def test_transitive_connectivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert "a" in uf

    def test_len_counts_elements(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        assert len(uf) == 4
        assert uf.component_count() == 2

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        root = uf.find(1)
        assert uf.union(1, 2) == root
        assert uf.component_count() == 1

    def test_components_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        comps = sorted(sorted(c) for c in uf.components())
        assert comps == [[0, 1], [2, 3], [4], [5]]

    def test_hashable_elements(self):
        uf = UnionFind()
        uf.union(("a", 1), ("b", 2))
        assert uf.connected(("a", 1), ("b", 2))

    def test_iter_yields_registered(self):
        uf = UnionFind([1, 2])
        assert sorted(uf) == [1, 2]


class TestAgainstReference:
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_partition(self, unions):
        """Union-find connectivity must match a naive set-merging model."""
        uf = UnionFind()
        naive = {}  # element -> frozenset id via mutable sets

        def naive_find(x):
            naive.setdefault(x, {x})
            return naive[x]

        for a, b in unions:
            uf.union(a, b)
            sa, sb = naive_find(a), naive_find(b)
            if sa is not sb:
                merged = sa | sb
                for e in merged:
                    naive[e] = merged
        for a in naive:
            for b in naive:
                assert uf.connected(a, b) == (naive[a] is naive[b])

    @given(st.integers(2, 30), st.integers(0, 60), st.integers())
    @settings(max_examples=40, deadline=None)
    def test_component_count_invariant(self, n, n_unions, seed):
        """#components = #elements - #merging unions."""
        rng = random.Random(seed)
        uf = UnionFind(range(n))
        merges = 0
        for _ in range(n_unions):
            a, b = rng.randrange(n), rng.randrange(n)
            if not uf.connected(a, b):
                merges += 1
            uf.union(a, b)
        assert uf.component_count() == n - merges

"""Tests for repro.util.rng."""

import random
import subprocess
import sys

from repro.util.rng import ensure_rng, ensure_seed, spawn_rng


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        rng = ensure_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_rng_passes_through(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng

    def test_tuple_seed_is_deterministic(self):
        a = ensure_rng((1, "fig3", 0.14))
        b = ensure_rng((1, "fig3", 0.14))
        assert a.random() == b.random()

    def test_tuple_seed_components_matter(self):
        assert (
            ensure_rng((1, "fig3", 0.14)).random()
            != ensure_rng((1, "fig3", 0.18)).random()
        )

    def test_list_seed_accepted(self):
        assert isinstance(ensure_rng([1, 2]), random.Random)

    def test_string_seed(self):
        assert ensure_rng("abc").random() == ensure_rng("abc").random()


class TestSpawnRng:
    def test_child_is_deterministic_given_parent_state(self):
        a = spawn_rng(random.Random(5), "x")
        b = spawn_rng(random.Random(5), "x")
        assert a.random() == b.random()

    def test_labels_fork_differently(self):
        parent1 = random.Random(5)
        parent2 = random.Random(5)
        assert (
            spawn_rng(parent1, "x").random()
            != spawn_rng(parent2, "y").random()
        )

    def test_child_independent_of_parent_consumption(self):
        parent = random.Random(5)
        child = spawn_rng(parent, "x")
        before = child.random()
        parent.random()  # consuming the parent does not rewind the child
        child2 = spawn_rng(random.Random(5), "x")
        assert child2.random() == before

    def test_label_stable_across_hash_seeds(self):
        """Labeled spawns must not depend on PYTHONHASHSEED — built-in
        string hashing is salted per process, which once made fig5 differ
        between interpreter launches."""
        script = (
            "import random; from repro.util.rng import spawn_rng; "
            "print(spawn_rng(random.Random(5), 'trace').getrandbits(64))"
        )
        import os

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": src},
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for hash_seed in ("1", "2")
        }
        assert len(outputs) == 1


class TestEnsureSeed:
    def test_passthrough(self):
        assert ensure_seed(3, fallback=9) == 3

    def test_fallback_on_none(self):
        assert ensure_seed(None, fallback=9) == 9

"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_cell, render_series, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456, precision=3) == "0.123"

    def test_int_passthrough(self):
        assert format_cell(7) == "7"

    def test_bool_not_formatted_as_float(self):
        assert format_cell(True) == "True"

    def test_string(self):
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["k", "ratio"], [[2, 0.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("k ")
        assert set(lines[1]) <= {"-", "+"}
        assert "0.5000" in lines[2]
        assert lines[3].startswith("10")

    def test_title(self):
        assert render_table(["a"], [[1]], title="T").splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert text.splitlines()[0] == "a"

    def test_wide_cell_grows_separator(self):
        text = render_table(["a"], [["longvalue"]])
        separator = text.splitlines()[1]
        assert len(separator) >= len("longvalue")


class TestRenderSeries:
    def test_columns_per_series(self):
        text = render_series(
            "k", [2, 4], [("AA", [5, 9]), ("EA", [3, 4])], title="fig"
        )
        lines = text.splitlines()
        assert lines[0] == "fig"
        assert "AA" in lines[1] and "EA" in lines[1]
        assert lines[3].startswith("2")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="series"):
            render_series("k", [1, 2], [("AA", [1])])

"""Tests for repro.util.resilience: deterministic backoff, retry_call,
call_with_timeout."""

import time

import pytest

from repro.exceptions import TaskError, TaskTimeoutError, ValidationError
from repro.util.resilience import (
    RetryPolicy,
    call_with_timeout,
    policy_for_retries,
    retry_call,
)


class TestRetryPolicy:
    def test_defaults_mean_single_attempt(self):
        assert RetryPolicy().attempts == 1
        assert list(RetryPolicy().delays("key")) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, factor=2.0, max_delay=0.3,
            jitter=0.0,
        )
        assert list(policy.delays("k")) == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.25)
        first = list(policy.delays(("fig1", "quick", 1)))
        second = list(policy.delays(("fig1", "quick", 1)))
        assert first == second  # pure function of (key, attempt)
        other = list(policy.delays(("fig2", "quick", 1)))
        assert first != other  # distinct keys decorrelate

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(attempts=2, base_delay=1.0, jitter=0.25)
        for key in range(50):
            delay = policy.delay(1, key)
            assert 0.75 <= delay <= 1.25

    def test_policy_for_retries(self):
        assert policy_for_retries(0).attempts == 1
        assert policy_for_retries(3).attempts == 4
        with pytest.raises(ValidationError):
            policy_for_retries(-1)


class TestCallWithTimeout:
    def test_no_timeout_runs_inline(self):
        assert call_with_timeout(lambda x: x + 1, (41,)) == 42

    def test_fast_call_within_timeout(self):
        assert call_with_timeout(lambda: "ok", timeout=5.0) == "ok"

    def test_exception_propagates(self):
        with pytest.raises(KeyError):
            call_with_timeout(lambda: {}["missing"], timeout=5.0)

    def test_timeout_raises_task_timeout_error(self):
        with pytest.raises(TaskTimeoutError) as excinfo:
            call_with_timeout(
                time.sleep, (10,), timeout=0.05, task=("fig1", 1)
            )
        assert excinfo.value.task == ("fig1", 1)


class TestRetryCall:
    def test_success_first_try(self):
        calls = []
        result = retry_call(lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1

    def test_succeeds_after_transient_failures(self):
        state = {"left": 2}
        slept = []

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise RuntimeError("transient")
            return "recovered"

        result = retry_call(
            flaky,
            policy=RetryPolicy(attempts=3, base_delay=0.01),
            key="job",
            sleep=slept.append,
        )
        assert result == "recovered"
        assert len(slept) == 2  # backed off twice

    def test_exhausted_budget_wraps_in_task_error(self):
        observed = []

        def always_fails():
            raise ValueError("boom")

        with pytest.raises(TaskError) as excinfo:
            retry_call(
                always_fails,
                policy=RetryPolicy(attempts=3, base_delay=0.0),
                key=("table1", "quick", 7),
                sleep=lambda _t: None,
                on_failure=lambda attempt, exc: observed.append(attempt),
            )
        error = excinfo.value
        assert error.task == ("table1", "quick", 7)
        assert error.attempts == 3
        assert "boom" in error.cause_traceback
        assert isinstance(error.__cause__, ValueError)
        assert observed == [1, 2, 3]

    def test_timeout_failure_becomes_task_timeout_error(self):
        with pytest.raises(TaskTimeoutError) as excinfo:
            retry_call(
                time.sleep, (10,),
                policy=RetryPolicy(attempts=2, base_delay=0.0),
                key="slow",
                timeout=0.05,
                sleep=lambda _t: None,
            )
        assert excinfo.value.attempts == 2

    def test_non_retryable_exception_passes_through(self):
        def fails():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            retry_call(fails, policy=RetryPolicy(attempts=3))

    def test_retry_on_filter(self):
        def fails():
            raise ValueError("not retried")

        with pytest.raises(ValueError):
            retry_call(
                fails,
                policy=RetryPolicy(attempts=3),
                retry_on=(OSError,),
            )

"""Tests for repro.util.serialization."""

import dataclasses

import pytest

from repro.util.serialization import dump_json, load_json


class TestRoundTrip:
    def test_basic_roundtrip(self, tmp_path):
        data = {"a": 1, "b": [1, 2.5, "x"], "c": {"nested": True}}
        path = tmp_path / "out.json"
        dump_json(data, path)
        assert load_json(path) == data

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "out.json"
        dump_json({"x": 1}, path)
        assert load_json(path) == {"x": 1}

    def test_sets_serialized_sorted(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"s": {3, 1, 2}}, path)
        assert load_json(path) == {"s": [1, 2, 3]}

    def test_dataclass_serialized_as_dict(self, tmp_path):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        path = tmp_path / "out.json"
        dump_json({"p": Point(1, 2)}, path)
        assert load_json(path) == {"p": {"x": 1, "y": 2}}

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            dump_json({"f": object()}, tmp_path / "out.json")

    def test_output_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"b": 1, "a": 2}, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

"""Tests for repro.util.serialization."""

import dataclasses
import json
import os

import pytest

from repro.util.serialization import (
    TMP_SUFFIX,
    TaskJournal,
    canonical_key,
    dump_json,
    load_json,
)


class TestRoundTrip:
    def test_basic_roundtrip(self, tmp_path):
        data = {"a": 1, "b": [1, 2.5, "x"], "c": {"nested": True}}
        path = tmp_path / "out.json"
        dump_json(data, path)
        assert load_json(path) == data

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "out.json"
        dump_json({"x": 1}, path)
        assert load_json(path) == {"x": 1}

    def test_sets_serialized_sorted(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"s": {3, 1, 2}}, path)
        assert load_json(path) == {"s": [1, 2, 3]}

    def test_dataclass_serialized_as_dict(self, tmp_path):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        path = tmp_path / "out.json"
        dump_json({"p": Point(1, 2)}, path)
        assert load_json(path) == {"p": {"x": 1, "y": 2}}

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            dump_json({"f": object()}, tmp_path / "out.json")

    def test_output_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"b": 1, "a": 2}, path)
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


class TestAtomicWrite:
    def test_failed_write_preserves_old_content(self, tmp_path):
        """A serialization error mid-write must leave the previous file
        untouched — the atomicity contract checkpointing relies on."""
        path = tmp_path / "out.json"
        dump_json({"v": 1}, path)
        with pytest.raises(TypeError):
            dump_json({"v": 2, "bad": object()}, path)
        assert load_json(path) == {"v": 1}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"v": 1}, path)
        with pytest.raises(TypeError):
            dump_json({"bad": object()}, path)
        leftovers = [
            p for p in os.listdir(tmp_path) if p.endswith(TMP_SUFFIX)
        ]
        assert leftovers == []

    def test_overwrite_replaces_completely(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"long": "x" * 10_000}, path)
        dump_json({"v": 2}, path)
        assert load_json(path) == {"v": 2}


class TestCanonicalKey:
    def test_tuple_and_list_coincide(self):
        assert canonical_key(("fig1", "quick", 1)) == canonical_key(
            ["fig1", "quick", 1]
        )

    def test_dict_order_insensitive(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key(
            {"b": 2, "a": 1}
        )


class TestTaskJournal:
    def test_round_trip(self, tmp_path):
        journal = TaskJournal(tmp_path / "ckpt")
        key = ("fig1", "quick", 3)
        journal.put(key, {"sigma": 7})
        assert journal.has(key)
        assert journal.load(key) == {"sigma": 7}
        assert len(journal) == 1

    def test_missing_key_raises(self, tmp_path):
        journal = TaskJournal(tmp_path)
        assert not journal.has("nope")
        with pytest.raises(KeyError):
            journal.load("nope")

    def test_tuple_key_survives_json_round_trip(self, tmp_path):
        """A key written as a tuple is found again after it has been
        round-tripped through JSON (where it becomes a list)."""
        journal = TaskJournal(tmp_path)
        journal.put(("table1", "quick", 1), "payload")
        assert journal.load(["table1", "quick", 1]) == "payload"

    def test_corrupt_record_treated_as_missing(self, tmp_path):
        journal = TaskJournal(tmp_path)
        key = ("fig2", "quick", 1)
        journal.put(key, "good")
        path = journal._path(key)
        path.write_text("{ truncated", encoding="utf-8")
        with pytest.raises(KeyError):
            journal.load(key)

    def test_items_skips_corrupt_files(self, tmp_path):
        journal = TaskJournal(tmp_path)
        journal.put("a", 1)
        journal.put("b", 2)
        (tmp_path / "task-deadbeef.json").write_text("not json")
        items = dict(
            (canonical_key(k), v) for k, v in journal.items()
        )
        assert items == {'"a"': 1, '"b"': 2}
        assert len(journal) == 2

    def test_foreign_record_with_wrong_key_is_missing(self, tmp_path):
        journal = TaskJournal(tmp_path)
        path = journal._path("mine")
        path.write_text(
            json.dumps({"key": "theirs", "payload": 1}), encoding="utf-8"
        )
        with pytest.raises(KeyError):
            journal.load("mine")

    def test_put_is_idempotent_overwrite(self, tmp_path):
        journal = TaskJournal(tmp_path)
        journal.put("k", 1)
        journal.put("k", 2)
        assert journal.load("k") == 2
        assert len(journal) == 1

    def test_directory_created_on_demand(self, tmp_path):
        nested = tmp_path / "a" / "b" / "ckpt"
        journal = TaskJournal(nested)
        journal.put("k", 1)
        assert nested.is_dir()

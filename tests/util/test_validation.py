"""Tests for repro.util.validation."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 0, 1])
    def test_valid(self, value):
        assert check_probability(value) == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
    def test_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_probability(value)

    @pytest.mark.parametrize("value", ["0.5", None, True, [0.5]])
    def test_wrong_type(self, value):
        with pytest.raises(ValidationError):
            check_probability(value)

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="p_t"):
            check_probability(2.0, "p_t")


class TestCheckFraction:
    def test_one_rejected(self):
        """Fractions are [0, 1): a failure probability of exactly 1 has an
        infinite edge length."""
        with pytest.raises(ValidationError):
            check_fraction(1.0)

    def test_zero_accepted(self):
        assert check_fraction(0) == 0.0

    def test_just_below_one(self):
        assert check_fraction(0.999999) == 0.999999


class TestCheckNonnegative:
    def test_zero_ok(self):
        assert check_nonnegative(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-12)

    def test_infinity_rejected(self):
        with pytest.raises(ValidationError):
            check_nonnegative(math.inf)


class TestCheckPositive:
    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_positive_ok(self):
        assert check_positive(0.1) == 0.1


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3) == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_nonpositive_rejected(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value)

    @pytest.mark.parametrize("value", [1.0, "1", True])
    def test_wrong_type_rejected(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value)


class TestCheckNonnegativeInt:
    def test_zero_ok(self):
        assert check_nonnegative_int(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1)

"""Tests for repro.sim.overhead (transmission accounting)."""

import math

import pytest

from repro.exceptions import SolverError
from repro.graph.graph import WirelessGraph
from repro.sim.delivery import DeliverySimulator
from repro.sim.overhead import (
    OverheadReport,
    _flood_transmissions,
    _path_transmissions,
    compare_overheads,
    measure_overhead,
)
from tests.conftest import path_graph


def reliable_path(n_edges=3):
    g = WirelessGraph()
    for i in range(n_edges):
        g.add_edge(i, i + 1, failure_probability=0.0)
    return g


class TestPathTransmissions:
    def test_full_path_delivered(self):
        sent, ok = _path_transmissions([0, 1, 2, 3], set())
        assert (sent, ok) == (3, True)

    def test_stops_at_first_failure(self):
        sent, ok = _path_transmissions([0, 1, 2, 3], {(1, 2)})
        assert (sent, ok) == (2, False)

    def test_failure_orientation_irrelevant(self):
        sent, ok = _path_transmissions([0, 1, 2], {(1, 0)})
        assert (sent, ok) == (1, False)


class TestFloodTransmissions:
    def test_counts_component_links_once(self):
        g = reliable_path(3)
        sent, ok = _flood_transmissions(g, set(), 0, 3)
        assert sent == 3
        assert ok

    def test_failed_link_blocks_and_reduces(self):
        g = reliable_path(3)
        sent, ok = _flood_transmissions(g, {(1, 2)}, 0, 3)
        assert sent == 1  # only 0-1 survives in source component
        assert not ok


class TestMeasureOverhead:
    def test_reliable_best_path_overhead_is_path_length(self):
        g = reliable_path(3)
        sim = DeliverySimulator(g)
        report = measure_overhead(
            sim, [(0, 3)], strategy="best_path", trials=10, seed=1
        )
        assert report.deliveries == 10
        assert report.per_delivery == pytest.approx(3.0)

    def test_flooding_overhead_exceeds_best_path(self):
        """On a network with redundancy, flooding pays for every surviving
        link; best-path pays only its own hops."""
        g = WirelessGraph()
        # 2 parallel routes + a dangling subtree that flooding also wets.
        g.add_edge(0, 1, failure_probability=0.05)
        g.add_edge(1, 3, failure_probability=0.05)
        g.add_edge(0, 2, failure_probability=0.05)
        g.add_edge(2, 3, failure_probability=0.05)
        g.add_edge(1, 4, failure_probability=0.05)
        g.add_edge(4, 5, failure_probability=0.05)
        sim = DeliverySimulator(g)
        best = measure_overhead(
            sim, [(0, 3)], strategy="best_path", trials=300, seed=2
        )
        flood = measure_overhead(
            sim, [(0, 3)], strategy="flooding", trials=300, seed=2
        )
        assert flood.per_delivery > best.per_delivery

    def test_multipath_between(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.3)
        g.add_edge(1, 3, failure_probability=0.3)
        g.add_edge(0, 2, failure_probability=0.3)
        g.add_edge(2, 3, failure_probability=0.3)
        sim = DeliverySimulator(g)
        best = measure_overhead(
            sim, [(0, 3)], strategy="best_path", trials=400, seed=3
        )
        multi = measure_overhead(
            sim, [(0, 3)], strategy="multipath", trials=400, seed=3,
            multipath_k=2,
        )
        # multipath delivers more...
        assert multi.deliveries >= best.deliveries
        # ...and spends at least as many transmissions in total.
        assert multi.transmissions >= best.transmissions

    def test_zero_deliveries_inf_overhead(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.0)
        g.add_node(2)
        sim = DeliverySimulator(g)
        report = measure_overhead(
            sim, [(0, 2)], strategy="flooding", trials=5, seed=4
        )
        assert report.deliveries == 0
        assert math.isinf(report.per_delivery)

    def test_unknown_strategy_rejected(self):
        sim = DeliverySimulator(reliable_path(1))
        with pytest.raises(SolverError, match="unknown strategy"):
            measure_overhead(sim, [(0, 1)], strategy="warp")

    def test_deterministic_for_seed(self):
        g = path_graph([0.3, 0.3])
        sim = DeliverySimulator(g)
        a = measure_overhead(sim, [(0, 2)], trials=50, seed=5)
        b = measure_overhead(sim, [(0, 2)], trials=50, seed=5)
        assert (a.deliveries, a.transmissions) == (
            b.deliveries, b.transmissions,
        )


class TestCompareOverheads:
    def test_all_strategies_reported(self):
        g = path_graph([0.2, 0.2])
        reports = compare_overheads(g, [(0, 2)], trials=30, seed=6)
        assert [r.strategy for r in reports] == [
            "best_path", "multipath", "flooding",
        ]

    def test_shortcuts_reduce_best_path_overhead(self):
        """A direct shortcut turns a multi-hop route into a single reliable
        hop: 1 transmission per delivery."""
        g = path_graph([0.2] * 4)
        with_shortcut = compare_overheads(
            g, [(0, 4)], shortcuts=[(0, 4)], trials=50, seed=7
        )[0]
        assert with_shortcut.per_delivery == pytest.approx(1.0)

"""Tests for repro.sim.sampling."""

import random

import pytest

from repro.sim.sampling import (
    adjacency_after_failures,
    sample_failed_edges,
    surviving_graph,
)
from repro.graph.graph import WirelessGraph
from tests.conftest import path_graph


def reliable_and_fragile():
    g = WirelessGraph()
    g.add_edge(0, 1, failure_probability=0.0)   # never fails
    g.add_edge(1, 2, failure_probability=0.999)  # almost always fails
    return g


class TestSampleFailedEdges:
    def test_zero_probability_never_fails(self):
        g = reliable_and_fragile()
        rng = random.Random(1)
        for _ in range(50):
            assert (0, 1) not in sample_failed_edges(g, rng)

    def test_high_probability_fails_often(self):
        g = reliable_and_fragile()
        rng = random.Random(1)
        failures = sum(
            (1, 2) in sample_failed_edges(g, rng) for _ in range(200)
        )
        assert failures > 150

    def test_frequency_matches_probability(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.3)
        rng = random.Random(7)
        trials = 3000
        failures = sum(
            (0, 1) in sample_failed_edges(g, rng) for _ in range(trials)
        )
        assert failures / trials == pytest.approx(0.3, abs=0.03)

    def test_deterministic_for_seed(self):
        g = path_graph([0.5, 0.5, 0.5])
        a = [sample_failed_edges(g, random.Random(3)) for _ in range(1)]
        b = [sample_failed_edges(g, random.Random(3)) for _ in range(1)]
        assert a == b


class TestSurvivingGraph:
    def test_failed_edges_removed(self):
        g = path_graph([1.0, 1.0])
        survivor = surviving_graph(g, {(0, 1)})
        assert not survivor.has_edge(0, 1)
        assert survivor.has_edge(1, 2)
        assert survivor.number_of_nodes() == 3

    def test_reverse_orientation_also_removed(self):
        g = path_graph([1.0])
        survivor = surviving_graph(g, {(1, 0)})
        assert not survivor.has_edge(0, 1)

    def test_lengths_preserved(self):
        g = path_graph([1.0, 2.0])
        survivor = surviving_graph(g, set())
        assert survivor.length(1, 2) == 2.0


class TestAdjacencyAfterFailures:
    def test_structure(self):
        g = path_graph([1.0, 1.0])
        adjacency = adjacency_after_failures(g, {(0, 1)})
        assert adjacency[0] == []
        assert sorted(adjacency[1]) == [2]

"""Tests for repro.sim.delivery — including the model-validation property:
Monte Carlo best-path delivery matches the analytic exp(-length)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.sim.delivery import DeliverySimulator, PairDelivery
from repro.graph.graph import WirelessGraph
from tests.conftest import path_graph


def two_hop_graph(p=0.2):
    g = WirelessGraph()
    g.add_edge(0, 1, failure_probability=p)
    g.add_edge(1, 2, failure_probability=p)
    return g


class TestPairDelivery:
    def test_rate(self):
        pd = PairDelivery(pair=(0, 1), successes=70, trials=100)
        assert pd.rate == 0.7

    def test_wilson_interval_contains_rate(self):
        pd = PairDelivery(pair=(0, 1), successes=70, trials=100)
        lo, hi = pd.wilson_interval()
        assert lo < 0.7 < hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_zero_trials(self):
        pd = PairDelivery(pair=(0, 1), successes=0, trials=0)
        assert pd.rate == 0.0
        assert pd.wilson_interval() == (0.0, 1.0)


class TestBestPath:
    def test_analytic_probability(self):
        sim = DeliverySimulator(two_hop_graph(0.2))
        prob, path = sim.best_path(0, 2)
        assert path == [0, 1, 2]
        assert prob == pytest.approx(0.8 * 0.8)

    def test_monte_carlo_matches_analytic(self):
        sim = DeliverySimulator(two_hop_graph(0.2))
        report = sim.simulate([(0, 2)], trials=4000, seed=1)
        pd = report.pairs[0]
        lo, hi = pd.wilson_interval(z=3.3)
        assert lo <= pd.analytic <= hi

    def test_shortcut_makes_delivery_certain(self):
        sim = DeliverySimulator(two_hop_graph(0.5), shortcuts=[(0, 2)])
        report = sim.simulate([(0, 2)], trials=100, seed=2)
        assert report.pairs[0].rate == 1.0
        assert report.pairs[0].analytic == pytest.approx(1.0)

    def test_disconnected_pair_never_delivers(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.1)
        g.add_node(2)
        sim = DeliverySimulator(g)
        report = sim.simulate([(0, 2)], trials=50, seed=3)
        assert report.pairs[0].rate == 0.0
        assert report.pairs[0].analytic == 0.0


class TestStrategies:
    def test_flooding_at_least_best_path(self):
        """Flooding dominates single-path routing on redundant topologies."""
        g = WirelessGraph()
        # Two parallel 2-hop routes between 0 and 3.
        g.add_edge(0, 1, failure_probability=0.3)
        g.add_edge(1, 3, failure_probability=0.3)
        g.add_edge(0, 2, failure_probability=0.3)
        g.add_edge(2, 3, failure_probability=0.3)
        sim = DeliverySimulator(g)
        best = sim.simulate([(0, 3)], strategy="best_path",
                            trials=2000, seed=4)
        flood = sim.simulate([(0, 3)], strategy="flooding",
                             trials=2000, seed=4)
        assert flood.pairs[0].rate >= best.pairs[0].rate

    def test_multipath_between_best_and_flooding(self):
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=0.3)
        g.add_edge(1, 3, failure_probability=0.3)
        g.add_edge(0, 2, failure_probability=0.3)
        g.add_edge(2, 3, failure_probability=0.3)
        sim = DeliverySimulator(g)
        best = sim.simulate([(0, 3)], strategy="best_path",
                            trials=2000, seed=5).pairs[0].rate
        multi = sim.simulate([(0, 3)], strategy="multipath",
                             trials=2000, seed=5,
                             multipath_k=2).pairs[0].rate
        flood = sim.simulate([(0, 3)], strategy="flooding",
                             trials=2000, seed=5).pairs[0].rate
        assert best <= multi + 0.02
        assert multi <= flood + 0.02

    def test_flooding_analytic_two_parallel_paths(self):
        """Two independent 2-hop routes with per-edge failure q: flooding
        success = 1 - (1 - (1-q)^2)^2."""
        q = 0.3
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=q)
        g.add_edge(1, 3, failure_probability=q)
        g.add_edge(0, 2, failure_probability=q)
        g.add_edge(2, 3, failure_probability=q)
        sim = DeliverySimulator(g)
        report = sim.simulate([(0, 3)], strategy="flooding",
                              trials=6000, seed=6)
        path_ok = (1 - q) ** 2
        expected = 1 - (1 - path_ok) ** 2
        assert report.pairs[0].rate == pytest.approx(expected, abs=0.03)

    def test_unknown_strategy_rejected(self):
        sim = DeliverySimulator(two_hop_graph())
        with pytest.raises(SolverError, match="unknown strategy"):
            sim.simulate([(0, 2)], strategy="teleport")


class TestReport:
    def test_mean_rate_and_requirement_count(self):
        sim = DeliverySimulator(two_hop_graph(0.05))
        report = sim.simulate([(0, 2), (0, 1)], trials=500, seed=7)
        assert 0.8 <= report.mean_rate <= 1.0
        # p_t = 0.2: both pairs should clear 1 - p_t easily.
        assert report.meeting_requirement(0.2) == 2

    def test_deterministic_for_seed(self):
        sim = DeliverySimulator(two_hop_graph(0.3))
        a = sim.simulate([(0, 2)], trials=200, seed=8)
        b = sim.simulate([(0, 2)], trials=200, seed=8)
        assert a.pairs[0].successes == b.pairs[0].successes


class TestModelValidationProperty:
    @given(
        p1=st.floats(0.0, 0.8),
        p2=st.floats(0.0, 0.8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_two_hop_best_path_matches_product_rule(self, p1, p2, seed):
        """End-to-end validation of Eq. (1): simulated delivery over a
        2-hop path ≈ (1-p1)(1-p2)."""
        g = WirelessGraph()
        g.add_edge(0, 1, failure_probability=p1)
        g.add_edge(1, 2, failure_probability=p2)
        sim = DeliverySimulator(g)
        report = sim.simulate([(0, 2)], trials=2500, seed=seed)
        expected = (1 - p1) * (1 - p2)
        assert report.pairs[0].rate == pytest.approx(expected, abs=0.05)

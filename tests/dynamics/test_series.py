"""Tests for repro.dynamics.series — the dynamic-network extension (§VI)."""

import pytest

from repro.core.evaluator import SigmaEvaluator
from repro.core.problem import MSCInstance
from repro.dynamics.series import DynamicMSCInstance, build_dynamic_instance
from repro.exceptions import InstanceError
from repro.graph.graph import WirelessGraph
from tests.conftest import path_graph


def make_series(k=2):
    """Two topologies over the same 5-node universe with different edges and
    different important pairs."""
    g1 = path_graph([1.0] * 4)  # 0-1-2-3-4
    g2 = WirelessGraph()
    g2.add_nodes(range(5))  # same universe, same order
    g2.add_edge(0, 2, length=1.0)
    g2.add_edge(2, 4, length=1.0)
    g2.add_edge(1, 3, length=3.0)
    i1 = MSCInstance(g1, [(0, 4), (1, 4)], k=k, d_threshold=1.5)
    i2 = MSCInstance(g2, [(1, 3), (0, 3)], k=k, d_threshold=1.5)
    return DynamicMSCInstance([i1, i2])


class TestConstruction:
    def test_basic_properties(self):
        dyn = make_series()
        assert dyn.T == 2
        assert dyn.k == 2
        assert dyn.n == 5
        assert dyn.total_pairs == 4
        assert dyn.carrier is dyn.instances[0]

    def test_empty_series_rejected(self):
        with pytest.raises(InstanceError, match="at least one"):
            DynamicMSCInstance([])

    def test_mismatched_node_universe_rejected(self):
        g1 = path_graph([1.0] * 4)
        g2 = path_graph([1.0] * 5)
        i1 = MSCInstance(g1, [(0, 4)], k=1, d_threshold=1.5)
        i2 = MSCInstance(g2, [(0, 5)], k=1, d_threshold=1.5)
        with pytest.raises(InstanceError, match="node universe"):
            DynamicMSCInstance([i1, i2])

    def test_mismatched_budget_rejected(self):
        g1 = path_graph([1.0] * 4)
        i1 = MSCInstance(g1, [(0, 4)], k=1, d_threshold=1.5)
        i2 = MSCInstance(g1, [(0, 4)], k=2, d_threshold=1.5)
        with pytest.raises(InstanceError, match="budget"):
            DynamicMSCInstance([i1, i2])


class TestObjectives:
    def test_sigma_is_sum_of_topologies(self):
        dyn = make_series()
        sigma = dyn.sigma_function()
        edges = [(0, 4)]
        expected = sum(
            SigmaEvaluator(inst).value(edges) for inst in dyn.instances
        )
        assert sigma.value(edges) == expected

    def test_sigma_per_topology(self):
        dyn = make_series()
        per = dyn.sigma_per_topology([(0, 4)])
        assert len(per) == 2
        assert sum(per) == dyn.sigma_function().value([(0, 4)])

    def test_bounds_sandwich_dynamic_objective(self):
        dyn = make_series()
        sigma, mu, nu = (
            dyn.sigma_function(),
            dyn.mu_function(),
            dyn.nu_function(),
        )
        for edges in ([], [(0, 4)], [(0, 2), (2, 4)], [(1, 3), (0, 4)]):
            assert mu.value(edges) <= sigma.value(edges) + 1e-9
            assert sigma.value(edges) <= nu.value(edges) + 1e-9

    def test_objective_caching(self):
        dyn = make_series()
        assert dyn.sigma_function() is dyn.sigma_function()

    def test_edges_to_index_pairs(self):
        dyn = make_series()
        assert dyn.edges_to_index_pairs([(4, 0)]) == [(0, 4)]


class TestSolvers:
    def test_sandwich_on_dynamic(self):
        dyn = make_series()
        result = dyn.solve_sandwich()
        assert result.algorithm == "sandwich"
        assert 0 <= result.sigma <= dyn.total_pairs
        assert len(result.edges) <= dyn.k

    def test_ea_on_dynamic(self):
        dyn = make_series()
        result = dyn.solve_ea(iterations=80, seed=3)
        assert 0 <= result.sigma <= dyn.total_pairs

    def test_aea_on_dynamic(self):
        dyn = make_series()
        result = dyn.solve_aea(iterations=30, seed=3)
        assert 0 <= result.sigma <= dyn.total_pairs
        assert len(result.edges) == dyn.k

    def test_random_on_dynamic(self):
        dyn = make_series()
        result = dyn.solve_random(trials=40, seed=3)
        assert 0 <= result.sigma <= dyn.total_pairs

    def test_one_placement_serves_both_topologies(self):
        """A good placement must help pairs in *different* topologies: the
        sandwich solution should beat the best single-topology-only greedy
        restricted evaluation."""
        dyn = make_series()
        result = dyn.solve_sandwich()
        per = dyn.sigma_per_topology(dyn.edges_to_index_pairs(result.edges))
        assert sum(per) == result.sigma

    def test_aea_at_least_matches_sandwich_with_greedy_swaps(self):
        dyn = make_series()
        aa = dyn.solve_sandwich()
        aea = dyn.solve_aea(iterations=30, delta=0.0, seed=5)
        assert aea.sigma >= aa.sigma - 1  # same ballpark on tiny instance


class TestBuildHelper:
    def test_build_dynamic_instance(self):
        g1 = path_graph([1.0] * 4)
        g2 = path_graph([2.0] * 4)
        dyn = build_dynamic_instance(
            [g1, g2],
            [[(0, 4)], [(0, 4), (1, 3)]],
            k=2,
            d_threshold=1.5,
        )
        assert dyn.T == 2
        assert dyn.total_pairs == 3

    def test_length_mismatch_rejected(self):
        g1 = path_graph([1.0] * 4)
        with pytest.raises(InstanceError, match="pair sets"):
            build_dynamic_instance([g1], [[(0, 4)], [(1, 3)]], k=1,
                                   d_threshold=1.5)

    def test_threshold_forwarded(self):
        g1 = path_graph([1.0] * 4)
        dyn = build_dynamic_instance(
            [g1], [[(0, 4)]], k=1, p_threshold=0.7
        )
        assert dyn.instances[0].p_threshold == pytest.approx(0.7)

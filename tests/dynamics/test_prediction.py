"""Tests for repro.dynamics.prediction."""

import pytest

from repro.dynamics.prediction import (
    LinearMotionPredictor,
    prediction_error,
    split_trace,
)
from repro.exceptions import ValidationError
from repro.netgen.tactical import MobilityTrace


def straight_line_trace(snapshots=5, velocity=(10.0, 0.0)):
    """Two nodes moving at constant velocity; perfectly predictable."""
    times = [float(t) for t in range(snapshots)]
    positions = []
    for t in range(snapshots):
        positions.append(
            {
                0: (velocity[0] * t, velocity[1] * t),
                1: (100.0 + velocity[0] * t, 50.0 + velocity[1] * t),
            }
        )
    return MobilityTrace(
        times=times, positions=positions, groups={0: 0, 1: 0}
    )


class TestSplitTrace:
    def test_split_sizes(self):
        trace = straight_line_trace(6)
        prefix, future = split_trace(trace, 4)
        assert prefix.snapshots == 4
        assert future.snapshots == 2
        assert prefix.times == [0.0, 1.0, 2.0, 3.0]
        assert future.times == [4.0, 5.0]

    def test_no_future_rejected(self):
        trace = straight_line_trace(3)
        with pytest.raises(ValidationError, match="no future"):
            split_trace(trace, 3)


class TestLinearMotionPredictor:
    def test_perfect_on_constant_velocity(self):
        trace = straight_line_trace(8)
        prefix, future = split_trace(trace, 5)
        predicted = LinearMotionPredictor(window=3).predict(prefix, 3)
        error = prediction_error(future, predicted)
        assert error.mean == pytest.approx(0.0, abs=1e-9)
        assert error.max == pytest.approx(0.0, abs=1e-9)

    def test_window_one_freezes(self):
        trace = straight_line_trace(6)
        prefix, _future = split_trace(trace, 4)
        predicted = LinearMotionPredictor(window=1).predict(prefix, 2)
        last = prefix.positions[-1]
        for frame in predicted.positions:
            assert frame == last

    def test_horizon_length_and_times(self):
        trace = straight_line_trace(6)
        prefix, _ = split_trace(trace, 4)
        predicted = LinearMotionPredictor().predict(prefix, 3)
        assert predicted.snapshots == 3
        assert predicted.times == [4.0, 5.0, 6.0]

    def test_groups_preserved(self):
        trace = straight_line_trace(5)
        predicted = LinearMotionPredictor().predict(trace, 2)
        assert predicted.groups == trace.groups

    def test_single_snapshot_observation(self):
        trace = straight_line_trace(1)
        predicted = LinearMotionPredictor(window=3).predict(trace, 2)
        # One observation => zero velocity assumed.
        assert predicted.positions[0] == trace.positions[0]

    def test_empty_trace_rejected(self):
        empty = MobilityTrace(times=[], positions=[], groups={})
        with pytest.raises(ValidationError, match="empty"):
            LinearMotionPredictor().predict(empty, 1)

    def test_invalid_horizon(self):
        trace = straight_line_trace(3)
        with pytest.raises(Exception):
            LinearMotionPredictor().predict(trace, 0)


class TestPredictionError:
    def test_known_offset(self):
        trace = straight_line_trace(3)
        shifted = MobilityTrace(
            times=trace.times,
            positions=[
                {node: (x + 3.0, y + 4.0) for node, (x, y) in frame.items()}
                for frame in trace.positions
            ],
            groups=trace.groups,
        )
        error = prediction_error(trace, shifted)
        assert error.mean == pytest.approx(5.0)
        assert error.max == pytest.approx(5.0)
        assert all(e == pytest.approx(5.0) for e in error.per_snapshot)

    def test_growing_error_per_snapshot(self):
        trace = straight_line_trace(4, velocity=(10.0, 0.0))
        frozen = MobilityTrace(
            times=trace.times,
            positions=[trace.positions[0]] * 4,
            groups=trace.groups,
        )
        error = prediction_error(trace, frozen)
        assert error.per_snapshot == sorted(error.per_snapshot)

    def test_empty_comparison_rejected(self):
        empty = MobilityTrace(times=[], positions=[], groups={})
        with pytest.raises(ValidationError):
            prediction_error(empty, empty)
